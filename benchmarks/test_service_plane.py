"""Multi-tenant service plane — the three acceptance gates.

The service plane (``repro.service``) is strictly additive to the data
plane it fronts, and these benchmarks are the contract:

1. **zero cost when detached** — a fig3-scale IA replay through a scheme
   that merely has an idle :class:`~repro.service.frontend.ServicePlane`
   constructed over it is byte-identical (every OpReport field, final sim
   time) to the same replay with no service plane anywhere in sight;
2. **scale** — 512 closed-loop tenants pushing the same total op count as
   one tenant sustain >= 0.8x the single-tenant aggregate simulated
   ops/s — tenancy overhead (DRR rotation, quota checks, pump chains)
   must not tax the backend;
3. **fairness under skew** — an open-loop 10:1 offered skew across 32
   tenants with per-tenant ops/s quotas yields Jain's index >= 0.9 over
   per-tenant *admitted* throughput, with no tenant ever exceeding its
   quota (token-bucket bound: rate * window + burst).

Everything asserted is simulated-time arithmetic from seeded runs, so
these gates are deterministic — they fail on behaviour change, not on a
slow CI runner.
"""

import json

from repro.analysis.experiments import run_fig3
from repro.cloud.provider import make_table2_cloud_of_clouds
from repro.schemes import HyrdScheme
from repro.service import run_service_drill
from repro.service.admission import AdmissionController
from repro.service.frontend import ServicePlane
from repro.service.tenant import TenantRegistry
from repro.sim.clock import SimClock
from repro.sim.events import EventLoop
from repro.workloads.trace import TraceReplayer

SCALE_FLOOR = 0.8
FAIRNESS_FLOOR = 0.9


def _replay(ops, seed: int, with_idle_plane: bool):
    """One fig3 replay; returns (report tuples, final sim time).

    ``with_idle_plane=True`` builds the full service bundle over the
    scheme — registry, admission controller, two frontends on an event
    loop — and runs the (empty) loop, but never routes a request through
    it.  The replay itself drives the scheme directly, exactly as the
    pre-service-plane code did.
    """
    clock = SimClock()
    providers = make_table2_cloud_of_clouds(clock)
    scheme = HyrdScheme(list(providers.values()), clock)
    if with_idle_plane:
        loop = EventLoop(clock)
        registry = TenantRegistry(seed)
        registry.create("idle-tenant")
        ServicePlane(
            scheme,
            loop,
            registry,
            admission=AdmissionController(),
            n_frontends=2,
        )
        loop.run()  # nothing scheduled: must be a no-op on the clock
    collector = TraceReplayer(seed=seed).run(scheme, ops)
    reports = [
        (r.op, r.path, r.elapsed, r.bytes_up, r.bytes_down, r.cloud_ops)
        for r in collector.reports
    ]
    return reports, clock.now


def test_service_plane_detached_is_zero_cost(benchmark, emit):
    """Gate 1: an idle service plane changes nothing about the data plane."""
    ops = run_fig3(seed=0).ops

    def experiment():
        plain = _replay(ops, seed=0, with_idle_plane=False)
        idle = _replay(ops, seed=0, with_idle_plane=True)
        return plain, idle

    (plain_reports, plain_now), (idle_reports, idle_now) = benchmark.pedantic(
        experiment, rounds=1, iterations=1
    )

    emit(
        "Service plane zero-cost gate — fig3-scale replay\n"
        f"  trace ops:        {len(ops)}\n"
        f"  reports compared: {len(plain_reports)}\n"
        f"  sim elapsed:      {plain_now:.3f} s (both runs)\n"
        f"  byte-identical:   {plain_reports == idle_reports and plain_now == idle_now}"
    )

    assert len(plain_reports) == len(idle_reports)
    for a, b in zip(plain_reports, idle_reports):
        assert a == b, f"idle service plane perturbed the replay: {a} != {b}"
    assert plain_now == idle_now, (
        f"idle service plane moved the sim clock: {plain_now} != {idle_now}"
    )


def test_service_plane_scales_to_512_tenants(benchmark, emit):
    """Gate 2: 512 tenants sustain >= 0.8x the single-tenant rate.

    Both sides run the *same per-tenant stream shape* (``ops_per_tenant``
    ops, first op a namespace-creating put, then the IA read:write mix) so
    the comparison isolates tenancy overhead — DRR rotation across 512
    queues, quota checks, pump chains — from workload-mix effects.  In a
    closed loop the backend serialises on the sim clock either way, so a
    cost-free service plane means near-identical aggregate ops/s.
    """
    per_tenant_ops = 8

    # 512 tenant directories overflow the default 256-entry client metadata
    # cache, and a thrashing cache charges every read an extra metadata
    # fetch — a backend cache-sizing effect any single client touching 512
    # directories would hit, not service-plane overhead.  Size the cache to
    # the working set (both sides, same config) so the gate isolates what
    # it claims to measure.
    def factory(providers, clock):
        from repro.core.config import HyRDConfig

        return HyrdScheme(
            providers,
            clock,
            config=HyRDConfig(seed=0, metadata_cache_capacity=1024),
        )

    def experiment():
        single = run_service_drill(
            seed=0,
            tenants=1,
            mode="closed",
            ops_per_tenant=per_tenant_ops,
            scheme_factory=factory,
        )
        many = run_service_drill(
            seed=0,
            tenants=512,
            mode="closed",
            ops_per_tenant=per_tenant_ops,
            scheme_factory=factory,
        )
        return single, many

    single, many = benchmark.pedantic(experiment, rounds=1, iterations=1)

    assert single["admitted_total"] == per_tenant_ops
    assert many["admitted_total"] == 512 * per_tenant_ops
    ratio = many["aggregate_ops_per_s"] / single["aggregate_ops_per_s"]

    emit(
        "Service plane scale gate — closed loop, "
        f"{per_tenant_ops} ops per tenant\n"
        f"  1 tenant:    {single['aggregate_ops_per_s']:.2f} ops/s "
        f"(sim {single['sim_elapsed']:.2f} s)\n"
        f"  512 tenants: {many['aggregate_ops_per_s']:.2f} ops/s "
        f"(sim {many['sim_elapsed']:.2f} s)\n"
        f"  ratio:       {ratio:.3f} (floor {SCALE_FLOOR})\n"
        f"  512-tenant fairness: {many['fairness_index']:.4f}\n"
        f"  512-tenant DRR rounds: {many['drr_rounds']}"
    )

    assert many["shed_total"] == 0, "closed loop at default queue depth shed"
    assert ratio >= SCALE_FLOOR, (
        f"512-tenant aggregate throughput fell to {ratio:.3f}x the "
        f"single-tenant rate (floor {SCALE_FLOOR})"
    )


def test_service_plane_fairness_under_skew(benchmark, emit):
    """Gate 3: 10:1 offered skew, quota-capped — Jain >= 0.9, quotas hold."""
    tenants, skew, quota_factor = 32, 10.0, 2.0

    def experiment():
        return run_service_drill(
            seed=0,
            tenants=tenants,
            mode="open",
            skew=skew,
            offered_load=3.0,
            queue_limit=8,
            ops_quota_factor=quota_factor,
        )

    report = benchmark.pedantic(experiment, rounds=1, iterations=1)

    # The same token-bucket parameters the drill handed every tenant.
    quota_rate = quota_factor * report["capacity_ops_per_s"] / tenants
    burst = max(1.0, quota_rate)
    window = report["sim_elapsed"]
    worst = max(
        report["per_tenant"].values(), key=lambda t: t["admitted"]
    )

    submitted = [t["submitted"] for t in report["per_tenant"].values()]
    emit(
        "Service plane fairness gate — open loop, 10:1 skew, quota-capped\n"
        f"  tenants:            {tenants} (queue limit 8, 3x overload)\n"
        f"  offered skew:       {max(submitted)}:{min(submitted)} requests\n"
        f"  submitted/admitted: {report['submitted_total']}/"
        f"{report['admitted_total']} "
        f"(shed {report['shed_fraction']:.1%}: {report['shed_by_reason']})\n"
        f"  Jain over admitted: {report['fairness_index']:.4f} "
        f"(floor {FAIRNESS_FLOOR})\n"
        f"  ops/s quota:        {quota_rate:.2f}/tenant "
        f"(max admitted {worst['admitted']} <= "
        f"{quota_rate * window + burst:.1f} allowed)\n"
        f"  quota deferrals:    {report['quota_deferrals']}"
    )

    assert max(submitted) > 2 * min(submitted), "offered load was not skewed"
    assert report["fairness_index"] >= FAIRNESS_FLOOR, (
        f"Jain index {report['fairness_index']:.4f} under skew fell below "
        f"{FAIRNESS_FLOOR}"
    )
    for tid, t in report["per_tenant"].items():
        allowed = quota_rate * window + burst + 1e-9
        assert t["admitted"] <= allowed, (
            f"{tid} admitted {t['admitted']} ops, exceeding its token-bucket "
            f"allowance {allowed:.2f} over the {window:.1f}s window"
        )


def test_service_drill_report_is_reproducible(benchmark, emit):
    """Same seed, same arguments => byte-identical drill report."""

    def experiment():
        kwargs = dict(seed=7, tenants=6, mode="closed", ops_per_tenant=4)
        a = json.dumps(run_service_drill(**kwargs), sort_keys=True)
        b = json.dumps(run_service_drill(**kwargs), sort_keys=True)
        return a, b

    a, b = benchmark.pedantic(experiment, rounds=1, iterations=1)
    emit(
        "Service drill determinism — seeded closed-loop run\n"
        f"  report bytes: {len(a)}\n"
        f"  identical:    {a == b}"
    )
    assert a == b, "service drill report drifted between identical runs"
