"""Extension — the chaos campaign's acceptance story, end to end.

A fixed-seed smoke campaign: three episodes per scheme across all seven
schemes (21 episodes), each composing a fault storm, a network-partition
plan and a scripted crash schedule over a random workload.  Two hard
gates:

1. **Zero invariant violations.**  After every episode the five
   machine-verified invariants (no acked write lost, no torn stripe
   readable, journal drained, write-log convergence, namespace/provider
   audit) must all hold.
2. **Determinism.**  Re-running a scheme's first episode with the same
   seed must reproduce a byte-identical canonical JSON report — any drift
   means a hidden RNG/clock/ordering dependency crept into the engine.
"""

import json

from repro.analysis.tables import render_table
from repro.chaos import CHAOS_SCHEMES, run_campaign
from repro.chaos.invariants import INVARIANTS

_EPISODES = 3  # per scheme; 7 schemes -> 21 episodes
_BASE_SEED = 2026


def test_chaos_campaign_smoke(benchmark, emit, results_dir):
    report = benchmark.pedantic(
        lambda: run_campaign(
            episodes=_EPISODES, base_seed=_BASE_SEED, check_determinism=True
        ),
        rounds=1,
        iterations=1,
    )

    per_scheme: dict[str, dict] = {
        name: {"crashes": 0, "degraded": 0, "violations": 0}
        for name in CHAOS_SCHEMES
    }
    for episode in report["episodes"]:
        row = per_scheme[episode["scheme"]]
        row["crashes"] += len(episode["crashes"]["fired"])
        row["degraded"] += episode["workload"]["degraded_reads"]
        row["violations"] += sum(
            len(episode["invariants"][name]["violations"]) for name in INVARIANTS
        )

    emit(
        render_table(
            ["Scheme", "Episodes", "Crashes", "Degraded reads", "Violations"],
            [
                [name, _EPISODES, row["crashes"], row["degraded"], row["violations"]]
                for name, row in per_scheme.items()
            ],
            title=(
                f"Chaos campaign smoke ({len(report['episodes'])} episodes, "
                f"base seed {_BASE_SEED}, determinism-checked)"
            ),
        )
    )
    (results_dir / "chaos_campaign.json").write_text(
        json.dumps(report, sort_keys=True, indent=2) + "\n"
    )

    # Gate 0 — the campaign actually stressed the system.
    assert report["totals"]["episodes"] == _EPISODES * len(CHAOS_SCHEMES)
    assert report["totals"]["crashes"] > 0
    assert any(row["degraded"] > 0 for row in per_scheme.values())

    # Gate 1 — no episode violated any invariant.
    assert report["totals"]["violations"] == 0

    # Gate 2 — same seed, byte-identical report.
    assert report["determinism_drift"] == []
    assert report["ok"]
