"""Extension — the fault storm: HyRD availability under compound faults.

Runs the same PostMark workload against a clean fleet and against the
scripted fault storm (one browned-out performance provider, one provider in
a transient-error burst with throttling, one flapping provider), with and
without hedged reads.  The replayer verifies every byte inline, so the
benchmark demonstrates the paper's availability claim under far harsher
conditions than §IV's single-outage windows: latency degrades, correctness
never does.
"""

import numpy as np

from repro.analysis.tables import render_table
from repro.cloud.provider import make_table2_cloud_of_clouds
from repro.core.config import HyRDConfig
from repro.core.resilience import ResilienceConfig
from repro.faults import FaultProfile, LatencyBrownout, make_fault_storm
from repro.schemes import HyrdScheme
from repro.sim.clock import SimClock
from repro.sim.rng import make_rng
from repro.workloads.filesizes import LogUniformFileSizes
from repro.workloads.postmark import PostMarkConfig, generate_postmark
from repro.workloads.trace import TraceReplayer

KB, MB = 1024, 1024 * 1024


def _run(storm=False, hedge=False, seed=0):
    clock = SimClock()
    fleet = make_table2_cloud_of_clouds(clock)
    # A low striping threshold keeps the cost-oriented providers (the
    # flapping one among them) on the critical path of much of the workload.
    config = HyRDConfig(
        size_threshold=256 * KB, resilience=ResilienceConfig(hedge_reads=hedge)
    )
    # Build (and evaluate) against a healthy fleet, then let the storm land
    # mid-deployment — otherwise the initial probes would classify the
    # faulted providers straight out of the placement classes and the run
    # would route around the storm instead of riding it out.
    scheme = HyrdScheme(list(fleet.values()), clock, config=config)
    if storm:
        # t0 > 0 so the storm begins against *warm* health trackers: the
        # first browned-out reads are slower than every expectation, which is
        # the window hedged reads exist for (until the EWMA adapts and
        # ranking routes around the slow replica).
        make_fault_storm(t0=15.0, duration=36000.0, seed=seed).apply(fleet)
    # Long enough that the run spans the flapping provider's first downtime
    # *and* its return, so the benchmark sees trip, fast-fail and recovery.
    # Log-uniform sizes put roughly half the files above the threshold,
    # keeping the erasure path (and the flapper) busy.
    ops = generate_postmark(
        PostMarkConfig(
            file_pool=15,
            transactions=120,
            sizes=LogUniformFileSizes(lo=64 * KB, hi=8 * MB),
        ),
        make_rng(seed, "fault-storm"),
    )
    collector = TraceReplayer(seed=seed).run(scheme, ops, heal_between=True)
    user_ops = [r.elapsed for r in collector.reports if r.op != "heal"]
    counters = scheme.collector  # resilience counters live on the scheme side
    return {
        "mean": float(np.mean(user_ops)),
        "degraded": collector.degraded_fraction(),
        "retries": counters.counter("retries"),
        "fast_fails": counters.counter("breaker_fast_fail"),
        "breaker_open": counters.counter("breaker_open"),
        "breaker_closed": counters.counter("breaker_closed"),
        "hedged": counters.counter("hedged_reads"),
    }


def test_fault_storm(benchmark, emit):
    def experiment():
        return {
            "clean": _run(),
            "storm": _run(storm=True),
            "storm+hedge": _run(storm=True, hedge=True),
        }

    runs = benchmark.pedantic(experiment, rounds=1, iterations=1)

    cols = ["mean", "degraded", "retries", "fast_fails", "breaker_open",
            "breaker_closed", "hedged"]
    emit(
        render_table(
            ["Run"] + cols,
            [[name] + [runs[name][c] for c in cols] for name in runs],
            title="HyRD under the fault storm (every byte verified inline)",
        )
    )

    clean, storm = runs["clean"], runs["storm"]
    # The clean run never needs the resilience machinery.
    assert clean["retries"] == 0
    assert clean["breaker_open"] == 0
    assert clean["degraded"] == 0.0
    # The storm costs latency, bounded — never correctness (verified inline).
    assert storm["mean"] > clean["mean"]
    assert storm["mean"] < 10 * clean["mean"]
    # The machinery actually engaged: retries burned, the flapping provider's
    # breaker tripped and recovered, open-circuit requests were skipped.
    assert storm["retries"] > 0
    assert storm["breaker_open"] >= 1
    assert storm["breaker_closed"] >= 1
    assert storm["fast_fails"] >= 1
    # Hedging never makes the storm worse (first response wins; a hedge
    # that loses costs nothing on the critical path).  Its latency *benefit*
    # shows in test_hedged_reads_cut_the_brownout_tail below, where the
    # brownout hits cold health trackers.
    assert runs["storm+hedge"]["mean"] <= 1.1 * storm["mean"]


def test_fault_storm_run_report(benchmark, emit):
    """The observability pipeline on the storm: one traced run, one report.

    Exercises the whole ``repro.obs`` stack end to end — recording tracer,
    mirrored registry, and the ``repro report`` renderer — and proves the
    round-trip guarantee on a benchmark-sized run: the JSON-lines trace
    replays into the byte-identical report.
    """
    from repro.obs import RunReport, parse_jsonl, run_fault_storm_report

    def experiment():
        return run_fault_storm_report(seed=0)

    report, tracer = benchmark.pedantic(experiment, rounds=1, iterations=1)
    rendered = report.render()
    emit(rendered)

    replayed = RunReport.from_trace(parse_jsonl(tracer.to_jsonl().splitlines()))
    assert replayed.render() == rendered
    # The storm engaged the machinery the report exists to show.
    assert report.registry.counter_value("retries") > 0
    assert any(r.degraded for r in report.reports)


def test_hedged_reads_cut_the_brownout_tail(benchmark, emit):
    """Hedged reads exist for the window between a latency cliff appearing
    and the health EWMA catching up: the first reads into a fresh brownout
    would otherwise wait out the slow replica in full."""

    def one(hedge):
        clock = SimClock()
        fleet = make_table2_cloud_of_clouds(clock)
        cfg = HyRDConfig(resilience=ResilienceConfig(hedge_reads=hedge))
        scheme = HyrdScheme(list(fleet.values()), clock, config=cfg)
        for i in range(10):
            scheme.put(f"/d/f{i}", bytes(128 * KB))
        t0 = clock.now
        fleet["aliyun"].faults = FaultProfile(
            [LatencyBrownout(t0, t0 + 1e6, rtt_factor=10.0, bw_factor=0.05)]
        ).bind("aliyun")
        lats = []
        for i in range(10):
            _, report = scheme.get(f"/d/f{i}")
            lats.append(report.elapsed)
        return {
            "mean": float(np.mean(lats)),
            "worst": max(lats),
            "hedged": scheme.collector.counter("hedged_reads"),
            "wins": scheme.collector.counter("hedge_wins"),
        }

    def experiment():
        return {"plain": one(False), "hedged": one(True)}

    runs = benchmark.pedantic(experiment, rounds=1, iterations=1)

    cols = ["mean", "worst", "hedged", "wins"]
    emit(
        render_table(
            ["Run"] + cols,
            [[name] + [runs[name][c] for c in cols] for name in runs],
            title="Reads into a fresh brownout: hedged vs plain",
        )
    )

    assert runs["plain"]["hedged"] == 0
    assert runs["hedged"]["hedged"] > 0
    assert runs["hedged"]["wins"] > 0
    # The hedge pays off exactly where it should: the worst read (the one
    # that hit the browned-out replica before health adapted) is far
    # cheaper, and the mean follows.
    assert runs["hedged"]["worst"] < runs["plain"]["worst"]
    assert runs["hedged"]["mean"] < runs["plain"]["mean"]
