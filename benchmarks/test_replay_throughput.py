"""Replay data-plane throughput — ops/sec on the fig3-scale IA trace.

This is the benchmark behind the data-plane overhaul: the full Figure 3
trace replayed through HyRD on the Table II fleet, with end-to-end content
verification on (the default), measured as trace ops per wall-clock second.
The floor asserted here is 3x the throughput measured at the commit
immediately before the overhaul, so the speedup stays locked in.

Method notes (see ``docs/performance.md``): trials are best-of-N with a
warmup round, and ``gc.collect()`` runs between trials — scheme object
graphs contain reference cycles, so without an explicit collection later
trials inherit the garbage of earlier ones and slow down.
"""

import gc
import time

import numpy as np

from repro.analysis.experiments import run_fig3
from repro.cloud.provider import make_table2_cloud_of_clouds
from repro.schemes import HyrdScheme
from repro.sim.clock import SimClock
from repro.workloads.filesizes import MediaLibraryFileSizes
from repro.workloads.ia_trace import IATraceConfig
from repro.workloads.trace import TraceReplayer

#: fig3-scale replay throughput (ops/sec) measured at the pre-overhaul
#: commit with this same harness on the reference box — the 3x target is
#: asserted against this constant, not a moving baseline
PRE_PR_OPS_PER_SEC = 317.9
TARGET_SPEEDUP = 3.0
TRIALS = 4


def _replay_once(ops, seed: int = 0) -> tuple[float, float, float]:
    """One full replay in a fresh world; returns (wall, mean latency, sim time)."""
    clock = SimClock()
    providers = make_table2_cloud_of_clouds(clock)
    scheme = HyrdScheme(list(providers.values()), clock)
    replayer = TraceReplayer(seed=seed)
    t0 = time.perf_counter()
    collector = replayer.run(scheme, ops)
    wall = time.perf_counter() - t0
    samples = [r.elapsed for r in collector.reports if r.op not in ("heal", "promote")]
    return wall, float(np.mean(samples)), clock.now


def test_replay_throughput_fig3_scale(benchmark, emit):
    ops = run_fig3(seed=0).ops

    walls: list[float] = []
    simulated: set[tuple[str, str]] = set()

    def once() -> None:
        wall, mean_lat, sim_elapsed = _replay_once(ops)
        walls.append(wall)
        simulated.add((repr(mean_lat), repr(sim_elapsed)))
        gc.collect()

    benchmark.pedantic(once, rounds=TRIALS, warmup_rounds=1, iterations=1)

    measured = walls[1:]  # drop the warmup round
    best = min(measured)
    ops_per_sec = len(ops) / best
    speedup = ops_per_sec / PRE_PR_OPS_PER_SEC
    mean_lat, sim_elapsed = next(iter(simulated))

    lines = [
        "Replay throughput — fig3-scale IA trace through HyRD (verified reads)",
        f"  trace ops:            {len(ops)}",
        f"  trial walls (s):      {', '.join(f'{w:.3f}' for w in measured)}",
        f"  best throughput:      {ops_per_sec:.1f} ops/s",
        f"  pre-overhaul:         {PRE_PR_OPS_PER_SEC:.1f} ops/s",
        f"  speedup:              {speedup:.2f}x (target >= {TARGET_SPEEDUP:.1f}x)",
        f"  mean access latency:  {mean_lat} s (simulated, trial-invariant)",
        f"  simulated elapsed:    {sim_elapsed} s",
    ]
    emit("\n".join(lines))

    # The optimisation contract: faster wall-clock, identical simulation.
    assert len(simulated) == 1, "simulated results drifted between trials"
    assert ops_per_sec >= TARGET_SPEEDUP * PRE_PR_OPS_PER_SEC, (
        f"replay throughput {ops_per_sec:.1f} ops/s is below the "
        f"{TARGET_SPEEDUP:.1f}x floor over {PRE_PR_OPS_PER_SEC:.1f} ops/s"
    )


def test_replay_throughput_smoke(benchmark, emit):
    """Reduced-trace smoke for CI: the replay completes and reports a rate.

    No absolute floor here — CI runners have unknown hardware; the full
    fig3-scale floor above is for benchmark runs on a known box.
    """
    config = IATraceConfig(
        months=3, writes_per_month=4, sizes=MediaLibraryFileSizes(scale=0.0625)
    )
    ops = run_fig3(seed=0, config=config).ops

    wall, mean_lat, sim_elapsed = benchmark.pedantic(
        lambda: _replay_once(ops), rounds=1, iterations=1
    )
    ops_per_sec = len(ops) / wall
    emit(
        "Replay throughput smoke — reduced IA trace\n"
        f"  trace ops:   {len(ops)}\n"
        f"  wall:        {wall:.3f} s ({ops_per_sec:.1f} ops/s)\n"
        f"  mean access latency: {mean_lat:.5f} s (simulated)\n"
        f"  simulated elapsed:   {sim_elapsed:.3f} s"
    )
    assert ops_per_sec > 0
    assert mean_lat > 0
