"""Extension — the degraded-read penalty, isolated per scheme.

Figure 6's outage bars mix reads and writes; this benchmark isolates the
pure-read penalty of losing Windows Azure: DuraCloud falls back from its
fast replica to slow Amazon S3, RACS reconstructs through the Rackspace
parity it normally never touches, and HyRD's small files simply read the
surviving Aliyun replica (no penalty at all for this outage).
"""

from repro.analysis.ablations import run_degraded_read_comparison
from repro.analysis.tables import render_table


def test_degraded_read_penalty(benchmark, emit):
    result = benchmark.pedantic(
        lambda: run_degraded_read_comparison(seed=0), rounds=1, iterations=1
    )

    rows = [
        [
            name,
            m["normal_latency"],
            m["degraded_latency"],
            m["inflation"],
            m["degraded_fanout"],
            m["degraded_fraction"],
        ]
        for name, m in result.items()
    ]
    emit(
        render_table(
            [
                "Scheme",
                "Normal read (s)",
                "Degraded read (s)",
                "Inflation",
                "Providers/read",
                "Degraded frac",
            ],
            rows,
            title="Degraded reads — pure read workload, Azure offline",
        )
    )

    # Replication falls back to one copy; striping fans out to k providers.
    assert result["duracloud"]["degraded_fanout"] == 1.0
    assert result["racs"]["degraded_fanout"] >= 3.0
    # HyRD's reads shrug this outage off entirely; the baselines inflate.
    assert result["hyrd"]["inflation"] < 1.1
    assert result["racs"]["inflation"] > 1.2
    assert result["duracloud"]["inflation"] > 1.2
    # Every RACS/DuraCloud read during the outage ran degraded.
    assert result["racs"]["degraded_fraction"] == 1.0
    assert result["duracloud"]["degraded_fraction"] == 1.0
