"""Figure 6 — access latency of every scheme, normal and outage states.

PostMark (1 KB - 100 MB) against the four single clouds plus DuraCloud,
RACS and HyRD; the outage group re-runs the Cloud-of-Clouds schemes with
Windows Azure forced offline (exactly the paper's method).  Results are
normalised to single-cloud Amazon S3.

Paper headlines: normal state — HyRD 58.7 % below DuraCloud and 34.8 %
below RACS; outage — 27.3 % / 46.3 %; DuraCloud *improves* during the
outage (no second synchronised write); HyRD's small files are unaffected
(served by the surviving replica).
"""

from repro.analysis.charts import grouped_bar_chart
from repro.analysis.experiments import run_fig6
from repro.analysis.tables import render_table

ALL = ["amazon_s3", "azure", "aliyun", "rackspace", "duracloud", "racs", "hyrd"]
COC = ["duracloud", "racs", "hyrd"]


def test_fig6_scheme_latency_normal_and_outage(benchmark, emit):
    fig6 = benchmark.pedantic(
        lambda: run_fig6(seed=0, parallel=True), rounds=1, iterations=1
    )

    norm_n = fig6.normalized("normal")
    norm_o = fig6.normalized("outage")
    rows = []
    for name in ALL:
        rows.append(
            [
                name,
                fig6.normal[name],
                norm_n[name],
                fig6.outage.get(name, float("nan")),
                norm_o.get(name, float("nan")),
                fig6.degraded_fraction.get(name, 0.0),
            ]
        )
    emit(
        render_table(
            [
                "Scheme",
                "Normal (s)",
                "Normal (xS3)",
                "Outage (s)",
                "Outage (xS3)",
                "Degraded frac",
            ],
            rows,
            title="Figure 6 — mean access latency, normalised to Amazon S3 normal",
        )
        + "\n\n"
        + grouped_bar_chart(
            [
                ("Normal state (xS3)", {k: norm_n[k] for k in ALL}),
                ("Azure outage (xS3)", {k: norm_o[k] for k in COC}),
            ],
            title="Figure 6 — normalised access latency",
        )
        + "\n\nHeadlines (paper in parentheses):\n"
        + f"  normal: HyRD vs DuraCloud {fig6.improvement('hyrd', 'duracloud'):.1%} (58.7%), "
        + f"vs RACS {fig6.improvement('hyrd', 'racs'):.1%} (34.8%)\n"
        + f"  outage: HyRD vs DuraCloud {fig6.improvement('hyrd', 'duracloud', 'outage'):.1%} (27.3%), "
        + f"vs RACS {fig6.improvement('hyrd', 'racs', 'outage'):.1%} (46.3%)\n"
        + f"  DuraCloud outage/normal = {fig6.outage['duracloud'] / fig6.normal['duracloud']:.3f} (< 1 per the paper)\n"
    )

    # --- normal state shape -------------------------------------------------
    assert fig6.normal["hyrd"] < fig6.normal["racs"] < fig6.normal["duracloud"]
    assert 0.25 <= fig6.improvement("hyrd", "duracloud") <= 0.75
    assert 0.10 <= fig6.improvement("hyrd", "racs") <= 0.60
    # --- outage state shape -------------------------------------------------
    assert fig6.outage["hyrd"] < fig6.outage["racs"]
    assert fig6.outage["hyrd"] < fig6.outage["duracloud"]
    # DuraCloud gets no slower (and typically faster): no sync writes.
    assert fig6.outage["duracloud"] <= fig6.normal["duracloud"] * 1.05
    # HyRD's latency is barely affected by the outage.
    assert fig6.outage["hyrd"] <= fig6.normal["hyrd"] * 1.25
    # RACS suffers degraded reconstruction on a large share of accesses.
    assert fig6.degraded_fraction["racs"] > fig6.degraded_fraction["hyrd"]


def test_fig6_extended_with_depsky_and_nccloud(benchmark, emit):
    """Extension: the same experiment including the DepSky and NCCloud
    baselines from Table I (not plotted in the paper's Fig. 6)."""
    from repro.workloads.postmark import PostMarkConfig

    config = PostMarkConfig(file_pool=25, transactions=100)
    fig6 = benchmark.pedantic(
        lambda: run_fig6(seed=0, config=config, extended=True, parallel=True),
        rounds=1,
        iterations=1,
    )
    rows = [
        [name, fig6.normal[name], fig6.outage.get(name, float("nan"))]
        for name in ("duracloud", "depsky", "depsky-ca", "nccloud", "racs", "hyrd")
    ]
    emit(
        render_table(
            ["Scheme", "Normal (s)", "Outage (s)"],
            rows,
            title="Figure 6 extension — all Table I baselines (+ DepSky-CA)",
        )
    )
    # HyRD still leads the full baseline set in both states.
    for other in ("duracloud", "depsky", "depsky-ca", "nccloud", "racs"):
        assert fig6.normal["hyrd"] < fig6.normal[other]
        assert fig6.outage["hyrd"] < fig6.outage[other]
