"""Figure 4 — monthly (a) and cumulative (b) cloud costs.

Seven configurations on the IA trace: the four single clouds, DuraCloud
(2x replication), RACS (RAID5 over all four), and HyRD.  Paper headlines:
DuraCloud most costly, Aliyun least; HyRD 33.4 % cheaper than DuraCloud and
20.4 % cheaper than RACS.
"""

from repro.analysis.charts import line_chart
from repro.analysis.experiments import run_fig4
from repro.analysis.tables import render_table

SCHEMES = ["amazon_s3", "azure", "aliyun", "rackspace", "duracloud", "racs", "hyrd"]


def test_fig4_monthly_and_cumulative_costs(benchmark, emit):
    fig4 = benchmark.pedantic(lambda: run_fig4(seed=0), rounds=1, iterations=1)

    months = len(next(iter(fig4.results.values())).monthly)
    monthly_rows = [
        [f"m{m:02d}"] + [fig4.results[s].monthly_totals[m] for s in SCHEMES]
        for m in range(months)
    ]
    cumulative_rows = [
        [f"m{m:02d}"] + [fig4.results[s].cumulative_totals[m] for s in SCHEMES]
        for m in range(months)
    ]
    emit(
        render_table(
            ["Month"] + SCHEMES,
            monthly_rows,
            title="Figure 4(a) — monthly cost ($, simulated scale)",
            floatfmt=".4f",
        )
        + "\n\n"
        + render_table(
            ["Month"] + SCHEMES,
            cumulative_rows,
            title="Figure 4(b) — cumulative cost ($, simulated scale)",
            floatfmt=".4f",
        )
        + "\n\n"
        + line_chart(
            [f"{m}" for m in range(months)],
            {s: fig4.results[s].cumulative_totals for s in ("duracloud", "racs", "hyrd", "aliyun")},
            title="Figure 4(b) — cumulative cost curves",
        )
        + "\n\nHeadlines (paper in parentheses):\n"
        + f"  HyRD vs DuraCloud: {fig4.savings_vs('hyrd', 'duracloud'):.1%} cheaper (33.4%)\n"
        + f"  HyRD vs RACS:      {fig4.savings_vs('hyrd', 'racs'):.1%} cheaper (20.4%)\n"
    )

    # Shape assertions straight out of §IV-B.
    dura = fig4.cumulative("duracloud")
    aliyun = fig4.cumulative("aliyun")
    for name in SCHEMES:
        if name != "duracloud":
            assert fig4.cumulative(name) < dura, f"{name} costlier than DuraCloud"
        if name != "aliyun":
            assert fig4.cumulative(name) > aliyun, f"{name} cheaper than Aliyun"
    assert 0.15 <= fig4.savings_vs("hyrd", "duracloud") <= 0.55
    assert 0.03 <= fig4.savings_vs("hyrd", "racs") <= 0.40
    # Cumulative curves are monotone non-decreasing for every scheme.
    for name in SCHEMES:
        cum = fig4.results[name].cumulative_totals
        assert all(b >= a - 1e-12 for a, b in zip(cum, cum[1:]))
