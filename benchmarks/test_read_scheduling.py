"""Read-scheduling acceptance gates, end to end.

Two claims, each a hard gate (ROADMAP item 5, Aktaş-style load-aware
coded-read scheduling):

1. **Throughput under skew.**  A Zipf-skewed read workload against a fleet
   with one saturated and one browned-out provider must sustain at least
   1.3x the simulated ops/s of static fragment selection.  The static
   path fetches the systematic fragments every time, so the saturated
   provider gates every read; the scheduler prices it out and decodes
   through parity.
2. **Zero cost when detached.**  A scheme that attached and then detached
   the scheduler produces byte-identical op reports (and the same final
   sim-clock reading) to one that never saw it — the same discipline the
   observatory and maintenance planes are held to.
"""

import numpy as np

from repro.cloud.provider import make_table2_cloud_of_clouds
from repro.core.config import HyRDConfig
from repro.core.resilience import ResilienceConfig
from repro.core.scheduling import FragmentScheduler
from repro.obs import ProviderLoadObservatory
from repro.schemes import HyrdScheme
from repro.sim.clock import SimClock
from repro.sim.rng import make_rng

MB = 1024 * 1024

#: the hard floor the scheduled run must clear over static selection
SPEEDUP_FLOOR = 1.3

FILES = 8
READS = 120


def _skewed_read_run(schedule: bool, seed: int = 0):
    """One sustained skewed-read run; returns (ops/s, scheme, histogram).

    Hot-file promotion is disabled so both runs measure the striped read
    path itself — a promoted full copy would route around the stripe for
    scheduler and static alike.
    """
    clock = SimClock()
    providers = make_table2_cloud_of_clouds(clock)
    scheme = HyrdScheme(
        list(providers.values()),
        clock,
        config=HyRDConfig(hot_file_threshold=0),
    )
    if schedule:
        scheme.attach_observatory(ProviderLoadObservatory())
        scheme.attach_scheduler(FragmentScheduler())
    rng = make_rng(seed, "read-sched-bench")
    payloads = {}
    for i in range(FILES):
        data = rng.integers(0, 256, 2 * MB, dtype=np.uint8).tobytes()
        scheme.put(f"/s/f{i}", data)
        payloads[i] = data

    # Saturate the provider holding fragment 0 and brown out the holder of
    # fragment 1: both are *systematic* placements, so static selection
    # waits on them for every single read.  Deriving the victims from the
    # actual placement keeps the scenario honest under any dispatcher
    # policy.
    from repro.faults.profile import FaultProfile, LatencyBrownout

    placements = dict(
        (idx, prov) for prov, idx in scheme.namespace.get("/s/f0").placements
    )
    horizon = clock.now + 1e9
    providers[placements[0]].faults = FaultProfile(
        [LatencyBrownout(clock.now, horizon, rtt_factor=10.0, bw_factor=0.05)]
    ).bind(placements[0])
    providers[placements[1]].faults = FaultProfile(
        [LatencyBrownout(clock.now, horizon, rtt_factor=2.0, bw_factor=0.5)]
    ).bind(placements[1])

    # Zipf-skewed popularity (s = 1.2): the head files absorb most reads,
    # exactly the hot-path regime the fractional split policy targets.
    weights = np.array([1.0 / (i + 1) ** 1.2 for i in range(FILES)])
    sequence = rng.choice(FILES, size=READS, p=weights / weights.sum())
    t0 = clock.now
    histogram: dict[tuple[str, ...], int] = {}
    for j in sequence:
        data, report = scheme.get(f"/s/f{j}")
        assert data == payloads[j], "scheduled read returned wrong bytes"
        key = tuple(sorted(report.providers))
        histogram[key] = histogram.get(key, 0) + 1
    return READS / (clock.now - t0), scheme, histogram


def test_scheduled_beats_static_under_skewed_load(benchmark):
    """Gate 1 — >= 1.3x sustained ops/s over static fragment selection."""

    def experiment():
        scheduled, scheme, histogram = _skewed_read_run(schedule=True)
        static, _, _ = _skewed_read_run(schedule=False)
        return scheduled, static, scheme, histogram

    scheduled, static, scheme, histogram = benchmark.pedantic(
        experiment, rounds=1, iterations=1
    )
    assert scheduled >= SPEEDUP_FLOOR * static, (
        f"scheduled {scheduled:.3f} ops/s vs static {static:.3f} ops/s — "
        f"{scheduled / static:.2f}x is under the {SPEEDUP_FLOOR}x floor"
    )
    # The win must come from routing, not luck: every read was a scheduler
    # decision, and the saturated systematic fragment was replaced by
    # parity on (nearly) all of them.
    registry = scheme.registry
    assert registry.counter_value("sched_decisions_total") == READS
    assert registry.counter_value("sched_parity_fragments_total") > READS // 2
    # The subset-choice histogram shows real routing diversity: more than
    # one distinct provider subset served the workload.
    assert len(histogram) >= 2, f"degenerate routing: {histogram}"


def _zero_cost_run(attach_and_detach: bool):
    clock = SimClock()
    providers = make_table2_cloud_of_clouds(clock)
    cfg = HyRDConfig(resilience=ResilienceConfig(hedge_reads=True))
    scheme = HyrdScheme(list(providers.values()), clock, config=cfg)
    if attach_and_detach:
        scheme.attach_observatory(ProviderLoadObservatory())
        scheme.attach_scheduler(FragmentScheduler())
        assert scheme.detach_scheduler() is not None
    rng = make_rng(0, "sched-zero-cost")
    for i in range(10):
        size = int(rng.integers(4 * 1024, 3 * MB))
        scheme.put(f"/z/f{i}", rng.integers(0, 256, size, dtype=np.uint8).tobytes())
    for i in range(10):
        scheme.get(f"/z/f{i}")
    scheme.update("/z/f0", 0, b"patch")
    scheme.remove("/z/f9")
    reports = [
        (r.op, r.path, r.elapsed, r.bytes_up, r.bytes_down, r.cloud_ops)
        for r in scheme.collector.reports
    ]
    return reports, clock.now


def test_detached_scheduler_is_byte_identical(benchmark):
    """Gate 2 — detaching restores the static read path byte-for-byte."""

    def experiment():
        base, t_base = _zero_cost_run(attach_and_detach=False)
        detached, t_detached = _zero_cost_run(attach_and_detach=True)
        return (base, t_base), (detached, t_detached)

    (base, t_base), (detached, t_detached) = benchmark.pedantic(
        experiment, rounds=1, iterations=1
    )
    assert base == detached
    assert t_base == t_detached
