"""Ablation — the large-file erasure code (DESIGN.md hook #4).

The paper fixes RAID5 "as a case study to fairly compare with the RACS
approach"; the codec registry makes the choice a config knob.  This sweep
measures what double-fault tolerance costs on the three cost-oriented
providers: RS(1+2) and FMSR(3,1) survive two concurrent outages but pay for
it in space and write latency.
"""

from repro.analysis.ablations import run_codec_ablation
from repro.analysis.tables import render_table


def test_large_file_codec_ablation(benchmark, emit):
    result = benchmark.pedantic(
        lambda: run_codec_ablation(seed=0), rounds=1, iterations=1
    )

    rows = [
        [name, m["mean_latency"], m["space_overhead"], int(m["fault_tolerance"])]
        for name, m in result.items()
    ]
    emit(
        render_table(
            ["Codec", "Mean latency (s)", "Space overhead", "Outages tolerated"],
            rows,
            title="Ablation — large-file erasure code (paper: RAID5)",
        )
    )

    raid5 = result["raid5(2+1)"]
    for name in ("rs(1+2)", "fmsr(3,1)"):
        other = result[name]
        assert other["fault_tolerance"] == 2.0
        assert raid5["fault_tolerance"] == 1.0
        # Double-fault tolerance costs real space and latency.
        assert other["space_overhead"] > raid5["space_overhead"] * 1.5
        assert other["mean_latency"] > raid5["mean_latency"]
