"""Recovery drill — §III-C's two-phase outage recovery, measured.

Phase 1 (service unavailable): reads reconstruct on demand, writes/updates
are logged.  Phase 2 (provider returns): the log replays as a consistency
update.  The benchmark measures the full lifecycle and asserts the
recovery-completeness invariants.
"""

from repro.analysis.experiments import run_recovery_drill
from repro.analysis.tables import render_table


def test_outage_recovery_drill(benchmark, emit):
    result = benchmark.pedantic(
        lambda: run_recovery_drill(seed=0), rounds=1, iterations=1
    )

    heal_bytes = sum(r.bytes_up for r in result["heal_reports"])
    heal_elapsed = sum(r.elapsed for r in result["heal_reports"])
    emit(
        render_table(
            ["Metric", "Value"],
            [
                ["mean latency during outage (s)", result["during_mean_latency"]],
                ["degraded-op fraction during outage", result["degraded_fraction"]],
                ["writes logged for the offline provider", result["logged_writes"]],
                ["consistency-update bytes replayed", heal_bytes],
                ["consistency-update wall time (s)", heal_elapsed],
                ["log entries left after heal", result["log_after_heal"]],
                ["mean latency after recovery (s)", result["post_mean_latency"]],
                ["degraded fraction after recovery", result["post_degraded_fraction"]],
            ],
            title="Recovery drill — HyRD through a 6-hour Azure outage",
        )
    )

    # Recovery completes: the log drains and nothing stays degraded.
    assert result["log_after_heal"] == 0
    assert result["post_degraded_fraction"] == 0.0
    # The consistency update actually moved the missed bytes.
    if result["logged_writes"] > 0:
        assert heal_bytes > 0
    # Service stayed up during the outage (ops completed and verified).
    assert result["during_mean_latency"] > 0
