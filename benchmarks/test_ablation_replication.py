"""Ablation — replication level of small files and metadata (§III-C).

The paper argues level 2 is the sweet spot: "two concurrent cloud outages
are extremely rare", while higher levels cost space and write latency.
The sweep measures that trade-off; the level is configurable in HyRD
exactly as the paper says.
"""

from repro.analysis.ablations import run_replication_sweep
from repro.analysis.tables import render_table


def test_replication_level_sweep(benchmark, emit):
    points = benchmark.pedantic(
        lambda: run_replication_sweep(levels=[1, 2, 3, 4], seed=0),
        rounds=1,
        iterations=1,
    )

    rows = [
        [p.level, p.mean_latency, p.space_overhead, p.survives_outages]
        for p in points
    ]
    emit(
        render_table(
            ["Level", "Mean latency (s)", "Space overhead", "Outages survived"],
            rows,
            title="Ablation — replication level of small files/metadata (paper: 2)",
        )
    )

    by_level = {p.level: p for p in points}
    # Space overhead strictly grows with the level.
    overheads = [p.space_overhead for p in points]
    assert all(b > a for a, b in zip(overheads, overheads[1:]))
    # Level 1 tolerates no outage; level 2 is the minimum available config.
    assert by_level[1].survives_outages == 0
    assert by_level[2].survives_outages == 1
    # Going 2 -> 4 buys resilience the paper calls unnecessary, at real cost:
    assert by_level[4].space_overhead > by_level[2].space_overhead * 1.05
    assert by_level[4].mean_latency >= by_level[2].mean_latency * 0.9
