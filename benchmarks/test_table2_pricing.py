"""Table II — monthly price plans and the provider-category row.

Regenerates the paper's pricing table from the presets and verifies the
Evaluator *re-derives* the paper's category row (Amazon S3: cost, Azure:
performance, Aliyun: both, Rackspace: cost) from measured probes + prices.
"""

from repro.analysis.experiments import run_table2
from repro.analysis.tables import render_table
from repro.cloud.provider import make_table2_cloud_of_clouds
from repro.core.config import HyRDConfig
from repro.core.evaluator import CostPerformanceEvaluator
from repro.sim.clock import SimClock


def test_table2_pricing_and_categories(benchmark, emit):
    def experiment():
        rows = run_table2()
        clock = SimClock()
        providers = make_table2_cloud_of_clouds(clock)
        evaluator = CostPerformanceEvaluator(list(providers.values()), HyRDConfig())
        profiles = evaluator.evaluate()
        return rows, profiles

    rows, profiles = benchmark.pedantic(experiment, rounds=1, iterations=1)

    emit(
        render_table(
            [
                "Vendor",
                "Storage $/GB-mo",
                "Data out $/GB",
                "3Ps+List $/10K",
                "Get $/10K",
                "Category (Table II)",
            ],
            rows,
            title="Table II — price plans, China region, Sept 10 2014",
            floatfmt=".4f",
        )
        + "\n\nEvaluator-derived categories (measured probes + price plans):\n"
        + "\n".join(
            f"  {name:10s} -> perf={p.is_performance_oriented} cost={p.is_cost_oriented}"
            for name, p in profiles.items()
        )
    )

    # The derived classification must equal the paper's bottom row.
    assert profiles["amazon_s3"].is_cost_oriented
    assert not profiles["amazon_s3"].is_performance_oriented
    assert profiles["azure"].is_performance_oriented
    assert not profiles["azure"].is_cost_oriented
    assert profiles["aliyun"].is_cost_oriented and profiles["aliyun"].is_performance_oriented
    assert profiles["rackspace"].is_cost_oriented
    assert not profiles["rackspace"].is_performance_oriented
