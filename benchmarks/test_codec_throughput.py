"""Microbenchmarks — erasure-codec encode/decode throughput.

Not a paper figure: these keep the substrate honest (encode cost must be
negligible next to simulated WAN transfer times) and give pytest-benchmark
something to time across rounds.

``test_rs_k2m2_encode_speedup_floor`` is the regression gate behind the
vectorised GF kernel overhaul (``repro.erasure.gfkernel``): RS(2+2) encode
must stay at least 10x the throughput measured at the pre-kernel commit,
and every fragment byte must match the scalar ``gf_matmul`` oracle.  See
``docs/codecs.md`` for the kernel design and ``docs/performance.md`` for
the measured before/after table.
"""

import gc
import time

import numpy as np
import pytest

from repro.erasure.fmsr import FMSRCode
from repro.erasure.galois import gf_matmul
from repro.erasure.raid5 import Raid5Code
from repro.erasure.reed_solomon import ReedSolomonCode
from repro.erasure.striping import split_shards

MB = 1024 * 1024
PAYLOAD = np.random.default_rng(7).integers(0, 256, 4 * MB, dtype=np.uint8).tobytes()

#: RS k=2 m=2 encode MB/s measured at the pre-kernel commit with this same
#: payload on the reference box (recorded in BENCH_2026-08-06.json before
#: the overhaul) — the 10x target is asserted against this constant, not a
#: moving baseline
PRE_KERNEL_RS_K2M2_ENCODE_MB_S = 140.78
TARGET_SPEEDUP = 10.0
TRIALS = 5


@pytest.mark.parametrize(
    "codec",
    [Raid5Code(3), ReedSolomonCode(3, 2), FMSRCode(4)],
    ids=["raid5-3+1", "rs-3+2", "fmsr-4,2"],
)
def test_encode_throughput(benchmark, codec):
    fragments = benchmark(codec.encode, PAYLOAD)
    assert len(fragments) == codec.n


@pytest.mark.parametrize(
    "codec",
    [Raid5Code(3), ReedSolomonCode(3, 2), FMSRCode(4)],
    ids=["raid5-3+1", "rs-3+2", "fmsr-4,2"],
)
def test_degraded_decode_throughput(benchmark, codec):
    """Decode with fragment 0 erased — the outage reconstruction path."""
    fragments = codec.encode(PAYLOAD)
    available = {i: f for i, f in enumerate(fragments) if i != 0}
    result = benchmark(codec.decode, available, len(PAYLOAD))
    assert result == PAYLOAD


def test_raid5_repair_throughput(benchmark):
    codec = Raid5Code(3)
    fragments = codec.encode(PAYLOAD)
    available = {i: f for i, f in enumerate(fragments) if i != 1}
    rebuilt = benchmark(codec.reconstruct_fragment, available, 1, len(PAYLOAD))
    assert rebuilt == fragments[1]


def test_rs_k2m2_encode_speedup_floor(benchmark, emit):
    """The kernel-overhaul gate: >= 10x the pre-kernel RS(2+2) encode rate.

    Warm best-of-N (the first call binds the encode plan and builds its
    gather tables; steady-state is what the replay data plane sees), with
    fragment bytes asserted identical to the scalar GF oracle.
    """
    codec = ReedSolomonCode(2, 2)
    size_mb = len(PAYLOAD) / MB

    # Correctness first: kernel fragments == scalar-oracle fragments.
    shards = split_shards(PAYLOAD, codec.k)
    oracle = gf_matmul(codec.generator_matrix, shards)
    fragments = codec.encode_views(PAYLOAD)
    assert len(fragments) == codec.n
    for i, frag in enumerate(fragments):
        assert bytes(frag) == oracle[i].tobytes(), f"fragment {i} diverged"

    walls: list[float] = []

    def once() -> None:
        t0 = time.perf_counter()
        codec.encode_views(PAYLOAD)
        walls.append(time.perf_counter() - t0)
        gc.collect()

    benchmark.pedantic(once, rounds=TRIALS, warmup_rounds=1, iterations=1)
    best_mb_s = size_mb / min(walls)
    speedup = best_mb_s / PRE_KERNEL_RS_K2M2_ENCODE_MB_S

    emit(
        "RS(2+2) encode throughput — vectorised GF kernel gate\n"
        f"  payload:       {size_mb:.0f} MiB\n"
        f"  best encode:   {best_mb_s:.1f} MB/s\n"
        f"  pre-kernel:    {PRE_KERNEL_RS_K2M2_ENCODE_MB_S:.2f} MB/s\n"
        f"  speedup:       {speedup:.1f}x (target >= {TARGET_SPEEDUP:.0f}x)"
    )
    assert best_mb_s >= TARGET_SPEEDUP * PRE_KERNEL_RS_K2M2_ENCODE_MB_S, (
        f"RS(2+2) encode {best_mb_s:.1f} MB/s is below the "
        f"{TARGET_SPEEDUP:.0f}x floor over {PRE_KERNEL_RS_K2M2_ENCODE_MB_S} MB/s"
    )


def test_rs_batch_encode_amortization(benchmark, emit):
    """Batched burst encode: identical bytes, one parity pass for the burst."""
    codec = ReedSolomonCode(3, 2)
    rng = np.random.default_rng(11)
    burst = [
        rng.integers(0, 256, size=int(n), dtype=np.uint8).tobytes()
        for n in rng.integers(1 * 1024, 64 * 1024, size=64)
    ]

    batched = codec.encode_views_batch(burst)
    for payload, frags in zip(burst, batched):
        singles = codec.encode_views(payload)
        assert [bytes(f) for f in frags] == [bytes(f) for f in singles]

    t0 = time.perf_counter()
    for _ in range(5):
        codec.encode_views_batch(burst)
    batch_wall = (time.perf_counter() - t0) / 5
    t0 = time.perf_counter()
    for _ in range(5):
        for payload in burst:
            codec.encode_views(payload)
    single_wall = (time.perf_counter() - t0) / 5

    benchmark.pedantic(lambda: codec.encode_views_batch(burst), rounds=3, iterations=1)
    total_mb = sum(len(p) for p in burst) / MB
    emit(
        "RS(3+2) burst encode — batched vs per-stripe\n"
        f"  burst:         {len(burst)} stripes, {total_mb:.2f} MiB total\n"
        f"  per-stripe:    {total_mb / single_wall:.1f} MB/s\n"
        f"  batched:       {total_mb / batch_wall:.1f} MB/s "
        f"({single_wall / batch_wall:.2f}x)"
    )


def test_fmsr_functional_repair_throughput(benchmark):
    codec = FMSRCode(4)
    fragments = codec.encode(PAYLOAD)
    survivors = {i: f for i, f in enumerate(fragments) if i != 2}

    def repair():
        return codec.repair(survivors, 2, len(PAYLOAD))

    new_fragment, _successor = benchmark(repair)
    assert len(new_fragment) == codec.fragment_size(len(PAYLOAD))
