"""Microbenchmarks — erasure-codec encode/decode throughput.

Not a paper figure: these keep the substrate honest (encode cost must be
negligible next to simulated WAN transfer times) and give pytest-benchmark
something to time across rounds.
"""

import numpy as np
import pytest

from repro.erasure.fmsr import FMSRCode
from repro.erasure.raid5 import Raid5Code
from repro.erasure.reed_solomon import ReedSolomonCode

MB = 1024 * 1024
PAYLOAD = np.random.default_rng(7).integers(0, 256, 4 * MB, dtype=np.uint8).tobytes()


@pytest.mark.parametrize(
    "codec",
    [Raid5Code(3), ReedSolomonCode(3, 2), FMSRCode(4)],
    ids=["raid5-3+1", "rs-3+2", "fmsr-4,2"],
)
def test_encode_throughput(benchmark, codec):
    fragments = benchmark(codec.encode, PAYLOAD)
    assert len(fragments) == codec.n


@pytest.mark.parametrize(
    "codec",
    [Raid5Code(3), ReedSolomonCode(3, 2), FMSRCode(4)],
    ids=["raid5-3+1", "rs-3+2", "fmsr-4,2"],
)
def test_degraded_decode_throughput(benchmark, codec):
    """Decode with fragment 0 erased — the outage reconstruction path."""
    fragments = codec.encode(PAYLOAD)
    available = {i: f for i, f in enumerate(fragments) if i != 0}
    result = benchmark(codec.decode, available, len(PAYLOAD))
    assert result == PAYLOAD


def test_raid5_repair_throughput(benchmark):
    codec = Raid5Code(3)
    fragments = codec.encode(PAYLOAD)
    available = {i: f for i, f in enumerate(fragments) if i != 1}
    rebuilt = benchmark(codec.reconstruct_fragment, available, 1, len(PAYLOAD))
    assert rebuilt == fragments[1]


def test_fmsr_functional_repair_throughput(benchmark):
    codec = FMSRCode(4)
    fragments = codec.encode(PAYLOAD)
    survivors = {i: f for i, f in enumerate(fragments) if i != 2}

    def repair():
        return codec.repair(survivors, 2, len(PAYLOAD))

    new_fragment, _successor = benchmark(repair)
    assert len(new_fragment) == codec.fragment_size(len(PAYLOAD))
