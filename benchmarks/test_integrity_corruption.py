"""Extension — availability under silent corruption (HAIL, citation [8]).

The paper cites HAIL for "integrity and availability guarantees"; our
fragment-digest layer supplies the mechanism.  This benchmark corrupts a
random fraction of stored objects across the fleet and measures how much of
the namespace each scheme can still serve *correctly* — verification turns
silent corruption into erasures the redundancy absorbs.
"""

import numpy as np

from repro.analysis.tables import render_table
from repro.cloud.provider import make_table2_cloud_of_clouds
from repro.schemes import DuraCloudScheme, HyrdScheme, RacsScheme, SingleCloudScheme
from repro.schemes.base import DataUnavailable
from repro.sim.clock import SimClock
from repro.sim.rng import make_rng

KB, MB = 1024, 1024 * 1024
CORRUPT_FRACTION = 0.18  # of stored objects, fleet-wide
FILES = 30


def _run_one(name, builder, seed=0):
    clock = SimClock()
    providers = make_table2_cloud_of_clouds(clock)
    scheme = builder(providers, clock)
    rng = make_rng(seed, "corruption", name)
    contents = {}
    for i in range(FILES):
        path = f"/c/f{i:02d}"
        size = int(rng.integers(2 * KB, 64 * KB))
        contents[path] = rng.integers(0, 256, size, dtype=np.uint8).tobytes()
        scheme.put(path, contents[path])

    # Corrupt a fleet-wide sample of data objects (not metadata groups).
    corrupted = 0
    for provider in providers.values():
        store = provider.store
        for container in store.containers():
            for key in store.list(container):
                if key.startswith("__meta__"):
                    continue
                if rng.random() < CORRUPT_FRACTION:
                    obj = store.get(container, key)
                    if obj.size == 0:
                        continue
                    garbled = bytes(b ^ 0xA5 for b in obj.data)
                    store.put(container, key, garbled, 0.0)
                    corrupted += 1

    served = wrong = unavailable = 0
    for path, data in contents.items():
        try:
            got, _ = scheme.get(path)
        except DataUnavailable:
            unavailable += 1
            continue
        if got == data:
            served += 1
        else:
            wrong += 1
    return {
        "scheme": name,
        "corrupted_objects": corrupted,
        "served_correctly": served,
        "detected_unavailable": unavailable,
        "silently_wrong": wrong,
    }


def test_availability_under_silent_corruption(benchmark, emit):
    builders = {
        "single-aliyun": lambda p, c: SingleCloudScheme(p["aliyun"], c),
        "duracloud": lambda p, c: DuraCloudScheme([p["amazon_s3"], p["azure"]], c),
        "racs": lambda p, c: RacsScheme(list(p.values()), c),
        "hyrd": lambda p, c: HyrdScheme(list(p.values()), c),
    }

    def experiment():
        return [_run_one(name, builder) for name, builder in builders.items()]

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)

    emit(
        render_table(
            ["Scheme", "Objects corrupted", "Served OK", "Unavailable", "Silently wrong"],
            [
                [
                    r["scheme"],
                    r["corrupted_objects"],
                    r["served_correctly"],
                    r["detected_unavailable"],
                    r["silently_wrong"],
                ]
                for r in results
            ],
            title=(
                f"Silent corruption of ~{CORRUPT_FRACTION:.0%} of stored objects "
                f"({FILES} files per scheme)"
            ),
        )
    )

    by_name = {r["scheme"]: r for r in results}
    # The integrity layer's first guarantee: NOTHING is ever served wrong —
    # corruption is always detected, never silently returned.
    for r in results:
        assert r["silently_wrong"] == 0, f"{r['scheme']} served corrupt data"
    # Replication-backed schemes absorb corruption the single cloud cannot.
    for name in ("duracloud", "hyrd"):
        assert (
            by_name[name]["served_correctly"]
            >= by_name["single-aliyun"]["served_correctly"]
        )
        assert by_name[name]["served_correctly"] >= int(0.9 * FILES)
    # Instructive finding: under *independent per-object* corruption, RACS
    # is exposed through 4 objects per file with only single-fault
    # tolerance — a known weakness of wide single-parity stripes.  It still
    # serves the large majority and detects the rest.
    assert by_name["racs"]["served_correctly"] >= int(0.6 * FILES)
    assert (
        by_name["racs"]["served_correctly"]
        + by_name["racs"]["detected_unavailable"]
        == FILES
    )
