"""Extension — the retry tax: latency vs per-request fault rate.

Sweeps the fleet-wide transient-failure rate and measures each scheme's
mean operation latency.  Correctness never moves (that is what the retries
and the write log guarantee); what the user pays is latency — and the slope
differs by scheme, because every retry costs one round trip to whichever
provider failed, and the schemes talk to different numbers of providers per
operation.
"""

import numpy as np
import pytest

from repro.analysis.charts import line_chart
from repro.analysis.tables import render_table
from repro.cloud.provider import make_table2_cloud_of_clouds
from repro.core.config import HyRDConfig
from repro.core.resilience import ResilienceConfig
from repro.schemes import DuraCloudScheme, HyrdScheme, RacsScheme
from repro.sim.clock import SimClock
from repro.sim.rng import make_rng
from repro.workloads.postmark import PostMarkConfig, generate_postmark
from repro.workloads.trace import TraceReplayer

KB, MB = 1024, 1024 * 1024
RATES = [0.0, 0.05, 0.1, 0.2]

# Backoff ablation: same scheme, same retry attempts, but the exponential
# waits between attempts are zeroed out.
_NO_BACKOFF_CONFIG = HyRDConfig(
    resilience=ResilienceConfig(retry=ResilienceConfig().retry.without_backoff())
)


def _mean_latency(builder, rate, seed=0):
    clock = SimClock()
    fleet = make_table2_cloud_of_clouds(clock)
    for p in fleet.values():
        p.fault_rate = rate
    scheme = builder(fleet, clock)
    config = PostMarkConfig(file_pool=15, transactions=60, size_hi=8 * MB)
    ops = generate_postmark(config, make_rng(seed, "fault-sweep"))
    collector = TraceReplayer(seed=seed).run(scheme, ops, heal_between=True)
    user_ops = [r.elapsed for r in collector.reports if r.op not in ("heal",)]
    return float(np.mean(user_ops))


def test_latency_vs_fault_rate(benchmark, emit):
    builders = {
        "duracloud": lambda p, c: DuraCloudScheme([p["amazon_s3"], p["azure"]], c),
        "racs": lambda p, c: RacsScheme(list(p.values()), c),
        "hyrd": lambda p, c: HyrdScheme(list(p.values()), c),
        "hyrd-nobackoff": lambda p, c: HyrdScheme(
            list(p.values()), c, config=_NO_BACKOFF_CONFIG
        ),
    }

    def experiment():
        return {
            name: [_mean_latency(builder, rate) for rate in RATES]
            for name, builder in builders.items()
        }

    series = benchmark.pedantic(experiment, rounds=1, iterations=1)

    rows = [
        [f"{rate:.0%}"] + [series[name][i] for name in builders]
        for i, rate in enumerate(RATES)
    ]
    emit(
        render_table(
            ["Fault rate"] + list(builders),
            rows,
            title="Mean op latency (s) vs per-request transient fault rate",
        )
        + "\n\n"
        + line_chart(
            [f"{r:.0%}" for r in RATES],
            series,
            title="The retry tax (content correctness verified throughout)",
        )
    )

    for name, values in series.items():
        # Latency rises with the fault rate; correctness was verified inline
        # by the replayer at every point.
        assert values[-1] > values[0], name
        # The tax stays bounded: 20% faults cost < 2.5x the clean latency.
        assert values[-1] < 2.5 * values[0], name
    # HyRD remains the fastest scheme at every fault rate.
    for i in range(len(RATES)):
        assert series["hyrd"][i] < series["racs"][i]
        assert series["hyrd"][i] < series["duracloud"][i]
    # Backoff ablation: the waits are the only difference, so with no faults
    # the two HyRD columns are identical, and under faults the no-backoff
    # variant is never slower (it pays retry round trips but never sleeps).
    assert series["hyrd-nobackoff"][0] == pytest.approx(series["hyrd"][0])
    for i in range(len(RATES)):
        assert series["hyrd-nobackoff"][i] <= series["hyrd"][i]
    assert series["hyrd-nobackoff"][-1] < series["hyrd"][-1]
