"""Ablation — the small/large file-size threshold (§III-C, §IV).

The paper: "We have conducted sensitivity experiments to investigate the
file-size threshold" and picks 1 MB from Figure 5's latency knee.  This
sweep regenerates the evidence: space overhead climbs as the threshold
pushes multi-megabyte files into 2x replication, while tiny thresholds
drag small files through the erasure stripe's round-trip amplification.
"""

from repro.analysis.ablations import run_threshold_sweep
from repro.analysis.tables import render_table

KB, MB = 1024, 1024 * 1024


def test_threshold_sensitivity_sweep(benchmark, emit):
    thresholds = [64 * KB, 256 * KB, 1 * MB, 4 * MB, 16 * MB]
    points = benchmark.pedantic(
        lambda: run_threshold_sweep(thresholds=thresholds, seed=0),
        rounds=1,
        iterations=1,
    )

    rows = [
        [
            f"{p.threshold // KB}KB" if p.threshold < MB else f"{p.threshold // MB}MB",
            p.mean_latency,
            p.space_overhead,
            p.small_fraction_bytes,
        ]
        for p in points
    ]
    emit(
        render_table(
            ["Threshold", "Mean latency (s)", "Space overhead", "Small bytes frac"],
            rows,
            title="Ablation — file-size threshold sweep (paper picks 1 MB)",
        )
    )

    by_threshold = {p.threshold: p for p in points}
    # More replication as the threshold grows: overhead and the share of
    # bytes classified small must both be monotone non-decreasing.
    overheads = [p.space_overhead for p in points]
    fracs = [p.small_fraction_bytes for p in points]
    assert fracs == sorted(fracs)
    assert overheads[-1] > overheads[0]
    # The 1 MB operating point keeps overhead well under DuraCloud's 2x.
    assert by_threshold[1 * MB].space_overhead < 1.8
    # And its latency is within 15% of the best point in the sweep (flat
    # valley around the knee — the paper's justification for 1 MB).
    best = min(p.mean_latency for p in points)
    assert by_threshold[1 * MB].mean_latency <= best * 1.15
