"""Figure 5 — read/write latency vs request size per single-cloud provider.

Sizes 4 KB ... 4 MB against each Table II provider.  Paper observations:
Aliyun lowest latency everywhere; large variance across providers; the
disproportionate 1 MB -> 4 MB jump that fixes HyRD's threshold at 1 MB.
"""

from repro.analysis.experiments import run_fig5
from repro.analysis.tables import render_table

KB, MB = 1024, 1024 * 1024
PROVIDERS = ["amazon_s3", "azure", "aliyun", "rackspace"]


def _label(size: int) -> str:
    return f"{size // MB}MB" if size >= MB else f"{size // KB}KB"


def test_fig5_latency_vs_request_size(benchmark, emit):
    res = benchmark.pedantic(
        lambda: run_fig5(seed=0, repeats=9, parallel=True), rounds=1, iterations=1
    )

    read_rows = [
        [_label(s)] + [res.read[p][i] for p in PROVIDERS]
        for i, s in enumerate(res.sizes)
    ]
    write_rows = [
        [_label(s)] + [res.write[p][i] for p in PROVIDERS]
        for i, s in enumerate(res.sizes)
    ]
    emit(
        render_table(
            ["Size"] + PROVIDERS,
            read_rows,
            title="Figure 5(a) — read latency (s)",
        )
        + "\n\n"
        + render_table(
            ["Size"] + PROVIDERS,
            write_rows,
            title="Figure 5(b) — write latency (s)",
        )
        + "\n\n1MB->4MB latency growth (the threshold knee): "
        + ", ".join(f"{p}={res.knee_ratio(p):.2f}x" for p in PROVIDERS)
    )

    # Aliyun lowest at every size, reads and writes (paper observation 1).
    for i in range(len(res.sizes)):
        assert res.read["aliyun"][i] <= min(res.read[p][i] for p in PROVIDERS if p != "aliyun")
        assert res.write["aliyun"][i] <= min(res.write[p][i] for p in PROVIDERS if p != "aliyun")
    # Huge variance across providers (observation 2).
    assert max(res.read[p][-1] for p in PROVIDERS) > 3 * min(
        res.read[p][-1] for p in PROVIDERS
    )
    # Disproportionate growth from 1 MB to 4 MB (observation 3 -> threshold).
    for p in PROVIDERS:
        assert res.knee_ratio(p) > 2.0
