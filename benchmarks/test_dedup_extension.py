"""Extension — client-side deduplication (the paper's §VI future work).

A week of nightly backups of a slowly mutating dataset flows through HyRD
with and without the dedup layer; the benchmark measures the traffic and
storage reduction the paper anticipates from [21] (POD).
"""

import numpy as np

from repro.analysis.tables import render_table
from repro.cloud.provider import make_table2_cloud_of_clouds
from repro.dedup import ContentDefinedChunker, DedupLayer
from repro.schemes import HyrdScheme
from repro.sim.clock import SimClock
from repro.sim.rng import make_rng

KB, MB = 1024, 1024 * 1024


def _mutate(data: bytearray, rng: np.random.Generator, fraction: float) -> None:
    """Overwrite ``fraction`` of the buffer in 4 KB runs (nightly churn)."""
    n_edits = max(1, int(len(data) * fraction / (4 * KB)))
    for _ in range(n_edits):
        off = int(rng.integers(0, max(len(data) - 4 * KB, 1)))
        data[off : off + 4 * KB] = rng.integers(
            0, 256, 4 * KB, dtype=np.uint8
        ).tobytes()


def _run_backups(with_dedup: bool) -> dict[str, float]:
    rng = make_rng(0, "dedup-backup")
    clock = SimClock()
    providers = make_table2_cloud_of_clouds(clock)
    hyrd = HyrdScheme(list(providers.values()), clock)
    dataset = bytearray(rng.integers(0, 256, 3 * MB, dtype=np.uint8).tobytes())
    # Chunks sized close to the edit granularity: a 4 KB edit should dirty
    # roughly one chunk, not amplify across a much larger one.
    layer = DedupLayer(hyrd, ContentDefinedChunker(avg_size=16 * KB))

    nights = 7
    t0 = clock.now
    for night in range(nights):
        if night:
            _mutate(dataset, rng, fraction=0.03)
        path = f"/backup/night{night}.img"
        if with_dedup:
            layer.put(path, bytes(dataset))
        else:
            hyrd.put(path, bytes(dataset))
    elapsed = clock.now - t0

    bytes_up, _ = hyrd.collector.total_bytes()
    # Verify the latest backup is fully reconstructable either way.
    if with_dedup:
        assert layer.get("/backup/night6.img") == bytes(dataset)
    else:
        got, _ = hyrd.get("/backup/night6.img")
        assert got == bytes(dataset)
    return {
        "logical": float(nights * 3 * MB),
        "uploaded": float(bytes_up),
        "stored": float(hyrd.total_stored_bytes()),
        "elapsed": elapsed,
        "ratio": layer.dedup_ratio() if with_dedup else 1.0,
    }


def test_dedup_backup_workload(benchmark, emit):
    def experiment():
        return _run_backups(with_dedup=False), _run_backups(with_dedup=True)

    baseline, deduped = benchmark.pedantic(experiment, rounds=1, iterations=1)

    emit(
        render_table(
            ["Metric", "HyRD", "HyRD + dedup"],
            [
                ["logical bytes written", baseline["logical"], deduped["logical"]],
                ["bytes uploaded", baseline["uploaded"], deduped["uploaded"]],
                ["bytes stored in clouds", baseline["stored"], deduped["stored"]],
                ["wall time of 7 backups (s)", baseline["elapsed"], deduped["elapsed"]],
                ["dedup ratio", baseline["ratio"], deduped["ratio"]],
            ],
            title="Extension — nightly backups through the dedup layer (§VI)",
            floatfmt=".0f",
        )
    )

    # The §VI promise: less network traffic AND less stored data (hence
    # cost).  Latency is the documented trade-off — per-chunk round trips
    # dominate, which is precisely why the paper calls client-side dedup
    # "not easy and needs careful design considerations" (batching would be
    # that design work).
    assert deduped["uploaded"] < 0.6 * baseline["uploaded"]
    assert deduped["stored"] < 0.6 * baseline["stored"]
    assert deduped["ratio"] > 2.5  # 7 backups with 3% nightly churn
