"""Extension — disaster recovery: rebuilding the client from the clouds.

HyRD is client-side middleware, so the paper's availability story implies a
second recovery question beyond provider outages: losing the *client*.  The
metadata groups persisted on every mutation make the cloud the namespace of
record; this benchmark measures a cold client rebuilding it and re-serving
the full dataset, under HyRD (replicated metadata) and RACS (striped
metadata), including with one provider down during the rebuild.
"""

import numpy as np

from repro.analysis.tables import render_table
from repro.cloud.outage import OutageWindow
from repro.cloud.provider import make_table2_cloud_of_clouds
from repro.schemes import HyrdScheme, RacsScheme
from repro.sim.clock import SimClock
from repro.sim.rng import make_rng

KB, MB = 1024, 1024 * 1024
FILES = 24
DIRS = 6


def _run_case(builder, outage_provider=None, seed=0):
    clock = SimClock()
    providers = make_table2_cloud_of_clouds(clock)
    first = builder(providers, clock)
    rng = make_rng(seed, "dr")
    contents = {}
    for i in range(FILES):
        path = f"/dr/d{i % DIRS}/f{i:03d}"
        size = int(rng.integers(4 * KB, 256 * KB))
        contents[path] = rng.integers(0, 256, size, dtype=np.uint8).tobytes()
        first.put(path, contents[path])

    second = builder(providers, clock)
    if outage_provider:
        providers[outage_provider].outages.add(
            OutageWindow(clock.now, clock.now + 3600)
        )
    report = second.recover_namespace()
    recovered = len(second.namespace)
    verified = 0
    for path, data in contents.items():
        got, _ = second.get(path)
        if got == data:
            verified += 1
    return {
        "recovered": recovered,
        "verified": verified,
        "elapsed": report.elapsed,
        "meta_bytes": report.bytes_down,
        "cloud_ops": report.cloud_ops,
    }


def test_client_disaster_recovery(benchmark, emit):
    def experiment():
        return {
            "hyrd": _run_case(lambda p, c: HyrdScheme(list(p.values()), c)),
            "hyrd (azure down)": _run_case(
                lambda p, c: HyrdScheme(list(p.values()), c), "azure"
            ),
            "racs": _run_case(lambda p, c: RacsScheme(list(p.values()), c)),
            "racs (azure down)": _run_case(
                lambda p, c: RacsScheme(list(p.values()), c), "azure"
            ),
        }

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)

    emit(
        render_table(
            ["Case", "Files recovered", "Verified", "Rebuild (s)", "Meta bytes", "Requests"],
            [
                [name, r["recovered"], r["verified"], r["elapsed"], r["meta_bytes"], r["cloud_ops"]]
                for name, r in results.items()
            ],
            title=f"Cold-client namespace recovery ({FILES} files, {DIRS} directories)",
        )
    )

    for name, r in results.items():
        assert r["recovered"] == FILES, name
        assert r["verified"] == FILES, name
        assert r["meta_bytes"] > 0
    # Recovery is metadata-sized, not data-sized: far below the dataset.
    assert results["hyrd"]["meta_bytes"] < 0.05 * FILES * 256 * KB
