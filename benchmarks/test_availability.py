"""Extension — storage availability, the paper's titular metric, quantified.

The paper motivates Cloud-of-Clouds with availability (§I, §II) but reports
only latency and cost; this benchmark supplies the availability numbers:
analytic k-of-n availability per scheme plus a Monte-Carlo outage simulation
that must agree with it.
"""

import pytest

from repro.analysis.availability import (
    DAY,
    analytic_report,
    monte_carlo_report,
    nines,
)
from repro.analysis.tables import render_table


def test_availability_analytic_vs_monte_carlo(benchmark, emit):
    def experiment():
        analytic = analytic_report()  # MTBF 60 d, MTTR 12 h per provider
        mc = monte_carlo_report(seed=0, horizon=3000 * DAY)
        return analytic, mc

    analytic, mc = benchmark.pedantic(experiment, rounds=1, iterations=1)

    order = [
        "single-amazon_s3",
        "single-azure",
        "single-aliyun",
        "single-rackspace",
        "duracloud",
        "racs",
        "nccloud",
        "depsky",
        "depsky-ca",
        "hyrd-small",
        "hyrd-large",
        "hyrd",
    ]
    rows = [
        [name, analytic[name], nines(analytic[name]), mc[name]] for name in order
    ]
    emit(
        render_table(
            ["Scheme", "Analytic avail.", "Nines", "Monte-Carlo avail."],
            rows,
            title=(
                "Storage availability — provider MTBF 60 days, MTTR 12 hours\n"
                "(the paper's §I scenario: infrequent outages lasting up to days)"
            ),
            floatfmt=".6f",
        )
    )

    singles_best = max(v for k, v in analytic.items() if k.startswith("single-"))
    # The paper's core claim: every Cloud-of-Clouds scheme beats any single
    # cloud on availability — by more than an order of magnitude of downtime.
    for scheme in ("duracloud", "racs", "nccloud", "depsky", "hyrd"):
        assert analytic[scheme] > singles_best
        assert nines(analytic[scheme]) > nines(singles_best) + 1.0
    # Fault-tolerance ordering under equal provider availability.
    assert analytic["depsky"] > analytic["nccloud"] > analytic["racs"]
    # Monte-Carlo agrees with the closed form.
    for scheme in ("single-aliyun", "duracloud", "racs", "hyrd"):
        assert mc[scheme] == pytest.approx(analytic[scheme], abs=0.005)


def test_lockin_switching_costs(benchmark, emit):
    """§II-A quantified: leaving any provider under a CoC scheme costs less
    than the single-cloud worst case — the vendor-mobility argument."""
    from repro.analysis.lockin import single_cloud_exit_cost, switching_cost_report

    report = benchmark.pedantic(switching_cost_report, rounds=1, iterations=1)

    rows = [
        [sc.scheme, sc.departed, sc.bytes_read / 1024**3, sc.egress_cost, ", ".join(sc.read_from)]
        for sc in report
    ]
    emit(
        render_table(
            ["Scheme", "Departing", "GB read", "Exit $/GB", "Re-seed from"],
            rows,
            title="Vendor lock-in — egress cost of abandoning one provider",
            floatfmt=".4f",
        )
    )

    s3_lockin = single_cloud_exit_cost("amazon_s3")
    for scheme in ("duracloud", "racs", "hyrd"):
        costs = [sc.egress_cost for sc in report if sc.scheme == scheme]
        # No departure is worse than single-S3 lock-in, and on average the
        # Cloud-of-Clouds keeps the user strictly more mobile.
        assert max(costs) <= s3_lockin + 1e-12, scheme
        assert sum(costs) / len(costs) < s3_lockin, scheme
