#!/usr/bin/env python
"""SLO drill: watch availability burn down through a fault storm.

Runs the canonical fault storm (brownout + error burst + throttle +
flapping outage, the same run behind ``repro report`` and ``repro
watch``) with a :class:`~repro.obs.slo.SloTracker` attached and a
:class:`~repro.obs.timeseries.TimeSeriesSampler` snapshotting every 30
simulated seconds, then:

  1. renders the final dashboard frame,
  2. exports the metric time series (replayable with
     ``python -m repro watch --from slo-drill-ts.jsonl``),
  3. prints an error-budget verdict per availability class, and the
     observed-vs-scheduled downtime ledger per provider.

Run:  python examples/slo_drill.py
"""

from repro.obs import SloConfig, SloTracker, TimeSeriesSampler, run_fault_storm_report
from repro.obs.dashboard import render_dashboard

TS_OUT = "slo-drill-ts.jsonl"


def verdict(burn: float | None) -> str:
    if burn is None:
        return "no traffic — no verdict"
    if burn == 0.0:
        return "clean: no budget burned"
    if burn <= 1.0:
        return f"within budget (burn {burn:.2f}x)"
    return f"BUDGET BLOWN: burning {burn:.1f}x faster than the SLO allows"


def fmt(value: float | None, suffix: str = "s") -> str:
    return "--" if value is None else f"{value:.1f}{suffix}"


def main() -> None:
    slo = SloTracker(SloConfig(window=3600.0))
    sampler = TimeSeriesSampler(cadence=30.0, slo=slo)
    print("Running the canonical fault storm with an SLO tracker attached...\n")
    run_fault_storm_report(seed=0, trace=False, slo=slo, sampler=sampler)

    print(render_dashboard(sampler.ts, color=False))

    sampler.ts.write_jsonl(TS_OUT)
    print(
        f"\nTime series: {len(sampler.ts)} samples -> {TS_OUT} "
        f"(replay with `python -m repro watch --from {TS_OUT}`)"
    )

    summary = slo.summary()
    print("\nError-budget verdict (sliding window "
          f"{summary['window']:.0f}s, now t={summary['now']:.1f}s)")
    for cls in ("read", "write"):
        s = summary[cls]
        avail = s["availability"]
        avail_txt = "--" if avail is None else f"{avail:.4%}"
        print(
            f"  {cls:<5} target {s['target']:.3%}  availability {avail_txt}  "
            f"ops {s['ops']:>3}  -> {verdict(s['budget_burn'])}"
        )
    frac = summary["degraded_read_fraction"]
    if frac is not None:
        print(f"  degraded reads: {frac:.2%} of successful reads took a fallback path")

    print("\nProvider downtime — what the client saw vs what was injected")
    for name, feeds in summary["providers"].items():
        obs, sched = feeds["observed"], feeds["scheduled"]
        if obs["downtime"] == 0.0 and sched["downtime"] == 0.0:
            continue
        print(
            f"  {name:<10} observed {obs['downtime']:7.1f}s in {obs['failures']} "
            f"outages (mttr {fmt(obs['mttr'])})   "
            f"true {sched['downtime']:7.1f}s in {sched['failures']} "
            f"windows (mttr {fmt(sched['mttr'])}, mtbf {fmt(sched['mtbf'])})"
        )


if __name__ == "__main__":
    main()
