#!/usr/bin/env python
"""Observability tour: trace a run, read its metrics, replay the trace.

Walks the three layers of ``repro.obs`` on a small HyRD run with an
injected outage:

1. attach a :class:`RecordingTracer` so every operation, provider request,
   retry and codec call becomes a span on the simulated clock;
2. query the typed :class:`MetricsRegistry` the scheme now carries —
   counters, gauges and percentile histograms (all names documented in
   docs/metrics-reference.md);
3. export the trace as JSON-lines, replay it into a fresh
   :class:`RunReport`, and show the replayed report matches the live one
   byte for byte.

Run:  python examples/observability_tour.py
"""

import numpy as np

from repro import HyRDClient
from repro.cloud import OutageWindow, make_table2_cloud_of_clouds
from repro.obs import RecordingTracer, RunReport, flame_summary, parse_jsonl
from repro.sim import SimClock

KB, MB = 1024, 1024 * 1024


def main() -> None:
    # 1. A fleet with a tracer attached before any operation runs.
    clock = SimClock()
    providers = make_table2_cloud_of_clouds(clock)
    tracer = RecordingTracer(clock)
    hyrd = HyRDClient(list(providers.values()), clock, tracer=tracer)

    # A workload with an outage in the middle: puts, an Azure outage,
    # reads that must reconstruct, then recovery.
    rng = np.random.default_rng(7)
    for i in range(6):
        size = (16 * KB) if i % 2 else (2 * MB)
        hyrd.put(f"/f{i}", rng.integers(0, 256, size, dtype=np.uint8).tobytes())
    t0 = clock.now
    providers["azure"].outages.add(OutageWindow(t0, t0 + 3600.0))
    for i in range(6):
        data, report = hyrd.get(f"/f{i}")
        flag = "degraded" if report.degraded else "normal  "
        print(f"get /f{i}: {flag} {report.elapsed:7.3f}s via {report.providers}")

    # 2. The registry: typed counters/gauges/histograms behind the old
    #    collector API.
    print("\nResilience counters:", hyrd.registry.counters())
    print(
        "Requests by provider:",
        hyrd.registry.sum_by_label("provider_requests_total", "provider"),
    )
    hist = hyrd.registry.histogram("op_latency_seconds", op="get")
    print("get latency summary:", {k: round(v, 4) for k, v in hist.summary().items()})

    # 3. Spans: where did the simulated time go?
    print("\nFlame summary:")
    print(flame_summary(tracer.records, max_depth=2))

    # 4. Round-trip: the JSON-lines trace rebuilds the identical report.
    live = RunReport.from_scheme(hyrd).render()
    replayed = RunReport.from_trace(
        parse_jsonl(tracer.to_jsonl().splitlines())
    ).render()
    assert live == replayed
    print("trace round-trip: replayed report is byte-identical "
          f"({len(tracer.records)} records)")


if __name__ == "__main__":
    main()
