#!/usr/bin/env python
"""Escaping vendor lock-in: the §II-A scenario, executed.

A provider raises prices (or degrades), so the client walks away from it —
without downtime and without the full-egress bill a single-cloud user would
pay.  HyRD re-probes, reclassifies, migrates the affected placements, and
afterwards nothing references the departed vendor.

Run:  python examples/vendor_switch.py
"""

import numpy as np

from repro import HyRDClient
from repro.analysis.lockin import single_cloud_exit_cost
from repro.cloud import make_table2_cloud_of_clouds
from repro.cloud.pricing import GB
from repro.sim import SimClock
from repro.sim.rng import make_rng

KB, MB = 1024, 1024 * 1024


def main() -> None:
    clock = SimClock()
    providers = make_table2_cloud_of_clouds(clock)
    hyrd = HyRDClient(list(providers.values()), clock)
    rng = make_rng(11, "switch")

    # A working dataset: documents plus media.
    contents = {}
    for i in range(8):
        path = f"/team/notes/n{i}.md"
        contents[path] = rng.integers(0, 256, 24 * KB, dtype=np.uint8).tobytes()
        hyrd.put(path, contents[path])
    for i in range(3):
        path = f"/team/video/rec{i}.bin"
        contents[path] = rng.integers(0, 256, 4 * MB, dtype=np.uint8).tobytes()
        hyrd.put(path, contents[path])

    victim = "aliyun"
    affected = hyrd.placements_on(victim)
    print(f"{victim} holds data of {len(affected)} files "
          f"({', '.join(sorted(affected)[:3])}, ...)")

    # The single-cloud counterfactual: what lock-in would have cost.
    logical = sum(len(v) for v in contents.values())
    lockin = single_cloud_exit_cost("amazon_s3", logical)
    print(f"single-cloud counterfactual: leaving Amazon S3 with this dataset "
          f"would bill ${lockin:.4f} of egress (${0.201:.3f}/GB x "
          f"{logical / GB:.3f} GB)")

    # Execute the switch.
    egress_before = sum(p.meter.total_usage().bytes_out for p in providers.values())
    t0 = clock.now
    reports = hyrd.decommission(victim)
    wall = clock.now - t0
    egress = sum(p.meter.total_usage().bytes_out for p in providers.values()) - egress_before
    print(f"\ndecommissioned {victim}: {len(reports)} migrations in {wall:.1f}s "
          f"simulated, {egress / MB:.1f} MB read from surviving providers")

    # Verify: service intact, vendor unreferenced, new writes avoid it.
    for path, data in contents.items():
        got, _ = hyrd.get(path)
        assert got == data
    assert hyrd.placements_on(victim) == []
    hyrd.put("/team/notes/new.md", b"post-switch note")
    assert victim not in hyrd.namespace.get("/team/notes/new.md").providers
    print(f"all {len(contents)} files verified readable; "
          f"{victim} no longer referenced; new writes avoid it")
    print("\nprovider classification after the switch:")
    for name in hyrd.evaluator.ranked_by_speed():
        p = hyrd.evaluator.profiles[name]
        print(f"  {name:10s} perf={p.is_performance_oriented} cost={p.is_cost_oriented}")


if __name__ == "__main__":
    main()
