#!/usr/bin/env python
"""Tuning the small/large threshold for *your* workload.

The paper fixes the threshold at 1 MB from Figure 5's latency knee, but
§III-C is explicit that the right value is a sensitivity question.  This
example sweeps the threshold against a workload you describe with a few
knobs and prints the latency/space trade-off — the Abl. T experiment as a
user-facing tool.

Run:  python examples/threshold_tuning.py
"""

from repro.analysis.ablations import run_threshold_sweep
from repro.analysis.experiments import run_fig5
from repro.analysis.tables import render_table
from repro.workloads.postmark import PostMarkConfig

KB, MB = 1024, 1024 * 1024


def main() -> None:
    # 1. Where is the latency knee for these providers?  (Figure 5 logic.)
    fig5 = run_fig5(seed=0, sizes=[64 * KB, 256 * KB, 1 * MB, 4 * MB], repeats=5)
    print("Per-provider read latency growth across candidate thresholds:")
    for provider, series in fig5.read.items():
        steps = [f"{b / a:.2f}x" for a, b in zip(series, series[1:])]
        print(f"  {provider:10s} 64K->256K->1M->4M: {' '.join(steps)}")
    print("The jump past 1 MB is where transfer time swamps the RTT.\n")

    # 2. Sweep the threshold against a representative workload.
    workload = PostMarkConfig(file_pool=30, transactions=120, size_hi=32 * MB)
    points = run_threshold_sweep(
        thresholds=[64 * KB, 256 * KB, 1 * MB, 4 * MB, 16 * MB],
        seed=0,
        pm=workload,
    )
    rows = [
        [
            f"{p.threshold // KB}KB" if p.threshold < MB else f"{p.threshold // MB}MB",
            p.mean_latency,
            p.space_overhead,
            p.small_fraction_bytes,
        ]
        for p in points
    ]
    print(
        render_table(
            ["Threshold", "Mean latency (s)", "Space overhead", "Bytes replicated"],
            rows,
            title="Threshold sweep on your workload",
        )
    )

    # 3. Pick the knee: the cheapest point within 10% of the best latency.
    best_latency = min(p.mean_latency for p in points)
    viable = [p for p in points if p.mean_latency <= 1.10 * best_latency]
    pick = min(viable, key=lambda p: p.space_overhead)
    label = (
        f"{pick.threshold // KB}KB" if pick.threshold < MB else f"{pick.threshold // MB}MB"
    )
    print(
        f"\nRecommended threshold: {label} "
        f"({pick.mean_latency:.3f}s mean latency at {pick.space_overhead:.2f}x space). "
        f"The paper's 1 MB choice sits in the same flat valley."
    )


if __name__ == "__main__":
    main()
