#!/usr/bin/env python
"""Digital library in the cloud: the paper's motivating scenario (§I, §IV-B).

Synthesizes a year of Internet-Archive-style activity (Figure 3's shape:
reads outweigh writes 2.1:1 by bytes, 3.5:1 by requests) and compares the
cost of hosting it on single clouds vs DuraCloud, RACS and HyRD — the
Figure 4 experiment as a library call.

Run:  python examples/digital_library.py
"""

from repro.analysis.experiments import (
    DURACLOUD_PAIR,
    SINGLE_PROVIDERS,
    coc_factories,
    single_factory,
)
from repro.analysis.tables import render_table
from repro.cost.simulator import CostSimulator
from repro.sim.rng import make_rng
from repro.workloads.filesizes import MediaLibraryFileSizes
from repro.workloads.ia_trace import IATraceConfig, synthesize_ia_trace

MB = 1024 * 1024


def main() -> None:
    # 1. A year of library traffic (scaled down; bills scale linearly).
    config = IATraceConfig(
        months=12, writes_per_month=10, sizes=MediaLibraryFileSizes(scale=0.1)
    )
    trace = synthesize_ia_trace(config, make_rng(7, "library"))
    print(
        f"Trace: {len(trace.ops)} ops over {config.months} months, "
        f"read:write = {trace.total_read_to_write_bytes:.2f}:1 bytes, "
        f"{trace.total_read_to_write_requests:.2f}:1 requests"
    )
    print(f"DuraCloud pair in this comparison: {DURACLOUD_PAIR}\n")

    # 2. Replay the trace under every scheme — real puts/gets, real meters.
    simulator = CostSimulator(trace, seed=7)
    results = {}
    for name in SINGLE_PROVIDERS:
        results[name] = simulator.run(name, single_factory(name))
    for name, factory in coc_factories().items():
        results[name] = simulator.run(name, factory)

    # 3. The bill, Figure 4(b)-style.
    rows = []
    for name, result in sorted(results.items(), key=lambda kv: kv[1].grand_total):
        last = result.monthly[-1]
        rows.append(
            [
                name,
                result.grand_total,
                sum(l.storage for l in result.monthly),
                sum(l.data_out for l in result.monthly),
                sum(l.transactions for l in result.monthly),
                last.total,
            ]
        )
    print(
        render_table(
            ["Scheme", "Year total $", "Storage $", "Data out $", "Txns $", "Last month $"],
            rows,
            title="Hosting one year of the digital library (simulated scale)",
            floatfmt=".4f",
        )
    )

    hyrd, racs, dura = (results[n].grand_total for n in ("hyrd", "racs", "duracloud"))
    print(
        f"\nHyRD saves {1 - hyrd / dura:.1%} vs DuraCloud (paper: 33.4%) "
        f"and {1 - hyrd / racs:.1%} vs RACS (paper: 20.4%)."
    )


if __name__ == "__main__":
    main()
