#!/usr/bin/env python
"""Losing the client machine — and recovering the namespace from the clouds.

HyRD lives client-side, so the obvious question is: what happens when the
client dies?  Nothing is lost.  The per-directory metadata groups HyRD
replicates on the performance-oriented providers *are* the namespace; a
fresh client lists them, fetches them through the normal redundancy paths,
and is serving again in seconds.

Run:  python examples/client_restart.py
"""

import numpy as np

from repro import HyRDClient
from repro.cloud import make_table2_cloud_of_clouds
from repro.sim import SimClock
from repro.sim.rng import make_rng

KB, MB = 1024, 1024 * 1024


def main() -> None:
    clock = SimClock()
    providers = make_table2_cloud_of_clouds(clock)

    # Day 1: the original client stores a working set.
    original = HyRDClient(list(providers.values()), clock)
    rng = make_rng(3, "restart")
    contents = {}
    for i in range(6):
        path = f"/wiki/page{i:02d}.md"
        contents[path] = rng.integers(0, 256, 20 * KB, dtype=np.uint8).tobytes()
        original.put(path, contents[path])
    for i in range(2):
        path = f"/wiki/assets/video{i}.bin"
        contents[path] = rng.integers(0, 256, 3 * MB, dtype=np.uint8).tobytes()
        original.put(path, contents[path])
    print(f"original client stored {len(contents)} files "
          f"({original.namespace.total_bytes() / MB:.1f} MB logical)")

    # Day 2: the laptop is gone.  A new machine starts from nothing but the
    # provider credentials.
    replacement = HyRDClient(list(providers.values()), clock)
    print(f"replacement client starts with {len(replacement.namespace)} files known")

    report = replacement.recover_namespace()
    print(
        f"namespace recovered: {len(replacement.namespace)} files in "
        f"{report.elapsed:.3f}s simulated, {report.bytes_down} metadata bytes "
        f"from {report.providers}"
    )

    # Everything reads back, bit for bit, through the new client.
    for path, data in contents.items():
        got, _ = replacement.get(path)
        assert got == data
    entry = replacement.namespace.get("/wiki/assets/video0.bin")
    print(
        f"all {len(contents)} files verified; e.g. video0 is "
        f"{entry.codec}-coded on {', '.join(entry.providers)} "
        f"with {len(entry.digests)} integrity digests intact"
    )


if __name__ == "__main__":
    main()
