#!/usr/bin/env python
"""Nightly backups with client-side deduplication (§VI future work, built).

A 3 MB disk image is backed up every night for a week; ~3 % of it changes
per night.  The dedup layer chunks each image content-defined, uploads only
chunks the Cloud-of-Clouds has never seen, and stores a recipe per backup —
so a week of backups costs barely more than one, while every night remains
independently restorable through HyRD's redundancy.

Run:  python examples/nightly_backup.py
"""

import numpy as np

from repro import HyRDClient
from repro.cloud import make_table2_cloud_of_clouds
from repro.dedup import ContentDefinedChunker, DedupLayer
from repro.sim import SimClock
from repro.sim.rng import make_rng

KB, MB = 1024, 1024 * 1024


def main() -> None:
    clock = SimClock()
    providers = make_table2_cloud_of_clouds(clock)
    hyrd = HyRDClient(list(providers.values()), clock)
    layer = DedupLayer(hyrd, ContentDefinedChunker(avg_size=16 * KB))

    rng = make_rng(42, "backup")
    image = bytearray(rng.integers(0, 256, 3 * MB, dtype=np.uint8).tobytes())

    print("night  logical MB  uploaded MB (cumulative)  dedup ratio")
    for night in range(7):
        if night:
            # ~3% of the image changes in 4 KB runs overnight.
            for _ in range(23):
                off = int(rng.integers(0, 3 * MB - 4 * KB))
                image[off : off + 4 * KB] = rng.integers(
                    0, 256, 4 * KB, dtype=np.uint8
                ).tobytes()
        layer.put(f"/backups/night{night}.img", bytes(image))
        stats = layer.stats
        print(
            f"{night:5d}  {stats.logical_bytes / MB:10.1f}  "
            f"{stats.transferred_bytes / MB:24.1f}  {layer.dedup_ratio():11.2f}"
        )

    # Any night restores exactly, through HyRD's redundancy underneath.
    restored = layer.get("/backups/night6.img")
    assert restored == bytes(image)
    print(
        f"\nrestored night6 OK ({len(restored) / MB:.1f} MB); "
        f"traffic saved vs naive: {layer.stats.traffic_saved_fraction:.1%}"
    )

    # Dropping old backups garbage-collects chunks only they referenced.
    before = hyrd.total_stored_bytes()
    for night in range(5):
        layer.remove(f"/backups/night{night}.img")
    after = hyrd.total_stored_bytes()
    print(
        f"pruned nights 0-4: cloud storage {before / MB:.1f} MB -> {after / MB:.1f} MB; "
        f"remaining backups still restore: "
        f"{layer.get('/backups/night5.img') is not None}"
    )


if __name__ == "__main__":
    main()
