#!/usr/bin/env python
"""Quickstart: HyRD over a simulated Cloud-of-Clouds in ~60 lines.

Builds the paper's four-provider fleet (Amazon S3, Windows Azure, Aliyun,
Rackspace — Table II prices, Figure 5 latencies), stores a small and a large
file through HyRD, and shows where the hybrid dispatcher put them.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import HyRDClient
from repro.cloud import make_table2_cloud_of_clouds
from repro.sim import SimClock

MB = 1024 * 1024


def main() -> None:
    # 1. A simulated Cloud-of-Clouds on a shared simulated clock.
    clock = SimClock()
    providers = make_table2_cloud_of_clouds(clock)

    # 2. The HyRD client: probes providers, classifies them, and is ready.
    hyrd = HyRDClient(list(providers.values()), clock)
    print("Provider classification (measured probes + Table II prices):")
    for name, profile in hyrd.evaluator.profiles.items():
        kind = []
        if profile.is_performance_oriented:
            kind.append("performance")
        if profile.is_cost_oriented:
            kind.append("cost")
        print(f"  {name:10s} latency score {profile.latency_score:6.3f}s  -> {'+'.join(kind)}")

    # 3. Store a small file and a large file.
    rng = np.random.default_rng(0)
    small = rng.integers(0, 256, 16 * 1024, dtype=np.uint8).tobytes()
    large = rng.integers(0, 256, 8 * MB, dtype=np.uint8).tobytes()

    r1 = hyrd.put("/docs/notes.txt", small)
    r2 = hyrd.put("/media/talk.mp4", large)

    for path in ("/docs/notes.txt", "/media/talk.mp4"):
        entry = hyrd.namespace.get(path)
        print(
            f"\n{path}\n"
            f"  class      : {entry.klass}\n"
            f"  redundancy : {entry.codec}"
            f" ({'replicated' if entry.codec == 'replication' else 'striped'})\n"
            f"  providers  : {', '.join(entry.providers)}"
        )
    print(f"\nwrite latency: small {r1.elapsed:.3f}s, large {r2.elapsed:.3f}s")

    # 4. Read them back — content is verified end to end.
    got_small, rep_s = hyrd.get("/docs/notes.txt")
    got_large, rep_l = hyrd.get("/media/talk.mp4")
    assert got_small == small and got_large == large
    print(f"read latency : small {rep_s.elapsed:.3f}s, large {rep_l.elapsed:.3f}s")

    # 5. Space accounting: between RACS's 1.33x and DuraCloud's 2x.
    print(f"\nspace overhead: {hyrd.space_overhead():.2f}x "
          f"(RAID5 stripes for the large bytes, 2x replicas for the small)")
    print(f"stored per provider (bytes): {hyrd.stored_bytes_by_provider()}")


if __name__ == "__main__":
    main()
