#!/usr/bin/env python
"""Outage drill: walk through §III-C's recovery story step by step.

A provider (Windows Azure, as in the paper's Figure 6 methodology) goes dark
for six hours while a workload keeps running:

  1. reads reconstruct on demand (replica fallback / parity rebuild),
  2. writes and updates are logged for the offline provider,
  3. on return, the consistency update replays the log,
  4. the system verifies it is consistent and no longer degraded.

Run:  python examples/outage_drill.py
"""

import numpy as np

from repro import HyRDClient
from repro.cloud import OutageWindow, make_table2_cloud_of_clouds
from repro.sim import SimClock

KB, MB = 1024, 1024 * 1024


def main() -> None:
    clock = SimClock()
    providers = make_table2_cloud_of_clouds(clock)
    hyrd = HyRDClient(list(providers.values()), clock)
    rng = np.random.default_rng(1)

    # Seed the namespace while everything is healthy.
    files = {}
    for i in range(6):
        path = f"/project/doc{i:02d}.txt"
        files[path] = rng.integers(0, 256, 8 * KB, dtype=np.uint8).tobytes()
        hyrd.put(path, files[path])
    big = f"/project/dataset.bin"
    files[big] = rng.integers(0, 256, 6 * MB, dtype=np.uint8).tobytes()
    hyrd.put(big, files[big])
    print(f"t={clock.now:8.1f}s  seeded {len(files)} files, all providers up")

    # --- the outage begins ---------------------------------------------------
    window = OutageWindow(clock.now, clock.now + 6 * 3600)
    providers["azure"].outages.add(window)
    print(f"t={clock.now:8.1f}s  *** Windows Azure goes offline for 6 hours ***")

    # Reads keep working: small files come from the surviving replica.
    _, report = hyrd.get("/project/doc00.txt")
    print(
        f"t={clock.now:8.1f}s  read doc00 during outage: {report.elapsed:.3f}s "
        f"via {report.providers} (degraded={report.degraded})"
    )

    # Writes keep working: the missed copies are logged.
    update = rng.integers(0, 256, 8 * KB, dtype=np.uint8).tobytes()
    files["/project/doc01.txt"] = update
    hyrd.put("/project/doc01.txt", update)
    new_file = rng.integers(0, 256, 12 * KB, dtype=np.uint8).tobytes()
    files["/project/doc99.txt"] = new_file
    hyrd.put("/project/doc99.txt", new_file)
    log = hyrd.pending_log("azure")
    print(
        f"t={clock.now:8.1f}s  2 writes during outage -> "
        f"{len(log)} log entries ({log.pending_bytes()} bytes) queued for azure"
    )

    # --- the provider returns ------------------------------------------------
    clock.advance_to(window.end)
    print(f"t={clock.now:8.1f}s  *** Azure is back — running the consistency update ***")
    for report in hyrd.heal_returned():
        print(
            f"t={clock.now:8.1f}s  heal {report.path}: "
            f"{report.bytes_up} bytes in {report.elapsed:.3f}s"
        )
    assert len(hyrd.pending_log("azure")) == 0

    # --- verify ---------------------------------------------------------------
    clean = True
    for path, expected in files.items():
        got, report = hyrd.get(path)
        ok = got == expected and not report.degraded
        clean &= ok
    print(
        f"t={clock.now:8.1f}s  recovery complete: every file verified, "
        f"{'no reads degraded' if clean else 'PROBLEM DETECTED'}"
    )


if __name__ == "__main__":
    main()
