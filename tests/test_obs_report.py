"""Integration tests for run reports and the trace round-trip guarantee."""

import pytest

from repro.cloud import OutageSchedule, OutageWindow
from repro.cloud.provider import make_table2_cloud_of_clouds
from repro.obs import RecordingTracer, RunReport, parse_jsonl
from repro.schemes import HyrdScheme
from repro.sim.clock import SimClock

KB = 1024


@pytest.fixture(scope="module")
def traced_run():
    """A small traced HyRD run with an outage mid-way: puts, degraded
    reads, updates, a heal — enough to light up every report section."""
    clock = SimClock()
    fleet = make_table2_cloud_of_clouds(clock)
    tracer = RecordingTracer(clock)
    scheme = HyrdScheme(list(fleet.values()), clock, tracer=tracer)
    payloads = {}
    for i in range(4):
        payloads[f"/d/f{i}"] = bytes([i]) * ((8 if i % 2 else 600) * KB)
        scheme.put(f"/d/f{i}", payloads[f"/d/f{i}"])
    fleet["azure"].outages.add(OutageWindow(clock.now, clock.now + 7200.0))
    for path, payload in payloads.items():
        data, _ = scheme.get(path)
        assert data == payload
    scheme.update("/d/f1", 0, b"v2" * (4 * KB))
    fleet["azure"].outages = OutageSchedule()  # the provider returns
    scheme.heal_returned()
    return scheme, tracer


class TestFromScheme:
    def test_report_snapshot(self, traced_run):
        scheme, tracer = traced_run
        report = RunReport.from_scheme(scheme)
        assert report.scheme == scheme.name
        assert report.seed == scheme.seed
        assert len(report.reports) == len(scheme.collector.reports)
        assert report.records is not None
        assert len(report.records) == len(tracer.records)

    def test_untraced_scheme_has_no_records(self):
        clock = SimClock()
        fleet = make_table2_cloud_of_clouds(clock)
        scheme = HyrdScheme(list(fleet.values()), clock)
        scheme.put("/x", b"a" * KB)
        report = RunReport.from_scheme(scheme)
        assert report.records is None
        rendered = report.render()
        # Metric-backed sections render without a trace...
        assert "Latency by op" in rendered
        assert "Per-provider traffic" in rendered
        # ...trace-backed sections do not.
        assert "Request timeline" not in rendered
        assert "Flame summary" not in rendered

    def test_sections_present(self, traced_run):
        scheme, _ = traced_run
        rendered = RunReport.from_scheme(scheme).render()
        for needle in (
            "Run report — scheme=hyrd",
            "Latency by op",
            "p50",
            "Degraded split",
            "Time breakdown",
            "Resilience counters",
            "Per-provider traffic",
            "Request timeline",
            "Flame summary",
        ):
            assert needle in rendered
        # The outage actually produced degraded ops and provider errors.
        assert any(r.degraded for r in scheme.collector.reports)
        assert scheme.registry.sum_by_label(
            "provider_errors_total", "provider"
        ).get("azure", 0) > 0


class TestTraceRoundTrip:
    def test_replayed_report_is_byte_identical(self, traced_run):
        scheme, tracer = traced_run
        live = RunReport.from_scheme(scheme).render()
        records = parse_jsonl(tracer.to_jsonl().splitlines())
        assert RunReport.from_trace(records).render() == live

    def test_replay_rebuilds_reports_and_registry(self, traced_run):
        scheme, tracer = traced_run
        records = parse_jsonl(tracer.to_jsonl().splitlines())
        replayed = RunReport.from_trace(records)
        assert replayed.scheme == scheme.name
        assert replayed.seed == scheme.seed
        assert replayed.reports == scheme.collector.reports
        assert replayed.registry.counters() == scheme.registry.counters()
        assert replayed.registry.emitted_names() == scheme.registry.emitted_names()

    def test_replay_from_live_records_too(self, traced_run):
        # from_trace accepts live (unserialised) records as well.
        scheme, tracer = traced_run
        live = RunReport.from_scheme(scheme).render()
        assert RunReport.from_trace(tracer.records).render() == live


class TestCli:
    def test_report_command_round_trip(self, tmp_path, capsys):
        from repro.cli import main

        trace_path = tmp_path / "run.jsonl"
        assert main(["report", "--trace-out", str(trace_path)]) == 0
        live = capsys.readouterr().out
        assert "Run report — scheme=hyrd" in live
        assert trace_path.exists()

        assert main(["report", "--from-trace", str(trace_path)]) == 0
        assert capsys.readouterr().out == live
