"""Tests for client-restart namespace recovery from cloud metadata groups.

The persisted per-directory metadata is load-bearing: a brand-new client
instance pointed at the same providers rebuilds the full namespace and
serves every file a previous client stored.
"""

import pytest

from repro.cloud.outage import OutageWindow
from repro.schemes import (
    DuraCloudScheme,
    HyrdScheme,
    NCCloudScheme,
    RacsScheme,
    SingleCloudScheme,
)

KB, MB = 1024, 1024 * 1024


def _populate(scheme, payload):
    contents = {
        "/docs/a.txt": payload(6 * KB),
        "/docs/b.txt": payload(12 * KB),
        "/media/v.bin": payload(2 * MB),
    }
    for path, data in contents.items():
        scheme.put(path, data)
    return contents


class TestRecoveryPerScheme:
    def test_hyrd_second_client_serves_everything(self, providers, clock, payload):
        first = HyrdScheme(list(providers.values()), clock)
        contents = _populate(first, payload)

        second = HyrdScheme(list(providers.values()), clock)
        assert len(second.namespace) == 0
        report = second.recover_namespace()
        assert report.op == "recover"
        assert report.cloud_ops > 0  # recovery is charged traffic
        assert set(second.namespace.paths()) == set(contents)
        for path, data in contents.items():
            got, _ = second.get(path)
            assert got == data

    def test_recovered_entries_carry_full_metadata(self, providers, clock, payload):
        first = HyrdScheme(list(providers.values()), clock)
        _populate(first, payload)
        second = HyrdScheme(list(providers.values()), clock)
        second.recover_namespace()
        large = second.namespace.get("/media/v.bin")
        assert large.codec == "raid5"
        assert large.digests  # integrity digests survive the round trip
        assert set(large.providers) == {"rackspace", "aliyun", "amazon_s3"}

    def test_racs_striped_metadata_recovery(self, providers, clock, payload):
        first = RacsScheme(list(providers.values()), clock)
        contents = _populate(first, payload)
        second = RacsScheme(list(providers.values()), clock)
        second.recover_namespace()
        for path, data in contents.items():
            got, _ = second.get(path)
            assert got == data

    def test_racs_recovery_during_outage(self, providers, clock, payload):
        """Striped metadata groups reconstruct through parity like any data."""
        first = RacsScheme(list(providers.values()), clock)
        contents = _populate(first, payload)
        providers["azure"].outages.add(OutageWindow(clock.now, clock.now + 3600))
        second = RacsScheme(list(providers.values()), clock)
        second.recover_namespace()
        assert set(second.namespace.paths()) == set(contents)

    def test_duracloud_recovery(self, providers, clock, payload):
        first = DuraCloudScheme([providers["amazon_s3"], providers["azure"]], clock)
        contents = _populate(first, payload)
        second = DuraCloudScheme([providers["amazon_s3"], providers["azure"]], clock)
        second.recover_namespace()
        for path, data in contents.items():
            got, _ = second.get(path)
            assert got == data

    def test_single_cloud_recovery(self, providers, clock, payload):
        first = SingleCloudScheme(providers["aliyun"], clock)
        contents = _populate(first, payload)
        second = SingleCloudScheme(providers["aliyun"], clock)
        second.recover_namespace()
        assert set(second.namespace.paths()) == set(contents)

    def test_nccloud_codec_rederivation(self, providers, clock, payload):
        first = NCCloudScheme(list(providers.values()), clock)
        contents = _populate(first, payload)
        second = NCCloudScheme(list(providers.values()), clock)
        second.recover_namespace()
        for path, data in contents.items():
            got, _ = second.get(path)
            assert got == data


class TestHigherLayerRecovery:
    def test_depsky_ca_recovery(self, providers, clock, payload):
        """Confidential bundles recover too: keys come out of the shares."""
        from repro.schemes import DepSkyCAScheme

        first = DepSkyCAScheme(list(providers.values()), clock)
        contents = _populate(first, payload)
        second = DepSkyCAScheme(list(providers.values()), clock)
        second.recover_namespace()
        for path, data in contents.items():
            got, _ = second.get(path)
            assert got == data

    def test_dedup_layer_recovery(self, providers, clock, payload):
        """A rebuilt dedup layer restores recipes, refcounts and GC safety."""
        from repro.dedup import ContentDefinedChunker, DedupLayer

        shared = payload(60 * KB)
        first = DedupLayer(
            HyrdScheme(list(providers.values()), clock),
            ContentDefinedChunker(avg_size=8 * KB),
        )
        first.put("/b/mon.img", shared)
        first.put("/b/tue.img", shared)  # fully deduplicated second backup

        second = DedupLayer(
            HyrdScheme(list(providers.values()), clock),
            ContentDefinedChunker(avg_size=8 * KB),
        )
        recovered = second.recover()
        assert recovered == 2
        assert second.get("/b/mon.img") == shared
        assert second.dedup_ratio() == pytest.approx(2.0, rel=0.01)
        # Refcounts recovered correctly: removing one backup must not
        # garbage-collect chunks the other still references.
        second.remove("/b/mon.img")
        assert second.get("/b/tue.img") == shared


class TestRecoverySemantics:
    def test_empty_fleet_recovers_empty(self, providers, clock):
        scheme = HyrdScheme(list(providers.values()), clock)
        scheme.recover_namespace()
        assert scheme.namespace.paths() == []

    def test_recovery_reflects_removals(self, providers, clock, payload):
        first = HyrdScheme(list(providers.values()), clock)
        _populate(first, payload)
        first.remove("/docs/a.txt")
        second = HyrdScheme(list(providers.values()), clock)
        second.recover_namespace()
        assert "/docs/a.txt" not in second.namespace
        assert "/docs/b.txt" in second.namespace

    def test_recovery_is_idempotent(self, providers, clock, payload):
        first = HyrdScheme(list(providers.values()), clock)
        contents = _populate(first, payload)
        second = HyrdScheme(list(providers.values()), clock)
        second.recover_namespace()
        second.recover_namespace()
        assert set(second.namespace.paths()) == set(contents)

    def test_recovery_total_failure_raises(self, providers, clock, payload):
        from repro.schemes.base import DataUnavailable

        first = HyrdScheme(list(providers.values()), clock)
        _populate(first, payload)
        second = HyrdScheme(list(providers.values()), clock)
        for name in providers:
            providers[name].outages.add(OutageWindow(clock.now, clock.now + 60))
        with pytest.raises(DataUnavailable):
            second.recover_namespace()
