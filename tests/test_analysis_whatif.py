"""Tests for the price-drift what-if analysis."""

import pytest

from repro.analysis.whatif import PricePoint, run_price_sensitivity


@pytest.fixture(scope="module")
def points():
    return run_price_sensitivity(
        provider="aliyun", multipliers=[1.0, 8.0], seed=2, months=3
    )


class TestPriceSensitivity:
    def test_point_structure(self, points):
        assert len(points) == 2
        assert all(isinstance(p, PricePoint) for p in points)
        assert points[0].multiplier == 1.0

    def test_storage_price_scales(self, points):
        assert points[1].storage_price == pytest.approx(8 * points[0].storage_price)

    def test_costs_rise_with_price(self, points):
        assert points[1].hyrd_cost > points[0].hyrd_cost
        assert points[1].racs_cost > points[0].racs_cost

    def test_reclassification_happens(self, points):
        assert points[0].provider_in_hyrd_cost_set
        assert not points[1].provider_in_hyrd_cost_set

    def test_advantage_property(self):
        p = PricePoint(1.0, 0.029, hyrd_cost=8.0, racs_cost=10.0, provider_in_hyrd_cost_set=True)
        assert p.hyrd_advantage == pytest.approx(0.2)
        zero = PricePoint(1.0, 0.029, hyrd_cost=1.0, racs_cost=0.0, provider_in_hyrd_cost_set=True)
        assert zero.hyrd_advantage == 0.0
