"""Frontend handlers, the service plane, traffic generation, and the drill."""

import json

import pytest

from repro.core.config import HyRDConfig
from repro.obs.slo import SloTracker
from repro.schemes import HyrdScheme
from repro.service import (
    AdmissionController,
    Request,
    ServicePlane,
    TenantQuota,
    TenantRegistry,
    TrafficConfig,
    TrafficGenerator,
    run_service_drill,
)
from repro.sim.events import EventLoop


@pytest.fixture
def plane(clock, providers):
    loop = EventLoop(clock)
    scheme = HyrdScheme(list(providers.values()), clock, config=HyRDConfig(seed=0))
    scheme.attach_slo(SloTracker())
    registry = TenantRegistry(seed=0)
    registry.create("alice")
    registry.create("bob", quota=TenantQuota(max_bytes=1024))
    p = ServicePlane(scheme, loop, registry, n_frontends=2)
    return p


def _req(plane, tid, kind, path, payload=None, token=None):
    return Request(
        tenant_id=tid,
        token=token if token is not None else plane.tenants.get(tid).token,
        kind=kind,
        path=path,
        size=len(payload) if payload else 0,
        payload=payload,
    )


class TestFrontendHandling:
    def test_put_executes_scoped_and_settles_quota(self, plane):
        admitted, reason = plane.route(_req(plane, "alice", "put", "/d/x", b"abcd"))
        assert admitted and reason is None
        plane.loop.run()
        alice = plane.tenants.get("alice")
        assert alice.objects == {"/d/x": 4}
        assert alice.reserved_bytes == 0
        # The object landed inside the tenant's namespace prefix.
        assert plane.scheme.get("/t/alice/d/x")[0] == b"abcd"

    def test_bad_token_sheds_auth(self, plane):
        admitted, reason = plane.route(
            _req(plane, "alice", "get", "/d/x", token="wrong")
        )
        assert not admitted and reason == "auth"
        assert plane.admission.shed[("alice", "auth")] == 1

    def test_unknown_tenant_sheds(self, plane):
        req = Request(tenant_id="mallory", token="t", kind="get", path="/d/x")
        admitted, reason = plane.route(req)
        assert not admitted and reason == "unknown_tenant"

    def test_bytes_quota_sheds_before_queueing(self, plane):
        admitted, reason = plane.route(
            _req(plane, "bob", "put", "/d/big", b"x" * 2048)
        )
        assert not admitted and reason == "bytes_quota"
        assert plane.admission.backlog() == 0
        assert plane.tenants.get("bob").reserved_bytes == 0

    def test_unknown_kind_raises(self, plane):
        with pytest.raises(ValueError):
            plane.route(_req(plane, "alice", "munge", "/d/x"))

    def test_failed_op_refunds_and_keeps_pumping(self, plane):
        # An update against a path that was never written fails inside the
        # scheme; the frontend must refund nothing (reads hold no quota),
        # count the failure, and still run the next request.
        plane.route(
            Request(
                tenant_id="alice",
                token=plane.tenants.get("alice").token,
                kind="update",
                path="/d/ghost",
                size=2,
                payload=b"zz",
            )
        )
        plane.route(_req(plane, "alice", "put", "/d/x", b"ok"))
        plane.loop.run()
        assert sum(fe.failures for fe in plane.frontends) == 1
        assert plane.scheme.get("/t/alice/d/x")[0] == b"ok"

    def test_tenant_attribution_reaches_slo(self, plane):
        plane.route(_req(plane, "alice", "put", "/d/x", b"abcd"))
        plane.route(_req(plane, "alice", "get", "/d/x"))
        plane.loop.run()
        slo = plane.scheme.slo
        assert "alice" in slo.tenants
        summary = slo.tenant("alice").summary(plane.clock.now)
        assert summary["ops"] == 2

    def test_home_frontend_is_stable(self, plane):
        homes = {plane.frontend_for(f"t{i}").name for i in range(64)}
        assert homes == {"fe0", "fe1"}  # both frontends get tenants
        assert all(
            plane.frontend_for("t7") is plane.frontend_for("t7") for _ in range(3)
        )


class TestTrafficGenerator:
    def test_streams_are_lazy_and_seeded(self):
        cfg = TrafficConfig(tenants=1000, ops_per_tenant=4)
        gen = TrafficGenerator(cfg, seed=3)
        assert gen._streams == {}  # nothing materialized up front
        ops_a = list(gen._stream("t00007"))
        ops_b = list(TrafficGenerator(cfg, seed=3)._stream("t00007"))
        assert ops_a == ops_b
        assert ops_a[0][0] == "put"  # first op always ingests

    def test_read_write_mix_tracks_ia_ratio(self):
        cfg = TrafficConfig(tenants=4, ops_per_tenant=500, read_request_ratio=3.5)
        gen = TrafficGenerator(cfg, seed=0)
        kinds = [k for tid in gen.tenant_ids for k, _, _ in gen._stream(tid)]
        reads = kinds.count("get")
        ratio = reads / (len(kinds) - reads)
        assert 3.5 * 0.8 < ratio < 3.5 * 1.2

    def test_rate_weights_span_the_skew(self):
        cfg = TrafficConfig(tenants=8, mode="open", skew=10.0)
        gen = TrafficGenerator(cfg, seed=0)
        w = gen.rate_weights()
        assert w[0] / w[-1] == pytest.approx(10.0)
        assert gen.rates().mean() == pytest.approx(cfg.rate_per_tenant)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TrafficConfig(tenants=0)
        with pytest.raises(ValueError):
            TrafficConfig(mode="bursty")
        with pytest.raises(ValueError):
            TrafficConfig(skew=0.5)


class TestServiceDrill:
    def test_closed_drill_is_byte_deterministic(self):
        a = run_service_drill(seed=5, tenants=3, ops_per_tenant=4)
        b = run_service_drill(seed=5, tenants=3, ops_per_tenant=4)
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)
        assert a["admitted_total"] == 12
        assert a["shed_total"] == 0
        assert a["fairness_index"] == pytest.approx(1.0)

    def test_seed_changes_the_report(self):
        a = run_service_drill(seed=5, tenants=3, ops_per_tenant=4)
        b = run_service_drill(seed=6, tenants=3, ops_per_tenant=4)
        assert a["sim_elapsed"] != b["sim_elapsed"]

    def test_open_drill_sheds_under_overload(self):
        report = run_service_drill(
            seed=0, tenants=4, mode="open", offered_load=4.0,
            queue_limit=4, horizon=5.0,
        )
        assert report["capacity_ops_per_s"] is not None
        assert report["shed_by_reason"].get("queue_full", 0) > 0
        assert report["admitted_total"] > 0
        # Uniform offered load: admission stays fair.
        assert report["fairness_index"] > 0.95

    def test_weights_skew_admitted_share(self):
        report = run_service_drill(
            seed=0, tenants=2, mode="open", offered_load=4.0,
            horizon=5.0, weights=[3.0, 1.0],
        )
        per = report["per_tenant"]
        heavy = per["t00000"]["admitted"]
        light = per["t00001"]["admitted"]
        assert heavy > 2 * light
