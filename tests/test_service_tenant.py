"""Tenant model: namespacing, auth stub, and quota accounting edge cases."""

import pytest

from repro.service.tenant import (
    AuthError,
    QuotaExceeded,
    Tenant,
    TenantQuota,
    TenantRegistry,
    UnknownTenant,
)


class TestTenantBasics:
    def test_scope_maps_into_prefix(self):
        t = Tenant("alice", "tok")
        assert t.prefix == "/t/alice"
        assert t.scope("/d/x") == "/t/alice/d/x"
        assert t.scope("d/x") == "/t/alice/d/x"

    def test_owns_only_inside_prefix(self):
        t = Tenant("alice", "tok")
        assert t.owns("/t/alice/d/x")
        assert not t.owns("/t/alicette/d/x")
        assert not t.owns("/t/bob/d/x")

    def test_rejects_bad_ids_and_weights(self):
        with pytest.raises(ValueError):
            Tenant("", "tok")
        with pytest.raises(ValueError):
            Tenant("a/b", "tok")
        with pytest.raises(ValueError):
            Tenant("a", "tok", weight=0.0)

    def test_quota_validation(self):
        with pytest.raises(ValueError):
            TenantQuota(max_bytes=-1)
        with pytest.raises(ValueError):
            TenantQuota(max_objects=-1)
        with pytest.raises(ValueError):
            TenantQuota(max_ops_per_s=0.0)


class TestRegistry:
    def test_create_get_authenticate(self):
        reg = TenantRegistry(seed=7)
        t = reg.create("alice")
        assert reg.get("alice") is t
        assert reg.authenticate("alice", t.token) is t
        assert "alice" in reg
        assert len(reg) == 1
        assert list(reg) == [t]

    def test_tokens_are_seed_deterministic(self):
        a = TenantRegistry(seed=7).create("alice").token
        b = TenantRegistry(seed=7).create("alice").token
        c = TenantRegistry(seed=8).create("alice").token
        assert a == b
        assert a != c

    def test_duplicate_create_rejected(self):
        reg = TenantRegistry()
        reg.create("alice")
        with pytest.raises(ValueError):
            reg.create("alice")

    def test_unknown_tenant_and_bad_token(self):
        reg = TenantRegistry()
        t = reg.create("alice")
        with pytest.raises(UnknownTenant):
            reg.get("bob")
        with pytest.raises(AuthError):
            reg.authenticate("alice", t.token + "x")
        assert UnknownTenant.reason == "unknown_tenant"
        assert AuthError.reason == "auth"


class TestQuotaReserveCommitRelease:
    def test_commit_folds_into_usage(self):
        t = Tenant("a", "tok")
        r = t.reserve_write("/d/x", 100)
        assert t.reserved_bytes == 100 and t.bytes_used == 0
        t.commit(r)
        assert t.reserved_bytes == 0
        assert t.bytes_used == 100
        assert t.objects_used == 1

    def test_release_refunds_exactly(self):
        t = Tenant("a", "tok")
        r = t.reserve_write("/d/x", 100)
        t.release(r)
        assert t.reserved_bytes == 0 and t.reserved_objects == 0
        assert t.bytes_used == 0 and t.objects_used == 0

    def test_double_settle_raises(self):
        t = Tenant("a", "tok")
        r = t.reserve_write("/d/x", 100)
        t.commit(r)
        with pytest.raises(RuntimeError):
            t.release(r)

    def test_overwrite_accounts_the_delta(self):
        t = Tenant("a", "tok")
        t.commit(t.reserve_write("/d/x", 100))
        r = t.reserve_write("/d/x", 40)  # shrink: delta -60, no new object
        assert r.bytes_delta == -60 and r.objects_delta == 0
        t.commit(r)
        assert t.bytes_used == 40 and t.objects_used == 1

    def test_note_removed_drops_usage(self):
        t = Tenant("a", "tok")
        t.commit(t.reserve_write("/d/x", 100))
        t.note_removed("/d/x")
        assert t.bytes_used == 0 and t.objects_used == 0
        t.note_removed("/d/ghost")  # unknown path is a no-op


class TestQuotaEdgeCases:
    """The ISSUE's quota boundary conditions."""

    def test_write_exactly_at_limit_is_admitted(self):
        t = Tenant("a", "tok", quota=TenantQuota(max_bytes=100))
        t.commit(t.reserve_write("/d/x", 60))
        t.commit(t.reserve_write("/d/y", 40))  # lands exactly on the limit
        assert t.bytes_used == 100
        with pytest.raises(QuotaExceeded) as exc:
            t.reserve_write("/d/z", 1)
        assert exc.value.reason == "bytes_quota"

    def test_object_count_exactly_at_limit(self):
        t = Tenant("a", "tok", quota=TenantQuota(max_objects=2))
        t.commit(t.reserve_write("/d/x", 1))
        t.commit(t.reserve_write("/d/y", 1))
        with pytest.raises(QuotaExceeded) as exc:
            t.reserve_write("/d/z", 1)
        assert exc.value.reason == "objects_quota"
        # Overwriting an existing object is not a new object.
        t.commit(t.reserve_write("/d/x", 5))
        assert t.objects_used == 2

    def test_quota_shrink_below_usage_keeps_data(self):
        t = Tenant("a", "tok", quota=TenantQuota(max_bytes=1000))
        t.commit(t.reserve_write("/d/x", 800))
        t.set_quota(TenantQuota(max_bytes=500))
        # Existing data survives; growth is rejected until usage falls.
        assert t.bytes_used == 800
        with pytest.raises(QuotaExceeded):
            t.reserve_write("/d/y", 1)
        # Shrinking an object (negative delta) is still allowed...
        t.commit(t.reserve_write("/d/x", 100))
        assert t.bytes_used == 100
        # ...and once under the limit the tenant can grow again.
        t.commit(t.reserve_write("/d/y", 300))
        assert t.bytes_used == 400

    def test_two_reservations_racing_one_remaining_unit(self):
        """Queued (uncommitted) writes hold quota: the race cannot double-spend."""
        t = Tenant("a", "tok", quota=TenantQuota(max_objects=1))
        first = t.reserve_write("/d/x", 10)
        with pytest.raises(QuotaExceeded) as exc:
            t.reserve_write("/d/y", 10)
        assert exc.value.reason == "objects_quota"
        # Releasing the hold frees the unit for the loser to retry.
        t.release(first)
        second = t.reserve_write("/d/y", 10)
        t.commit(second)
        assert t.objects_used == 1

    def test_racing_last_bytes_unit(self):
        t = Tenant("a", "tok", quota=TenantQuota(max_bytes=10))
        t.reserve_write("/d/x", 10)
        with pytest.raises(QuotaExceeded):
            t.reserve_write("/d/y", 1)


class TestOpsTokenBucket:
    def test_unlimited_always_passes(self):
        t = Tenant("a", "tok")
        assert all(t.take_op_token(0.0) for _ in range(1000))
        assert t.next_token_time(5.0) == 5.0

    def test_burst_then_refill_at_rate(self):
        t = Tenant("a", "tok", quota=TenantQuota(max_ops_per_s=2.0))
        # Burst = one second of rate: two tokens at first touch.
        assert t.take_op_token(0.0)
        assert t.take_op_token(0.0)
        assert not t.take_op_token(0.0)
        # Half a second refills one token at 2 ops/s.
        assert t.next_token_time(0.0) == pytest.approx(0.5)
        assert t.take_op_token(0.5)
        assert not t.take_op_token(0.5)

    def test_slow_rate_gets_at_least_one_token(self):
        t = Tenant("a", "tok", quota=TenantQuota(max_ops_per_s=0.1))
        assert t.take_op_token(0.0)  # burst floor of one whole token
        assert not t.take_op_token(0.0)
        assert t.next_token_time(0.0) == pytest.approx(10.0)
        assert t.take_op_token(10.0)

    def test_bucket_caps_at_burst(self):
        t = Tenant("a", "tok", quota=TenantQuota(max_ops_per_s=2.0))
        t.take_op_token(0.0)
        # A long idle period cannot bank more than one second of rate.
        granted = sum(1 for _ in range(10) if t.take_op_token(100.0))
        assert granted == 2

    def test_sustained_rate_respects_quota(self):
        t = Tenant("a", "tok", quota=TenantQuota(max_ops_per_s=4.0))
        granted = sum(
            1 for i in range(200) if t.take_op_token(i * 0.05)
        )  # 10 sim seconds of attempts at 20/s
        assert granted <= 4 * 10 + 4  # rate * horizon + burst
        assert granted >= 4 * 10 - 1
