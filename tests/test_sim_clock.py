"""Unit tests for the simulated clock."""

import pytest

from repro.sim.clock import SECONDS_PER_MONTH, SimClock


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_custom_start(self):
        assert SimClock(5.0).now == 5.0

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            SimClock(-1.0)

    def test_advance(self):
        clock = SimClock()
        assert clock.advance(2.5) == 2.5
        assert clock.advance(0.5) == 3.0
        assert clock.now == 3.0

    def test_advance_zero_allowed(self):
        clock = SimClock(1.0)
        clock.advance(0.0)
        assert clock.now == 1.0

    def test_negative_advance_rejected(self):
        clock = SimClock()
        with pytest.raises(ValueError):
            clock.advance(-0.1)

    def test_advance_to(self):
        clock = SimClock()
        clock.advance_to(10.0)
        assert clock.now == 10.0

    def test_advance_to_past_rejected(self):
        clock = SimClock(5.0)
        with pytest.raises(ValueError):
            clock.advance_to(4.9)

    def test_advance_to_same_instant(self):
        clock = SimClock(5.0)
        clock.advance_to(5.0)
        assert clock.now == 5.0

    def test_month_index(self):
        clock = SimClock()
        assert clock.month_index() == 0
        clock.advance_to(SECONDS_PER_MONTH - 1)
        assert clock.month_index() == 0
        clock.advance_to(SECONDS_PER_MONTH)
        assert clock.month_index() == 1
        clock.advance_to(3.5 * SECONDS_PER_MONTH)
        assert clock.month_index() == 3
