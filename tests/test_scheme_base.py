"""Unit tests for the scheme framework (phases, reports, metadata, healing)."""

import pytest

from repro.cloud.outage import OutageWindow
from repro.schemes import RacsScheme, SingleCloudScheme
from repro.schemes.base import CloudOp, DataUnavailable


@pytest.fixture
def single(providers, clock):
    return SingleCloudScheme(providers["aliyun"], clock)


@pytest.fixture
def racs(providers, clock):
    return RacsScheme(list(providers.values()), clock)


class TestPhaseExecution:
    def test_clock_advances_with_ops(self, single, clock, payload):
        t0 = clock.now
        single.put("/d/a", payload(1000))
        assert clock.now > t0

    def test_reports_collected(self, single, payload):
        single.put("/d/a", payload(10))
        single.get("/d/a")
        ops = [r.op for r in single.collector.reports]
        assert ops == ["put", "get"]

    def test_report_bytes_accounting(self, single, payload):
        report = single.put("/d/a", payload(1000))
        # data + metadata write-through
        assert report.bytes_up > 1000
        _, got = single.get("/d/a")
        assert got.bytes_down == 1000

    def test_cloudop_validation(self):
        with pytest.raises(ValueError):
            CloudOp("p", "frobnicate", "c")
        with pytest.raises(ValueError):
            CloudOp("p", "put", "c", "k", None)

    def test_nested_ops_rejected(self, single):
        single._begin_op()
        with pytest.raises(RuntimeError):
            single._begin_op()
        single._acc = None  # reset for teardown hygiene

    def test_duplicate_providers_rejected(self, providers, clock):
        with pytest.raises(ValueError):
            RacsScheme(
                [providers["aliyun"], providers["aliyun"], providers["azure"]], clock
            )


class TestPublicApi:
    def test_put_get_roundtrip(self, single, payload):
        data = payload(5000)
        single.put("/d/a", data)
        got, report = single.get("/d/a")
        assert got == data
        assert report.op == "get"

    def test_get_missing_raises(self, single):
        with pytest.raises(FileNotFoundError):
            single.get("/nope")

    def test_update_grows_file(self, single, payload):
        single.put("/d/a", payload(100))
        single.update("/d/a", 90, b"0123456789ABCDEF")
        got, _ = single.get("/d/a")
        assert len(got) == 106
        assert got[90:] == b"0123456789ABCDEF"

    def test_update_in_place(self, single, payload):
        data = payload(100)
        single.put("/d/a", data)
        single.update("/d/a", 10, b"XX")
        got, _ = single.get("/d/a")
        assert got[10:12] == b"XX"
        assert got[:10] == data[:10]
        assert got[12:] == data[12:]

    def test_remove(self, single, payload):
        single.put("/d/a", payload(10))
        single.remove("/d/a")
        with pytest.raises(FileNotFoundError):
            single.get("/d/a")

    def test_remove_frees_provider_bytes(self, single, payload):
        single.put("/d/a", payload(1000))
        single.remove("/d/a")
        # Only the (small) metadata group remains.
        assert single.total_stored_bytes() < 500

    def test_stat_and_listdir(self, single, payload):
        single.put("/d/a", payload(10))
        single.put("/d/b", payload(20))
        entry, _ = single.stat("/d/a")
        assert entry.size == 10
        names, _ = single.listdir("/d")
        assert names == ["/d/a", "/d/b"]

    def test_overwrite_gc_old_version(self, single, payload):
        single.put("/d/a", payload(1000))
        single.put("/d/a", payload(2000))
        data_bytes = sum(
            obj.size
            for objs in single.provider("aliyun").store._containers.values()
            for key, obj in objs.items()
            if not key.startswith("__meta__")
        )
        assert data_bytes == 2000  # v1 garbage-collected

    def test_path_normalization(self, single, payload):
        single.put("d//a", payload(5))
        got, _ = single.get("/d/a")
        assert len(got) == 5


class TestMetadataWriteThrough:
    def test_meta_object_persisted(self, single, payload):
        single.put("/docs/a", payload(10))
        store = single.provider("aliyun").store
        assert store.has(single.container, "__meta__/docs")

    def test_meta_updated_on_remove(self, single, payload):
        single.put("/docs/a", payload(10))
        single.put("/docs/b", payload(10))
        single.remove("/docs/a")
        from repro.fs.metadata import decode_group

        blob = single.provider("aliyun").store.get(
            single.container, "__meta__/docs"
        ).data
        entries = decode_group(blob)
        assert [e.path for e in entries] == ["/docs/b"]

    def test_stat_hits_cache_second_time(self, single, payload):
        single.put("/docs/a", payload(10))
        _, first = single.stat("/docs/a")
        _, second = single.stat("/docs/a")
        assert second.cloud_ops == 0  # cache hit: no provider requests
        assert second.elapsed == 0.0


class TestOutagesAndHealing:
    def test_striped_degraded_read(self, racs, providers, clock, payload):
        data = payload(9000)
        racs.put("/d/a", data)
        providers["azure"].outages.add(OutageWindow(clock.now, clock.now + 3600))
        got, report = racs.get("/d/a")
        assert got == data
        assert report.degraded

    def test_write_logged_during_outage(self, racs, providers, clock, payload):
        providers["azure"].outages.add(OutageWindow(clock.now, clock.now + 3600))
        racs.put("/d/a", payload(900))
        assert len(racs.pending_log("azure")) > 0

    def test_heal_replays_log(self, racs, providers, clock, payload):
        data = payload(900)
        window = OutageWindow(clock.now, clock.now + 3600)
        providers["azure"].outages.add(window)
        racs.put("/d/a", data)
        clock.advance_to(window.end)
        reports = racs.heal_returned()
        assert len(reports) == 1
        assert reports[0].op == "heal"
        assert len(racs.pending_log("azure")) == 0
        # Azure now holds its fragment; a normal (non-degraded) read works.
        got, report = racs.get("/d/a")
        assert got == data
        assert not report.degraded

    def test_heal_noop_when_no_logs(self, racs):
        assert racs.heal_returned() == []

    def test_too_many_outages_raise(self, racs, providers, clock, payload):
        racs.put("/d/a", payload(900))
        for name in ("azure", "aliyun"):
            providers[name].outages.add(OutageWindow(clock.now, clock.now + 60))
        with pytest.raises(DataUnavailable):
            racs.get("/d/a")

    def test_update_during_outage_then_heal(self, racs, providers, clock, payload):
        data = payload(9000)
        racs.put("/d/a", data)
        window = OutageWindow(clock.now, clock.now + 3600)
        providers["azure"].outages.add(window)
        racs.update("/d/a", 100, b"PATCH")
        got, _ = racs.get("/d/a")
        assert got[100:105] == b"PATCH"
        clock.advance_to(window.end)
        racs.heal_returned()
        got2, report = racs.get("/d/a")
        assert got2[100:105] == b"PATCH"
        assert not report.degraded


class TestRankProvidersByIndex:
    """Pin `_rank_providers_by_index`: static by construction, load-aware
    only when a FragmentScheduler is attached."""

    SIZE = 3 * 1024 * 1024

    def _by_index(self, racs):
        return dict(enumerate(racs.provider_names))

    def _static_order(self, racs, by_index):
        frag = racs.codec.fragment_size(self.SIZE)
        return sorted(
            by_index,
            key=lambda i: racs._estimate_latency(by_index[i], frag, "down"),
        )

    def test_healthy_orders_by_static_estimate(self, racs):
        by_index = self._by_index(racs)
        order = racs._rank_providers_by_index(by_index, self.SIZE, racs.codec)
        assert order == self._static_order(racs, by_index)
        assert sorted(order) == sorted(by_index)  # a permutation, no drops

    def test_degraded_health_does_not_move_static_ranking(self, racs):
        """Static ranking deliberately ignores health: adaptive demotion is
        the scheduler's (or `_rank_providers(adaptive=True)`'s) job, and
        availability filtering happens later via the usable() predicate."""
        by_index = self._by_index(racs)
        baseline = racs._rank_providers_by_index(by_index, self.SIZE, racs.codec)
        fastest = by_index[baseline[0]]
        for _ in range(20):
            racs.health[fastest].record_latency(observed=50.0, expected=1.0)
        assert (
            racs._rank_providers_by_index(by_index, self.SIZE, racs.codec)
            == baseline
        )

    def test_open_breaker_does_not_move_static_ranking(self, racs, clock):
        by_index = self._by_index(racs)
        baseline = racs._rank_providers_by_index(by_index, self.SIZE, racs.codec)
        fastest = by_index[baseline[0]]
        breaker = racs._breakers[fastest]
        for _ in range(breaker.failure_threshold):
            breaker.record_failure(clock.now)
        assert breaker.state == "open"
        assert (
            racs._rank_providers_by_index(by_index, self.SIZE, racs.codec)
            == baseline
        )

    def test_scheduler_demotes_degraded_provider(self, racs):
        from repro.core.scheduling import FragmentScheduler

        by_index = self._by_index(racs)
        baseline = racs._rank_providers_by_index(by_index, self.SIZE, racs.codec)
        racs.attach_scheduler(FragmentScheduler())
        # Healthy fleet: the load-aware score degenerates to the static
        # estimate, so the ranking is unchanged.
        assert (
            racs._rank_providers_by_index(by_index, self.SIZE, racs.codec)
            == baseline
        )
        fastest = by_index[baseline[0]]
        for _ in range(20):
            racs.health[fastest].record_latency(observed=50.0, expected=1.0)
        ranked = racs._rank_providers_by_index(by_index, self.SIZE, racs.codec)
        assert ranked[-1] == baseline[0]  # browned-out: demoted to last

    def test_scheduler_ranks_open_breaker_last(self, racs, clock):
        from repro.core.scheduling import FragmentScheduler

        by_index = self._by_index(racs)
        baseline = racs._rank_providers_by_index(by_index, self.SIZE, racs.codec)
        racs.attach_scheduler(FragmentScheduler())
        fastest = by_index[baseline[0]]
        breaker = racs._breakers[fastest]
        for _ in range(breaker.failure_threshold):
            breaker.record_failure(clock.now)
        ranked = racs._rank_providers_by_index(by_index, self.SIZE, racs.codec)
        assert ranked[-1] == baseline[0]  # fast-failed: scored infinite


class TestSpaceOverhead:
    def test_single_has_no_redundancy(self, single, payload):
        single.put("/d/a", payload(10_000))
        assert single.space_overhead() == pytest.approx(1.0, abs=0.05)

    def test_racs_overhead_is_4_over_3(self, racs, payload):
        racs.put("/d/a", payload(30_000))
        assert racs.space_overhead() == pytest.approx(4 / 3, abs=0.05)

    def test_empty_scheme_zero(self, single):
        assert single.space_overhead() == 0.0
