"""Unit tests for the GCS-API middleware."""

import pytest

from repro.cloud.gcsapi import GcsApi
from repro.cloud.outage import OutageWindow


class TestRegistry:
    def test_register_and_lookup(self, providers):
        api = GcsApi(providers.values())
        assert len(api) == 4
        assert "aliyun" in api
        assert api.provider("aliyun").name == "aliyun"

    def test_duplicate_rejected(self, providers):
        api = GcsApi([providers["aliyun"]])
        with pytest.raises(ValueError):
            api.register(providers["aliyun"])

    def test_unknown_lookup(self, providers):
        api = GcsApi(providers.values())
        with pytest.raises(KeyError):
            api.provider("nope")

    def test_unregister(self, providers):
        api = GcsApi(providers.values())
        removed = api.unregister("azure")
        assert removed.name == "azure"
        assert "azure" not in api
        with pytest.raises(KeyError):
            api.unregister("azure")

    def test_names_preserve_registration_order(self, providers):
        api = GcsApi(providers.values())
        assert api.names() == list(providers)


class TestUniformDispatch:
    def test_five_ops_by_name(self, providers):
        api = GcsApi(providers.values())
        api.create("aliyun", "c")
        api.put("aliyun", "c", "k", b"v")
        assert api.get("aliyun", "c", "k") == b"v"
        assert api.list("aliyun", "c") == ["k"]
        api.remove("aliyun", "c", "k")
        assert api.list("aliyun", "c") == []

    def test_isolation_between_providers(self, providers):
        api = GcsApi(providers.values())
        api.create("aliyun", "c")
        api.create("azure", "c")
        api.put("aliyun", "c", "k", b"v")
        assert api.list("azure", "c") == []


class TestAvailability:
    def test_available_names(self, providers, clock):
        providers["azure"].outages.add(OutageWindow(0.0))
        api = GcsApi(providers.values())
        assert "azure" not in api.available_names()
        assert "aliyun" in api.available_names()
