"""Unit tests for the PostMark generator."""

import numpy as np
import pytest

from repro.workloads.postmark import PostMarkConfig, generate_postmark

KB = 1024
MB = 1024 * 1024


@pytest.fixture
def config():
    return PostMarkConfig(file_pool=20, transactions=100, size_hi=4 * MB)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            PostMarkConfig(file_pool=0)
        with pytest.raises(ValueError):
            PostMarkConfig(size_lo=0)
        with pytest.raises(ValueError):
            PostMarkConfig(op_mix=(("get", 0.5),))
        with pytest.raises(ValueError):
            PostMarkConfig(op_mix=(("frobnicate", 1.0),))


class TestGeneration:
    def test_pool_phase_is_all_puts(self, config, rng):
        ops = generate_postmark(config, rng)
        pool = ops[: config.file_pool]
        assert all(op.kind == "put" for op in pool)
        assert len({op.path for op in pool}) == config.file_pool

    def test_op_count(self, config, rng):
        ops = generate_postmark(config, rng)
        assert len(ops) == config.file_pool + config.transactions

    def test_sizes_within_bounds(self, config, rng):
        ops = generate_postmark(config, rng)
        for op in ops:
            if op.kind == "put":
                assert config.size_lo <= op.size <= config.size_hi

    def test_deterministic_per_seed(self, config):
        a = generate_postmark(config, np.random.default_rng(5))
        b = generate_postmark(config, np.random.default_rng(5))
        assert a == b

    def test_trace_validity(self, config, rng):
        """No read/update/remove/stat may target a dead or unborn path."""
        ops = generate_postmark(config, rng)
        live: set[str] = set()
        for op in ops:
            if op.kind == "put":
                live.add(op.path)
            elif op.kind == "list":
                continue
            else:
                assert op.path in live, f"{op.kind} on dead path {op.path}"
                if op.kind == "remove":
                    live.remove(op.path)

    def test_update_offsets_inside_file(self, config, rng):
        ops = generate_postmark(config, rng)
        sizes: dict[str, int] = {}
        for op in ops:
            if op.kind == "put":
                sizes[op.path] = op.size
            elif op.kind == "update":
                assert op.offset + op.size <= max(sizes[op.path], op.size)

    def test_subdirectories_used(self, rng):
        config = PostMarkConfig(file_pool=40, transactions=0, subdirectories=4)
        ops = generate_postmark(config, rng)
        dirs = {op.path.rsplit("/", 1)[0] for op in ops}
        assert len(dirs) == 4

    def test_mix_roughly_respected(self, rng):
        config = PostMarkConfig(
            file_pool=10,
            transactions=2000,
            size_hi=1 * MB,
            op_mix=(("get", 0.5), ("stat", 0.5)),
        )
        ops = generate_postmark(config, rng)[10:]
        kinds = [op.kind for op in ops]
        get_frac = kinds.count("get") / len(kinds)
        assert 0.45 < get_frac < 0.55

    def test_delete_pool_at_end(self, rng):
        config = PostMarkConfig(
            file_pool=10, transactions=20, size_hi=1 * MB, delete_pool_at_end=True
        )
        ops = generate_postmark(config, rng)
        live = set()
        for op in ops:
            if op.kind == "put":
                live.add(op.path)
            elif op.kind == "remove":
                live.discard(op.path)
        assert live == set()
