"""Unit tests for the span tracer: recording, export, and the no-op path."""

import pytest

import repro.obs.trace as trace_mod
from repro.obs.trace import (
    NOOP_TRACER,
    RecordingTracer,
    SpanRecord,
    flame_summary,
    parse_jsonl,
    read_jsonl,
)


class FakeClock:
    """Minimal stand-in for SimClock: just a settable ``now``."""

    def __init__(self):
        self.now = 0.0


class TestRecordingTracer:
    def test_span_records_on_close_with_clock_times(self):
        clock = FakeClock()
        tracer = RecordingTracer(clock)
        with tracer.span("op.put", path="/a") as sp:
            clock.now = 2.5
            sp.set(outcome="ok")
        [rec] = tracer.records
        assert rec == {
            "t": "span", "id": 1, "parent": None, "name": "op.put",
            "start": 0.0, "end": 2.5, "attrs": {"path": "/a", "outcome": "ok"},
        }

    def test_nesting_sets_parent_ids(self):
        tracer = RecordingTracer(FakeClock())
        with tracer.span("op.get"):
            with tracer.span("request"):
                pass
            with tracer.span("codec.decode"):
                pass
        names = {r["name"]: r for r in tracer.records}
        root = names["op.get"]
        assert root["parent"] is None
        assert names["request"]["parent"] == root["id"]
        assert names["codec.decode"]["parent"] == root["id"]
        # Children close first, so they precede the root in the record list.
        assert [r["name"] for r in tracer.records][-1] == "op.get"

    def test_add_backfills_explicit_times_under_open_span(self):
        tracer = RecordingTracer(FakeClock())
        with tracer.span("op.put") as sp:
            tracer.add("request", 1.0, 3.0, provider="azure")
        req = next(r for r in tracer.records if r["name"] == "request")
        assert (req["start"], req["end"]) == (1.0, 3.0)
        assert req["parent"] == sp.span_id

    def test_event_and_meta(self):
        clock = FakeClock()
        clock.now = 7.0
        tracer = RecordingTracer(clock)
        tracer.meta(scheme="hyrd", seed=3)
        tracer.event("hedge.fired", primary="aliyun")
        assert tracer.records[0] == {"t": "meta", "attrs": {"scheme": "hyrd", "seed": 3}}
        assert tracer.records[1] == {
            "t": "event", "name": "hedge.fired", "time": 7.0, "span": None,
            "attrs": {"primary": "aliyun"},
        }
        with tracer.span("op.get") as sp:
            tracer.event("hedge.win", provider="azure")
        inside = next(r for r in tracer.records if r.get("name") == "hedge.win")
        assert inside["span"] == sp.span_id

    def test_spans_reconstruct_records(self):
        tracer = RecordingTracer(FakeClock())
        with tracer.span("op.get", path="/x"):
            pass
        [span] = tracer.spans()
        assert isinstance(span, SpanRecord)
        assert span.name == "op.get"
        assert span.duration == 0.0
        assert span.attrs == {"path": "/x"}

    def test_never_advances_the_clock(self):
        clock = FakeClock()
        tracer = RecordingTracer(clock)
        with tracer.span("op.stat"):
            tracer.event("e")
            tracer.metric("counter", "retries", (), 1)
        assert clock.now == 0.0


class TestJsonlRoundTrip:
    def _tracer(self):
        clock = FakeClock()
        tracer = RecordingTracer(clock)
        tracer.meta(scheme="hyrd", seed=0)
        with tracer.span("op.put", path="/a"):
            clock.now = 0.1234567890123  # exercise float round-tripping
            tracer.add("request", 0.0, 0.1234567890123, provider="azure")
            tracer.metric("counter", "retries", (), 1)
            tracer.metric(
                "gauge", "write_log_pending", (("provider", "azure"),), 2.0
            )
        return tracer

    def test_parse_inverts_to_jsonl(self):
        tracer = self._tracer()
        parsed = parse_jsonl(tracer.to_jsonl().splitlines())
        assert len(parsed) == len(tracer.records)
        # Everything except tuple-vs-list label canonicalisation matches.
        for live, loaded in zip(tracer.records, parsed):
            if live["t"] == "metric":
                assert loaded["labels"] == [list(kv) for kv in live["labels"]]
                assert loaded["value"] == live["value"]
            else:
                assert loaded == live

    def test_floats_survive_exactly(self):
        tracer = self._tracer()
        parsed = parse_jsonl(tracer.to_jsonl().splitlines())
        req = next(r for r in parsed if r.get("name") == "request")
        assert req["end"] == 0.1234567890123

    def test_write_and_read_file(self, tmp_path):
        tracer = self._tracer()
        path = tmp_path / "run.jsonl"
        tracer.write_jsonl(path)
        assert read_jsonl(path) == parse_jsonl(tracer.to_jsonl().splitlines())

    def test_blank_lines_skipped(self):
        assert parse_jsonl(["", '{"t":"meta","attrs":{}}', "  "]) == [
            {"t": "meta", "attrs": {}}
        ]


class TestFlameSummary:
    def test_empty(self):
        assert flame_summary([]) == "(no spans recorded)"

    def test_groups_by_path_and_indents(self):
        clock = FakeClock()
        tracer = RecordingTracer(clock)
        for _ in range(2):
            with tracer.span("op.get"):
                tracer.add("request", clock.now, clock.now + 1.0)
                clock.now += 2.0
        text = flame_summary(tracer.records)
        lines = text.splitlines()
        assert lines[1].startswith("op.get")
        assert "      2" in lines[1]  # two op.get calls aggregated
        assert lines[2].startswith("  request")

    def test_max_depth_prunes(self):
        tracer = RecordingTracer(FakeClock())
        with tracer.span("alpha"):
            with tracer.span("beta"):
                with tracer.span("gamma"):
                    pass
        text = flame_summary(tracer.records, max_depth=2)
        assert "beta" in text and "gamma" not in text


class TestNoopTracer:
    def test_interface_is_inert(self):
        assert NOOP_TRACER.enabled is False
        span = NOOP_TRACER.span("anything", key="value")
        with span as s:
            s.set(more="attrs")
        # One shared null span serves every call site.
        assert NOOP_TRACER.span("other") is span
        NOOP_TRACER.add("x", 0.0, 1.0)
        NOOP_TRACER.event("x")
        NOOP_TRACER.metric("counter", "retries", (), 1)
        NOOP_TRACER.meta(scheme="hyrd")

    def test_noop_run_allocates_no_span_records(self, monkeypatch):
        """A full scheme run with the default tracer must never construct a
        SpanRecord: make construction raise and run a put/get round trip."""

        class Boom(SpanRecord):
            def __init__(self, *a, **k):
                raise AssertionError("SpanRecord allocated in no-op mode")

        monkeypatch.setattr(trace_mod, "SpanRecord", Boom)

        from repro.cloud.provider import make_table2_cloud_of_clouds
        from repro.schemes import HyrdScheme
        from repro.sim.clock import SimClock

        clock = SimClock()
        fleet = make_table2_cloud_of_clouds(clock)
        scheme = HyrdScheme(list(fleet.values()), clock)  # default NOOP_TRACER
        assert scheme.tracer is NOOP_TRACER
        payload = bytes(range(256)) * 64
        scheme.put("/t/file", payload)
        data, report = scheme.get("/t/file")
        assert data == payload
        assert report.elapsed > 0

    def test_recording_tracer_does_allocate(self, monkeypatch):
        """Sanity check for the test above: the patched class *does* fire
        when a recording tracer is used."""

        class Boom(SpanRecord):
            def __init__(self, *a, **k):
                raise AssertionError("allocated")

        monkeypatch.setattr(trace_mod, "SpanRecord", Boom)
        tracer = RecordingTracer(FakeClock())
        with pytest.raises(AssertionError, match="allocated"):
            tracer.span("op.get")
