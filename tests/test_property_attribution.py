"""Property-based tests for critical-path attribution.

Two layers of properties:

**Synthetic span forests** — Hypothesis generates arbitrary (valid) span
trees with hedge/retry/codec/maintenance children, clipped or overhanging
the op window, plus point events.  Whatever the shape, the analyzer must
(a) tile each op's wall-clock *exactly* — the phase vector sums to the op
duration within :data:`~repro.obs.attribution.COVERAGE_TOLERANCE` — and
(b) survive the JSONL round trip byte-identically (serialize → parse →
re-serialize gives the same bytes, and the parsed objects are equal).

**Real runs** — every scheme × fault profile combination drives a traced
op sequence through the full engine and asserts the same exact-coverage
invariant on the resulting trace, so the property holds not just for the
forest shapes Hypothesis imagines but for the ones the engine emits.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cloud.outage import OutageWindow
from repro.cloud.provider import make_table2_cloud_of_clouds
from repro.core.config import HyRDConfig
from repro.core.resilience import ResilienceConfig
from repro.faults import (
    FaultProfile,
    LatencyBrownout,
    Throttling,
    TransientErrorBurst,
)
from repro.obs import (
    COVERAGE_TOLERANCE,
    OpAttribution,
    RecordingTracer,
    attribute_trace,
    attributions_to_jsonl,
    parse_attribution_jsonl,
)
from repro.schemes import DuraCloudScheme, HyrdScheme, RacsScheme
from repro.sim.clock import SimClock

# --------------------------------------------------------------- synthetic

_PROVIDERS = ("s3", "azure", "aliyun")

times = st.floats(
    min_value=0.0, max_value=1e4, allow_nan=False, allow_infinity=False
)


@st.composite
def child_spans(draw, lo, hi, first_id):
    """Random classified/unclassified children for one op window."""
    n = draw(st.integers(0, 6))
    kinds = st.sampled_from(
        [
            "request",
            "retry.wait",
            "codec.encode",
            "codec.decode",
            "heal.replay",
            "breaker.fast_fail",
            "write_log.append",  # unclassified -> sweeps to queueing/other
        ]
    )
    spans = []
    for k in range(n):
        name = draw(kinds)
        # Children may overhang the op window on either side — the analyzer
        # clips; they may also be zero-duration markers.
        a = draw(st.floats(lo - 5.0, hi + 5.0, allow_nan=False))
        b = draw(st.floats(a, hi + 10.0, allow_nan=False))
        attrs = {}
        if name in ("request", "breaker.fast_fail"):
            attrs["provider"] = draw(st.sampled_from(_PROVIDERS))
            if name == "request":
                attrs["kind"] = draw(st.sampled_from(["get", "put"]))
                attrs["ok"] = draw(st.booleans())
        spans.append(
            {
                "t": "span",
                "id": first_id + k,
                "parent": first_id - 1,
                "name": name,
                "start": a,
                "end": b,
                "attrs": attrs,
            }
        )
    return spans


@st.composite
def span_forest(draw):
    """A list of trace records: op roots with random children and events."""
    records = []
    next_id = 1
    n_roots = draw(st.integers(1, 4))
    cursor = 0.0
    for _ in range(n_roots):
        lo = cursor + draw(st.floats(0.0, 10.0, allow_nan=False))
        hi = lo + draw(st.floats(0.0, 100.0, allow_nan=False))
        cursor = hi  # ops abut or gap, never interleave (engine behavior)
        root_id = next_id
        next_id += 1
        kids = draw(child_spans(lo, hi, next_id))
        next_id += len(kids)
        # Children close before their root in the record stream.
        records.extend(kids)
        records.append(
            {
                "t": "span",
                "id": root_id,
                "parent": None,
                "name": draw(st.sampled_from(["op.get", "op.put", "op.update"])),
                "start": lo,
                "end": hi,
                "attrs": {
                    "path": "/p/x",
                    "hedged": draw(st.booleans()),
                    "degraded": False,
                },
            }
        )
        if draw(st.booleans()):
            records.append(
                {
                    "t": "event",
                    "name": "hedge.wasted",
                    "time": draw(st.floats(lo, hi, allow_nan=False)),
                    "span": root_id,
                    "attrs": {
                        "provider": draw(st.sampled_from(_PROVIDERS)),
                        "wasted": draw(st.floats(0.0, 10.0, allow_nan=False)),
                    },
                }
            )
    return records


@settings(max_examples=120, suppress_health_check=[HealthCheck.too_slow])
@given(span_forest())
def test_every_generated_forest_tiles_exactly(records):
    report = attribute_trace(records)  # raises CoverageError on any gap
    assert len(report.ops) == sum(
        1 for r in records if r.get("parent", 0) is None and r["t"] == "span"
    )
    for o in report.ops:
        residual = o.duration - sum(o.phases.values())
        assert abs(residual) <= COVERAGE_TOLERANCE * max(1.0, o.duration)
        assert abs(o.coverage_error) <= COVERAGE_TOLERANCE * max(1.0, o.duration)
        assert all(v >= 0.0 for v in o.phases.values())


@settings(max_examples=120, suppress_health_check=[HealthCheck.too_slow])
@given(span_forest())
def test_jsonl_round_trip_is_byte_identical(records):
    ops = attribute_trace(records).ops
    text = attributions_to_jsonl(ops)
    reloaded = parse_attribution_jsonl(text.splitlines())
    assert reloaded == ops
    assert all(isinstance(o, OpAttribution) for o in reloaded)
    assert attributions_to_jsonl(reloaded) == text
    assert attributions_to_jsonl(reloaded).encode() == text.encode()


# --------------------------------------------------------------- real runs

SCHEMES = {
    "hyrd": lambda p, c, t: HyrdScheme(
        list(p.values()),
        c,
        config=HyRDConfig(resilience=ResilienceConfig(hedge_reads=True)),
        tracer=t,
    ),
    "racs": lambda p, c, t: RacsScheme(list(p.values()), c, tracer=t),
    "duracloud": lambda p, c, t: DuraCloudScheme(
        [p["amazon_s3"], p["azure"]], c, tracer=t
    ),
}

FAULTS = {
    "clean": lambda fleet, clock: None,
    "brownout": lambda fleet, clock: _bind(
        fleet,
        "aliyun",
        FaultProfile(
            [LatencyBrownout(0.0, 1e6, rtt_factor=10.0, bw_factor=0.05)]
        ),
    ),
    "error-burst": lambda fleet, clock: _bind(
        fleet,
        "azure",
        FaultProfile([TransientErrorBurst(0.0, 1e6, rate=0.5)]),
    ),
    "throttle": lambda fleet, clock: _bind(
        fleet, "amazon_s3", FaultProfile([Throttling(0.0, 1e6, rate=0.4)])
    ),
    "outage": lambda fleet, clock: fleet["aliyun"].outages.add(
        OutageWindow(0.0, 1e6)
    ),
}


def _bind(fleet, name, profile):
    fleet[name].faults = profile.bind(name)


@pytest.mark.parametrize("fault", sorted(FAULTS))
@pytest.mark.parametrize("scheme_name", sorted(SCHEMES))
def test_real_run_exact_coverage(scheme_name, fault):
    clock = SimClock()
    fleet = make_table2_cloud_of_clouds(clock)
    tracer = RecordingTracer(clock)
    scheme = SCHEMES[scheme_name](fleet, clock, tracer)
    FAULTS[fault](fleet, clock)

    rng = np.random.default_rng(0)
    for i, size in enumerate((8 * 1024, 64 * 1024, 6 * 1024 * 1024)):
        data = rng.integers(0, 256, size, dtype=np.uint8).tobytes()
        scheme.put(f"/p/f{i}", data)
        got, _ = scheme.get(f"/p/f{i}")
        assert got == data
    scheme.update("/p/f0", 100, b"patch")
    scheme.get("/p/f0")
    scheme.remove("/p/f2")

    report = attribute_trace(tracer.records)  # CoverageError would fail here
    assert report.ops, "traced run produced no completed ops"
    for o in report.ops:
        assert abs(o.coverage_error) <= COVERAGE_TOLERANCE * max(1.0, o.duration)
    # And the real trace's attributions survive the byte round trip too.
    text = attributions_to_jsonl(report.ops)
    assert parse_attribution_jsonl(text.splitlines()) == report.ops
