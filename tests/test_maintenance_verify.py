"""Per-scheme ``verify_object`` / ``repair_object`` contracts (maintenance).

Every scheme must (a) report a perfectly clean namespace with zero findings
— no false positives, ever — and (b) classify each injected damage shape
correctly: a flipped byte or truncation as ``corrupt``, a vanished object as
``missing``.  Repair must then restore full redundancy and leave the
payload byte-identical.
"""

import pytest

from repro.cloud.provider import make_table2_cloud_of_clouds
from repro.faults.ledger import inject_bit_rot, inject_loss
from repro.schemes import (
    DepSkyCAScheme,
    DepSkyScheme,
    DuraCloudScheme,
    HyrdScheme,
    NCCloudScheme,
    RacsScheme,
    SingleCloudScheme,
)
from repro.sim.clock import SimClock
from repro.sim.rng import make_rng

KB, MB = 1024, 1024 * 1024

SCHEME_BUILDERS = {
    "single": lambda p, c: SingleCloudScheme(p["aliyun"], c),
    "duracloud": lambda p, c: DuraCloudScheme([p["amazon_s3"], p["azure"]], c),
    "racs": lambda p, c: RacsScheme(list(p.values()), c),
    "depsky": lambda p, c: DepSkyScheme(list(p.values()), c),
    "depsky-ca": lambda p, c: DepSkyCAScheme(list(p.values()), c),
    "nccloud": lambda p, c: NCCloudScheme(list(p.values()), c),
    "hyrd": lambda p, c: HyrdScheme(list(p.values()), c),
}

#: schemes with a single placement cannot survive damaging it, so repair
#: (which needs an intact source) is exercised only on redundant schemes
REDUNDANT = [name for name in SCHEME_BUILDERS if name != "single"]

# Two sizes so HyRD exercises both its replicated and striped pipelines.
SIZES = {"/m/small": 24 * KB, "/m/large": 2 * MB}


def _build(name, seed=0):
    clock = SimClock()
    providers = make_table2_cloud_of_clouds(clock)
    scheme = SCHEME_BUILDERS[name](providers, clock)
    rng = make_rng(seed, "verify-test", name)
    contents = {}
    for path, size in SIZES.items():
        data = rng.integers(0, 256, size, dtype="uint8").tobytes()
        contents[path] = data
        scheme.put(path, data)
    return scheme, providers, contents


def _damage_site(scheme, providers, path):
    """(provider object, storage key, placement) of the first placement."""
    entry = scheme.namespace.get(path)
    replicated = entry.codec == "replication"
    prov_name, idx = entry.placements[0]
    key = scheme._placement_storage_key(entry, idx, replicated)
    return providers[prov_name], key, prov_name


@pytest.mark.parametrize("name", sorted(SCHEME_BUILDERS))
class TestVerifyObject:
    def test_clean_namespace_zero_false_positives(self, name):
        scheme, _providers, contents = _build(name)
        for path in contents:
            audit = scheme.verify_object(path)
            assert audit.ok, f"{name}: false positives on clean data: {audit.findings}"
            assert audit.checked == audit.total == len(audit.findings) + audit.intact
            assert audit.margin >= 0
            assert audit.bytes_verified > 0

    def test_detects_corruption(self, name):
        scheme, providers, contents = _build(name)
        for path in contents:
            provider, key, prov_name = _damage_site(scheme, providers, path)
            inject_bit_rot(provider, scheme.container, [key])
            audit = scheme.verify_object(path)
            assert not audit.ok
            assert len(audit.by_kind("corrupt")) == 1 == len(audit.findings)
            (finding,) = audit.findings
            assert (finding.provider, finding.key) == (prov_name, key)
            assert finding.repairable

    def test_detects_truncation(self, name):
        scheme, providers, contents = _build(name)
        for path in contents:
            provider, key, _ = _damage_site(scheme, providers, path)
            inject_bit_rot(provider, scheme.container, [key], truncate=True)
            audit = scheme.verify_object(path)
            assert len(audit.by_kind("corrupt")) == 1 == len(audit.findings)

    def test_detects_missing(self, name):
        scheme, providers, contents = _build(name)
        for path in contents:
            provider, key, _ = _damage_site(scheme, providers, path)
            inject_loss(provider, scheme.container, [key])
            audit = scheme.verify_object(path)
            assert len(audit.by_kind("missing")) == 1 == len(audit.findings)

    def test_shallow_verify_sees_loss_not_rot(self, name):
        scheme, providers, contents = _build(name)
        paths = sorted(contents)
        rot_provider, rot_key, _ = _damage_site(scheme, providers, paths[0])
        inject_bit_rot(rot_provider, scheme.container, [rot_key])
        lost_provider, lost_key, _ = _damage_site(scheme, providers, paths[1])
        inject_loss(lost_provider, scheme.container, [lost_key])
        rot_audit = scheme.verify_object(paths[0], deep=False)
        assert rot_audit.ok  # existence probes are blind to bit rot
        assert rot_audit.bytes_verified == 0
        lost_audit = scheme.verify_object(paths[1], deep=False)
        assert len(lost_audit.by_kind("missing")) == 1 == len(lost_audit.findings)

    def test_verify_missing_path_raises(self, name):
        scheme, _providers, _contents = _build(name)
        with pytest.raises(FileNotFoundError):
            scheme.verify_object("/no/such/file")


@pytest.mark.parametrize("name", sorted(REDUNDANT))
class TestRepairObject:
    @pytest.mark.parametrize("shape", ["corrupt", "truncate", "lose"])
    def test_repair_restores_full_redundancy(self, name, shape):
        scheme, providers, contents = _build(name)
        for path, expected in contents.items():
            provider, key, _ = _damage_site(scheme, providers, path)
            if shape == "lose":
                inject_loss(provider, scheme.container, [key])
            else:
                inject_bit_rot(
                    provider, scheme.container, [key], truncate=(shape == "truncate")
                )
            result = scheme.repair_object(path)
            assert result.complete
            assert result.repaired
            assert result.bytes_written > 0
            after = scheme.verify_object(path)
            assert after.ok, f"{name}/{path}: residual findings {after.findings}"
            got, _report = scheme.get(path)
            assert got == expected

    def test_repair_clean_object_is_noop(self, name):
        scheme, _providers, contents = _build(name)
        for path in contents:
            result = scheme.repair_object(path)
            assert result.complete
            assert result.repaired == ()
            assert result.bytes_written == 0

    def test_scrub_traffic_never_trips_breakers(self, name):
        # A definitive not-found answer is not a provider failure: scrubbing
        # a namespace full of lost objects must leave every breaker closed.
        scheme, providers, contents = _build(name)
        for path in contents:
            provider, key, _ = _damage_site(scheme, providers, path)
            inject_loss(provider, scheme.container, [key])
        for _ in range(8):
            for path in contents:
                scheme.verify_object(path)
        for breaker in scheme._breakers.values():
            assert breaker.state == "closed"
