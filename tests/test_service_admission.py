"""Admission controller: DRR dispatch order, bounded queues, typed shedding."""

import pytest

from repro.service.admission import (
    REJECT_REASONS,
    AdmissionController,
    Request,
    jain_index,
)
from repro.service.tenant import Tenant, TenantQuota


def _req(tid: str, n: int = 0) -> Request:
    return Request(tenant_id=tid, token="tok", kind="get", path=f"/d/obj{n}")


def _fill(ac: AdmissionController, tenant: Tenant, n: int) -> None:
    for i in range(n):
        admitted, _ = ac.submit(tenant, _req(tenant.tenant_id, i))
        assert admitted


def _drain(ac: AdmissionController, now: float = 0.0) -> list[str]:
    order = []
    while True:
        req = ac.next_request(now)
        if req is None:
            break
        order.append(req.tenant_id)
    return order


class TestJainIndex:
    def test_equal_is_one(self):
        assert jain_index([3, 3, 3, 3]) == pytest.approx(1.0)

    def test_one_hot_is_one_over_n(self):
        assert jain_index([10, 0, 0, 0]) == pytest.approx(0.25)

    def test_empty_and_all_zero_are_one(self):
        assert jain_index([]) == 1.0
        assert jain_index([0, 0]) == 1.0


class TestSubmitAndShed:
    def test_queue_full_sheds_with_reason(self):
        ac = AdmissionController(queue_limit=2)
        t = Tenant("a", "tok")
        _fill(ac, t, 2)
        admitted, reason = ac.submit(t, _req("a", 9))
        assert not admitted and reason == "queue_full"
        assert ac.shed[("a", "queue_full")] == 1
        assert ac.backlog("a") == 2

    def test_shed_releases_the_reservation(self):
        ac = AdmissionController(queue_limit=1)
        t = Tenant("a", "tok", quota=TenantQuota(max_bytes=100))
        _fill(ac, t, 1)
        req = _req("a", 9)
        req.reservation = t.reserve_write("/d/obj9", 10)
        assert t.reserved_bytes == 10
        admitted, _ = ac.submit(t, req)
        assert not admitted
        assert t.reserved_bytes == 0 and req.reservation is None

    def test_queue_limit_zero_sheds_ops_quota(self):
        ac = AdmissionController(queue_limit=0)
        t = Tenant("a", "tok", quota=TenantQuota(max_ops_per_s=1.0))
        assert ac.submit(t, _req("a"))[0]  # burst token
        admitted, reason = ac.submit(t, _req("a", 1))
        assert not admitted and reason == "ops_quota"

    def test_unknown_reason_rejected(self):
        ac = AdmissionController()
        with pytest.raises(ValueError):
            ac.shed_request("a", "nope")
        assert "queue_full" in REJECT_REASONS

    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionController(quantum=0.0)
        with pytest.raises(ValueError):
            AdmissionController(queue_limit=-1)


class TestDeficitRoundRobin:
    def test_unit_weights_interleave_per_round(self):
        ac = AdmissionController()
        a, b, c = Tenant("a", "t"), Tenant("b", "t"), Tenant("c", "t")
        for t in (a, b, c):
            _fill(ac, t, 2)
        assert _drain(ac) == ["a", "b", "c", "a", "b", "c"]
        assert ac.backlog() == 0

    def test_weight_two_serves_twice_per_round(self):
        ac = AdmissionController()
        heavy = Tenant("heavy", "t", weight=2.0)
        light = Tenant("light", "t")
        _fill(ac, heavy, 4)
        _fill(ac, light, 2)
        assert _drain(ac) == ["heavy", "heavy", "light", "heavy", "heavy", "light"]

    def test_fractional_weight_carries_deficit_across_rounds(self):
        ac = AdmissionController()
        slow = Tenant("slow", "t", weight=0.5)
        fast = Tenant("fast", "t")
        _fill(ac, slow, 2)
        _fill(ac, fast, 4)
        # 0.5 deficit per visit: slow dispatches every second round.
        assert _drain(ac) == ["fast", "slow", "fast", "fast", "slow", "fast"]

    def test_drained_tenant_forfeits_residual_deficit(self):
        ac = AdmissionController(quantum=5.0)
        a, b = Tenant("a", "t"), Tenant("b", "t")
        _fill(ac, a, 1)
        _fill(ac, b, 1)
        assert _drain(ac) == ["a", "b"]
        # DRR's idle rule: a tenant that drains keeps no residual credit
        # (each had 4.0 unspent from the 5.0 quantum).
        assert ac._deficit == {"a": 0.0, "b": 0.0}
        # Re-arrival starts from a fresh quantum, not banked credit: each
        # visit grants 5.0, enough for both queued requests back to back.
        _fill(ac, a, 2)
        _fill(ac, b, 2)
        assert _drain(ac) == ["a", "a", "b", "b"]

    def test_rounds_are_counted(self):
        ac = AdmissionController()
        a, b = Tenant("a", "t"), Tenant("b", "t")
        _fill(ac, a, 3)
        _fill(ac, b, 3)
        _drain(ac)
        assert ac.rounds == 2  # three rounds ran; the last has no re-visit

    def test_empty_controller_returns_none(self):
        ac = AdmissionController()
        assert ac.next_request(0.0) is None
        assert ac.backlog() == 0
        assert ac.next_eligible_time(0.0) is None


class TestOpsQuotaDeferral:
    def test_deferred_tenant_skipped_not_shed(self):
        ac = AdmissionController()
        limited = Tenant("lim", "t", quota=TenantQuota(max_ops_per_s=1.0))
        free = Tenant("free", "t")
        _fill(ac, limited, 3)
        _fill(ac, free, 3)
        order = _drain(ac, now=0.0)
        # limited spends its single burst token, then defers; free drains.
        assert order == ["lim", "free", "free", "free"]
        assert ac.backlog("lim") == 2
        assert ac.quota_deferrals > 0
        assert ac.shed_total() == 0

    def test_next_eligible_time_is_the_token_refill(self):
        ac = AdmissionController()
        limited = Tenant("lim", "t", quota=TenantQuota(max_ops_per_s=2.0))
        _fill(ac, limited, 5)
        assert ac.next_request(0.0) is not None  # burst: 2 tokens
        assert ac.next_request(0.0) is not None
        assert ac.next_request(0.0) is None
        at = ac.next_eligible_time(0.0)
        assert at == pytest.approx(0.5)
        assert ac.next_request(at) is not None

    def test_all_tokens_refill_over_time(self):
        ac = AdmissionController()
        limited = Tenant("lim", "t", quota=TenantQuota(max_ops_per_s=1.0))
        _fill(ac, limited, 3)
        served = [ac.next_request(float(now)) for now in (0, 1, 2)]
        assert all(r is not None for r in served)
        assert ac.backlog() == 0


class TestFairnessAccounting:
    def test_incremental_index_matches_recompute(self):
        ac = AdmissionController()
        a = Tenant("a", "t", weight=3.0)
        b = Tenant("b", "t")
        _fill(ac, a, 6)
        _fill(ac, b, 2)
        _drain(ac)
        expected = jain_index(ac.admitted.values())
        assert ac.fairness_index() == pytest.approx(expected)
        assert ac.admitted == {"a": 6, "b": 2}

    def test_index_is_one_with_no_admissions(self):
        assert AdmissionController().fairness_index() == 1.0
