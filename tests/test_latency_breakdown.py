"""Tests for the critical-path latency breakdown (profiling support).

The repo's HPC guides say: no optimisation without measuring.  Every
operation report splits its critical path into RTT wait vs byte transfer;
the split must reproduce the physics behind Figure 5's threshold argument.
"""

import numpy as np
import pytest

from repro.cloud.provider import make_table2_cloud_of_clouds
from repro.schemes import HyrdScheme, RacsScheme
from repro.sim.clock import SimClock

KB, MB = 1024, 1024 * 1024


@pytest.fixture
def hyrd(providers, clock):
    return HyrdScheme(list(providers.values()), clock)


def _payload(n):
    return np.random.default_rng(3).integers(0, 256, n, dtype=np.uint8).tobytes()


class TestBreakdown:
    def test_components_sum_to_elapsed(self, hyrd):
        report = hyrd.put("/d/f", _payload(64 * KB))
        assert report.rtt_wait + report.transfer_time == pytest.approx(
            report.elapsed, rel=1e-6
        )

    def test_small_ops_rtt_dominated(self, hyrd):
        report = hyrd.put("/d/small", _payload(4 * KB))
        assert report.rtt_wait > report.transfer_time

    def test_large_ops_transfer_dominated(self, hyrd):
        report = hyrd.put("/d/large", _payload(8 * MB))
        assert report.transfer_time > 3 * report.rtt_wait

    def test_collector_breakdown_aggregates(self, hyrd):
        hyrd.put("/d/a", _payload(4 * KB))
        hyrd.put("/d/b", _payload(2 * MB))
        bd = hyrd.collector.time_breakdown()
        assert bd["rtt_wait"] + bd["transfer"] == pytest.approx(bd["total"], rel=1e-6)
        assert bd["total"] > 0

    def test_racs_small_ops_pay_more_rtt_than_hyrd(self, clock):
        """The mechanism behind Fig. 6: RACS touches the slowest provider's
        RTT on every small object; HyRD's replicas avoid it."""
        data = _payload(4 * KB)
        providers_a = make_table2_cloud_of_clouds(SimClock())
        clock_a = next(iter(providers_a.values())).clock
        racs = RacsScheme(list(providers_a.values()), clock_a)
        providers_b = make_table2_cloud_of_clouds(SimClock())
        clock_b = next(iter(providers_b.values())).clock
        hyrd = HyrdScheme(list(providers_b.values()), clock_b)
        r_racs = racs.put("/d/f", data)
        r_hyrd = hyrd.put("/d/f", data)
        assert r_racs.rtt_wait > r_hyrd.rtt_wait
