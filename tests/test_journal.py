"""Unit tests for the write-ahead intent journal (crash consistency)."""

import pytest

from repro.cloud.provider import make_table2_cloud_of_clouds
from repro.fs.journal import IntentJournal, WriteIntent
from repro.schemes import RacsScheme
from repro.sim.clock import SimClock
from repro.sim.rng import make_rng

_FLEET = ("amazon_s3", "azure", "aliyun", "rackspace")


def _begin(journal, *, kind="put", path="/j/a", payload=b"data", **over):
    kwargs = dict(
        kind=kind,
        path=path,
        version=1,
        codec="rs(4,3)",
        replicated=False,
        min_needed=3,
        sites=(("amazon_s3", "k0"), ("azure", "k1")),
        payload=payload,
        prev=None,
        logged_at=0.0,
    )
    kwargs.update(over)
    return journal.begin(**kwargs)


class TestWriteIntent:
    def test_validation(self):
        with pytest.raises(ValueError):
            _begin(IntentJournal(), kind="rename")
        with pytest.raises(ValueError):
            _begin(IntentJournal(), kind="put", payload=None)
        with pytest.raises(ValueError):
            _begin(IntentJournal(), kind="update", payload=None)
        with pytest.raises(ValueError):
            _begin(IntentJournal(), min_needed=-1)
        # removes journal no payload — that is their normal shape
        intent = _begin(IntentJournal(), kind="remove", payload=None)
        assert intent.payload_bytes == 0

    def test_describe_is_json_friendly_and_payload_free(self):
        import json

        intent = _begin(IntentJournal(), payload=b"\x00" * 100)
        d = intent.describe()
        json.dumps(d)  # must not raise
        assert d["payload_bytes"] == 100
        assert d["path"] == "/j/a"
        assert "payload" not in d and "prev" not in d


class TestIntentJournal:
    def test_begin_assigns_monotone_seqs(self):
        journal = IntentJournal()
        a = _begin(journal, path="/j/a")
        b = _begin(journal, path="/j/b")
        assert b.seq == a.seq + 1
        assert [i.path for i in journal.pending()] == ["/j/a", "/j/b"]
        assert journal.begun_total == 2

    def test_commit_drops_intent_and_bytes(self):
        journal = IntentJournal()
        intent = _begin(journal, payload=b"xyz")
        assert journal.payload_bytes() == 3
        journal.commit(intent.seq)
        assert not journal and len(journal) == 0
        assert journal.payload_bytes() == 0
        assert journal.commits_total == 1
        with pytest.raises(KeyError):
            journal.commit(intent.seq)

    def test_mark_aborted_keeps_intent_listed(self):
        journal = IntentJournal()
        intent = _begin(journal)
        journal.mark_aborted(intent.seq)
        assert journal  # still pending: recovery must GC it
        (listed,) = journal.pending()
        assert listed.state == "aborted"
        with pytest.raises(KeyError):
            journal.mark_aborted(999)

    def test_resolve_is_idempotent(self):
        journal = IntentJournal()
        intent = _begin(journal, payload=b"abcd")
        journal.resolve(intent.seq)
        assert journal.payload_bytes() == 0
        journal.resolve(intent.seq)  # no-op, no raise
        assert journal.payload_bytes() == 0

    def test_payload_copied_on_begin(self):
        journal = IntentJournal()
        buf = bytearray(b"abc")
        intent = _begin(journal, payload=bytes(buf))
        buf[0] = 0
        assert intent.payload == b"abc"

    def test_attach_meta_stashes_redo_image_until_resolved(self):
        journal = IntentJournal()
        intent = _begin(journal)
        journal.attach_meta(intent.seq, "/j", b"group-blob")
        assert intent.meta_blobs == {"/j": b"group-blob"}
        journal.commit(intent.seq)
        # once resolved the stash is a no-op (nothing to redo)
        journal.attach_meta(intent.seq, "/j", b"late")
        assert intent.meta_blobs == {"/j": b"group-blob"}


class TestJournalZeroCost:
    """Attaching a journal must not perturb the simulation: no RNG draws,
    no clock access, no extra cloud requests.  That is the property that
    keeps the fig3/fig6 goldens byte-identical whether or not a journal is
    attached — asserted here on identical op streams."""

    @staticmethod
    def _run(attach: bool):
        clock = SimClock()
        fleet = make_table2_cloud_of_clouds(clock)
        scheme = RacsScheme([fleet[p] for p in _FLEET], clock)
        if attach:
            scheme.attach_journal()
        rng = make_rng(7, "journal-zero-cost")
        contents = {}
        for i in range(6):
            path = f"/z/f{i}"
            contents[path] = rng.bytes(48 * 1024)
            scheme.put(path, contents[path])
        scheme.put("/z/f1", rng.bytes(48 * 1024))  # overwrite (stale removal)
        scheme.remove("/z/f2")
        for i in (0, 1, 3):
            scheme.get(f"/z/f{i}")
        return scheme

    def test_attached_journal_is_invisible_to_the_data_plane(self):
        baseline = self._run(attach=False)
        journaled = self._run(attach=True)
        assert journaled.collector.reports == baseline.collector.reports
        assert journaled.clock.now == baseline.clock.now

    def test_clean_ops_commit_their_intents(self):
        scheme = self._run(attach=True)
        journal = scheme.journal
        assert not journal  # every intent committed
        # 7 puts + 1 remove journaled; gets journal nothing
        assert journal.begun_total == 8
        assert journal.commits_total == 8
