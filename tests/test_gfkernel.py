"""The vectorised GF kernels against the scalar oracle, byte for byte.

Every kernel strategy must reproduce ``gf_matmul`` exactly — on arbitrary
coefficient matrices, on the folded-column structures the planner exploits,
at odd lengths that exercise the uint16 pairing tail, and through every
codec's ``encode`` / ``encode_views`` / ``encode_views_batch`` surface.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.erasure import gfkernel
from repro.erasure.fmsr import FMSRCode
from repro.erasure.galois import gf_matmul, systematic_vandermonde
from repro.erasure.gfkernel import (
    KERNEL_STRATEGIES,
    EncodePlan,
    active_strategy,
    encode_parity,
    gf_matmul_fast,
    plan_for,
    set_strategy,
    xor_rows,
)
from repro.erasure.raid5 import Raid5Code
from repro.erasure.reed_solomon import ReedSolomonCode
from repro.erasure.replication import ReplicationCode
from repro.erasure.striping import split_shards

STRATEGIES = ("packed", "table", "nibble", "scalar")

#: lengths that cross every kernel boundary: empty, single byte (odd tail
#: with no vector body), around the scalar cutoff, and around the tile size
BOUNDARY_LENGTHS = (0, 1, 2, 3, 2047, 2048, 2049, 65535, 65536, 65537)


@pytest.fixture(autouse=True)
def _restore_strategy():
    yield
    set_strategy(None)


def _random_case(seed: int, m: int, k: int, length: int):
    rng = np.random.default_rng(seed)
    coeff = rng.integers(0, 256, size=(m, k), dtype=np.uint8)
    rows = [rng.integers(0, 256, size=length, dtype=np.uint8) for _ in range(k)]
    stacked = (
        np.vstack(rows) if length else np.zeros((k, 0), dtype=np.uint8)
    )
    return coeff, rows, gf_matmul(coeff, stacked)


class TestKernelEquivalence:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    @pytest.mark.parametrize("length", BOUNDARY_LENGTHS)
    def test_matches_oracle_at_boundaries(self, strategy, length):
        coeff, rows, expected = _random_case(length + 17, 3, 4, length)
        got = encode_parity(coeff, rows, length, strategy=strategy)
        assert np.array_equal(got, expected)

    @given(
        seed=st.integers(0, 2**31),
        m=st.integers(1, 6),
        k=st.integers(1, 6),
        length=st.integers(0, 5000),
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_oracle_fuzzed(self, seed, m, k, length):
        coeff, rows, expected = _random_case(seed, m, k, length)
        for strategy in STRATEGIES:
            got = encode_parity(coeff, rows, length, strategy=strategy)
            assert np.array_equal(got, expected), strategy

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_vandermonde_folded_columns(self, strategy):
        """k=2 systematic generators hit the planner's difference-one fold;
        duplicated columns hit the difference-zero fold."""
        rng = np.random.default_rng(5)
        length = 70001  # odd, > tile
        for n in (3, 4, 6):
            gen = systematic_vandermonde(n, 2)[2:]
            rows = [rng.integers(0, 256, size=length, dtype=np.uint8) for _ in range(2)]
            expected = gf_matmul(gen, np.vstack(rows))
            got = encode_parity(gen, rows, length, strategy=strategy)
            assert np.array_equal(got, expected)
        dup = np.array([[7, 7, 3], [9, 9, 1], [4, 4, 4]], dtype=np.uint8)
        rows = [rng.integers(0, 256, size=length, dtype=np.uint8) for _ in range(3)]
        expected = gf_matmul(dup, np.vstack(rows))
        assert np.array_equal(
            encode_parity(dup, rows, length, strategy=strategy), expected
        )

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_unaligned_row_offsets(self, strategy):
        """Shard rows at odd byte offsets (split_views slices) still work."""
        rng = np.random.default_rng(9)
        base = rng.integers(0, 256, size=3 * 4097, dtype=np.uint8)
        rows = [base[i * 4097 : (i + 1) * 4097] for i in range(3)]
        coeff = rng.integers(0, 256, size=(2, 3), dtype=np.uint8)
        expected = gf_matmul(coeff, np.vstack(rows))
        got = encode_parity(coeff, rows, 4097, strategy=strategy)
        assert np.array_equal(got, expected)

    def test_zero_coefficient_rows(self):
        coeff = np.zeros((3, 2), dtype=np.uint8)
        rows = [np.arange(5000, dtype=np.uint8) % 251 for _ in range(2)]
        for strategy in STRATEGIES:
            got = encode_parity(coeff, rows, 5000, strategy=strategy)
            assert not got.any()


class TestPlanApi:
    def test_plan_cache_reuse(self):
        coeff = np.array([[1, 2], [3, 4]], dtype=np.uint8)
        assert plan_for(coeff) is plan_for(coeff.copy())

    def test_out_parameter(self):
        coeff, rows, expected = _random_case(1, 2, 3, 3000)
        out = np.empty((2, 3000), dtype=np.uint8)
        got = encode_parity(coeff, rows, 3000, out=out)
        assert got is out
        assert np.array_equal(out, expected)

    def test_bad_out_rejected(self):
        plan = EncodePlan(np.ones((2, 2), dtype=np.uint8))
        rows = [np.zeros(10, dtype=np.uint8)] * 2
        with pytest.raises(ValueError, match="out must be"):
            plan.execute(rows, 10, out=np.empty((3, 10), dtype=np.uint8))

    def test_wrong_row_count_rejected(self):
        plan = EncodePlan(np.ones((2, 3), dtype=np.uint8))
        with pytest.raises(ValueError, match="shard rows"):
            plan.execute([np.zeros(4, dtype=np.uint8)], 4)

    def test_gf_matmul_fast_shape_contract(self):
        a = np.ones((2, 3), dtype=np.uint8)
        b = np.ones((4, 10), dtype=np.uint8)
        with pytest.raises(ValueError, match="incompatible shapes"):
            gf_matmul_fast(a, b)

    @given(
        seed=st.integers(0, 2**31),
        r=st.integers(1, 5),
        c=st.integers(1, 5),
        length=st.integers(0, 4000),
    )
    @settings(max_examples=40, deadline=None)
    def test_gf_matmul_fast_equals_oracle(self, seed, r, c, length):
        rng = np.random.default_rng(seed)
        a = rng.integers(0, 256, size=(r, c), dtype=np.uint8)
        b = rng.integers(0, 256, size=(c, length), dtype=np.uint8)
        assert np.array_equal(gf_matmul_fast(a, b), gf_matmul(a, b))


class TestStrategySelection:
    def test_auto_resolves_to_packed(self):
        set_strategy("auto")
        assert active_strategy() == "packed"

    def test_explicit_strategy_sticks(self):
        set_strategy("nibble")
        assert active_strategy() == "nibble"

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError, match="unknown GF kernel strategy"):
            set_strategy("simd9000")
        with pytest.raises(ValueError, match="unknown GF kernel strategy"):
            encode_parity(
                np.ones((1, 1), dtype=np.uint8),
                [np.zeros(4, dtype=np.uint8)],
                4,
                strategy="nope",
            )

    def test_env_knob_honoured(self, monkeypatch):
        monkeypatch.setenv("REPRO_GF_KERNEL", "table")
        set_strategy(None)  # re-read the environment default
        assert active_strategy() == "table"

    def test_all_names_listed(self):
        assert set(STRATEGIES) <= set(KERNEL_STRATEGIES)


class TestXorRows:
    @given(
        seed=st.integers(0, 2**31),
        k=st.integers(1, 6),
        length=st.integers(0, 5000),
    )
    @settings(max_examples=40, deadline=None)
    def test_equals_reduce(self, seed, k, length):
        rng = np.random.default_rng(seed)
        rows = [rng.integers(0, 256, size=length, dtype=np.uint8) for _ in range(k)]
        expected = (
            np.bitwise_xor.reduce(np.vstack(rows), axis=0)
            if length
            else np.zeros(0, dtype=np.uint8)
        )
        assert np.array_equal(xor_rows(rows, length), expected)
        assert np.array_equal(
            xor_rows([r.tobytes() for r in rows], length), expected
        )

    def test_empty_row_list_zero_fills(self):
        assert not xor_rows([], 16).any()


def _all_codecs():
    return [
        pytest.param(Raid5Code(3), id="raid5-3+1"),
        pytest.param(ReedSolomonCode(2, 2), id="rs-2+2"),
        pytest.param(ReedSolomonCode(3, 2), id="rs-3+2"),
        pytest.param(FMSRCode(4), id="fmsr-4,2"),
        pytest.param(ReplicationCode(2), id="replication-2"),
    ]


def _boundary_payload_sizes(codec):
    k = codec.k
    return sorted({0, 1, k - 1, k, k + 1, 3 * k * 2048 - 1, 3 * k * 2048, 3 * k * 2048 + 1} - {-1})


class TestCodecSurfaces:
    @pytest.mark.parametrize("codec", _all_codecs())
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_encode_views_equals_encode(self, codec, strategy):
        set_strategy(strategy)
        rng = np.random.default_rng(23)
        for size in _boundary_payload_sizes(codec):
            payload = rng.integers(0, 256, size=size, dtype=np.uint8).tobytes()
            encoded = [bytes(f) for f in codec.encode(payload)]
            views = [bytes(f) for f in codec.encode_views(payload)]
            assert views == encoded, f"size={size}"

    @pytest.mark.parametrize("codec", _all_codecs())
    def test_strategies_agree_on_encode(self, codec):
        rng = np.random.default_rng(31)
        payload = rng.integers(0, 256, size=3 * 2048 * codec.k + 1, dtype=np.uint8).tobytes()
        reference = None
        for strategy in STRATEGIES:
            set_strategy(strategy)
            frags = [bytes(f) for f in codec.encode(payload)]
            if reference is None:
                reference = frags
            else:
                assert frags == reference, strategy

    @pytest.mark.parametrize("codec", _all_codecs())
    def test_batch_equals_singles(self, codec):
        rng = np.random.default_rng(41)
        burst = [
            rng.integers(0, 256, size=int(n), dtype=np.uint8).tobytes()
            for n in list(rng.integers(1, 8192, size=12)) + [0, 1, 300 * 1024]
        ]
        batched = codec.encode_views_batch(burst)
        assert len(batched) == len(burst)
        for payload, frags in zip(burst, batched):
            singles = [bytes(f) for f in codec.encode_views(payload)]
            assert [bytes(f) for f in frags] == singles

    def test_rs_encode_matches_scalar_generator_product(self):
        """The gate's identity check, in miniature: kernel fragments equal
        the full scalar generator product."""
        codec = ReedSolomonCode(2, 2)
        payload = np.random.default_rng(3).integers(
            0, 256, size=1 * 1024 * 1024 + 1, dtype=np.uint8
        ).tobytes()
        oracle = gf_matmul(codec.generator_matrix, split_shards(payload, codec.k))
        for i, frag in enumerate(codec.encode_views(payload)):
            assert bytes(frag) == oracle[i].tobytes(), i


class TestDefaultStrategyIsVectorised:
    def test_module_default(self):
        # Guards against accidentally shipping with the oracle as default.
        assert gfkernel.active_strategy() in ("packed", "table", "nibble")
