"""Unit tests for the discrete event loop."""

import pytest

from repro.sim.clock import SimClock
from repro.sim.events import EventLoop


class TestEventLoop:
    def test_events_fire_in_time_order(self):
        loop = EventLoop()
        fired = []
        loop.schedule(3.0, lambda: fired.append("c"))
        loop.schedule(1.0, lambda: fired.append("a"))
        loop.schedule(2.0, lambda: fired.append("b"))
        loop.run()
        assert fired == ["a", "b", "c"]
        assert loop.clock.now == 3.0

    def test_same_time_events_fire_in_schedule_order(self):
        loop = EventLoop()
        fired = []
        for tag in range(5):
            loop.schedule(1.0, lambda t=tag: fired.append(t))
        loop.run()
        assert fired == [0, 1, 2, 3, 4]

    def test_schedule_in_past_rejected(self):
        loop = EventLoop(SimClock(10.0))
        with pytest.raises(ValueError):
            loop.schedule(9.0, lambda: None)

    def test_schedule_in_relative(self):
        loop = EventLoop(SimClock(10.0))
        fired = []
        loop.schedule_in(5.0, lambda: fired.append(loop.clock.now))
        loop.run()
        assert fired == [15.0]

    def test_negative_delay_rejected(self):
        loop = EventLoop()
        with pytest.raises(ValueError):
            loop.schedule_in(-1.0, lambda: None)

    def test_cancel(self):
        loop = EventLoop()
        fired = []
        handle = loop.schedule(1.0, lambda: fired.append("x"))
        loop.schedule(2.0, lambda: fired.append("y"))
        loop.cancel(handle)
        loop.run()
        assert fired == ["y"]

    def test_run_until_stops_at_deadline(self):
        loop = EventLoop()
        fired = []
        loop.schedule(1.0, lambda: fired.append(1))
        loop.schedule(5.0, lambda: fired.append(5))
        loop.run_until(3.0)
        assert fired == [1]
        assert loop.clock.now == 3.0
        assert len(loop) == 1

    def test_events_can_schedule_events(self):
        loop = EventLoop()
        fired = []

        def first():
            fired.append("first")
            loop.schedule_in(1.0, lambda: fired.append("second"))

        loop.schedule(1.0, first)
        loop.run()
        assert fired == ["first", "second"]
        assert loop.clock.now == 2.0

    def test_step_on_empty_returns_false(self):
        assert EventLoop().step() is False

    def test_cancel_fired_handle_does_not_accumulate(self):
        # Cancelling a handle that already fired (or never existed) must not
        # grow the tombstone set — only genuinely pending handles count.
        loop = EventLoop()
        handle = loop.schedule(1.0, lambda: None)
        loop.run()
        loop.cancel(handle)
        loop.cancel(999_999)
        assert loop._cancelled == set()

    def test_cancelled_tombstone_cleared_after_skip(self):
        loop = EventLoop()
        handle = loop.schedule(1.0, lambda: None)
        loop.schedule(2.0, lambda: None)
        loop.cancel(handle)
        loop.run()
        assert loop._cancelled == set()
        assert loop._pending == set()

    def test_late_event_fires_at_current_instant(self):
        # When the clock is shared with foreground traffic it can move past a
        # due event between steps; the event fires late, without rewinding.
        clock = SimClock()
        loop = EventLoop(clock)
        fired = []
        loop.schedule(1.0, lambda: fired.append(clock.now))
        clock.advance_to(5.0)
        loop.run()
        assert fired == [5.0]


class TestExceptionContext:
    def test_handler_exception_carries_label_and_time(self):
        loop = EventLoop()

        def boom():
            raise RuntimeError("kaput")

        loop.schedule(3.0, boom, label="frontend-pump[2]")
        with pytest.raises(RuntimeError) as excinfo:
            loop.run()
        notes = getattr(excinfo.value, "__notes__", [])
        assert any(
            "frontend-pump[2]" in n and "t=3" in n for n in notes
        ), f"missing event context in notes: {notes}"

    def test_unlabeled_handler_exception_still_notes_time(self):
        loop = EventLoop()

        def boom():
            raise ValueError("no label")

        loop.schedule_in(1.5, boom)
        with pytest.raises(ValueError) as excinfo:
            loop.run()
        notes = getattr(excinfo.value, "__notes__", [])
        assert any("unlabeled event" in n and "t=1.5" in n for n in notes)

    def test_late_fire_notes_both_times(self):
        clock = SimClock()
        loop = EventLoop(clock)

        def boom():
            raise RuntimeError("late")

        loop.schedule(1.0, boom, label="tick")
        clock.advance_to(5.0)
        with pytest.raises(RuntimeError) as excinfo:
            loop.run()
        notes = getattr(excinfo.value, "__notes__", [])
        assert any("t=1" in n and "fired at t=5" in n for n in notes)

    def test_exception_type_is_preserved(self):
        # Campaign code catches specific exception types around loop.run();
        # annotation must not wrap or replace the original exception.
        class ClientCrash(Exception):
            pass

        loop = EventLoop()

        def crash():
            raise ClientCrash()

        loop.schedule(1.0, crash, label="chaos")
        with pytest.raises(ClientCrash):
            loop.run()

    def test_recurring_event_label_propagates(self):
        loop = EventLoop()
        calls = []

        def tick():
            calls.append(loop.clock.now)
            if len(calls) == 2:
                raise RuntimeError("second tick")

        loop.schedule_every(10.0, tick, label="scrub-tick")
        with pytest.raises(RuntimeError) as excinfo:
            loop.run()
        notes = getattr(excinfo.value, "__notes__", [])
        assert any("scrub-tick" in n and "t=20" in n for n in notes)

    def test_labels_do_not_leak_after_fire_or_cancel(self):
        loop = EventLoop()
        loop.schedule(1.0, lambda: None, label="a")
        handle = loop.schedule(2.0, lambda: None, label="b")
        loop.cancel(handle)
        loop.run()
        assert loop._labels == {}


class TestScheduleEvery:
    def test_recurring_fires_on_interval(self):
        loop = EventLoop()
        fired = []
        event = loop.schedule_every(10.0, lambda: fired.append(loop.clock.now))
        loop.run_until(35.0)
        assert fired == [10.0, 20.0, 30.0]
        assert event.fired == 3
        assert event.active

    def test_first_occurrence_override(self):
        loop = EventLoop(SimClock(100.0))
        fired = []
        loop.schedule_every(10.0, lambda: fired.append(loop.clock.now), first=102.0)
        loop.run_until(125.0)
        assert fired == [102.0, 112.0, 122.0]

    def test_cancel_stops_recurrence(self):
        loop = EventLoop()
        fired = []
        event = loop.schedule_every(10.0, lambda: fired.append(loop.clock.now))
        loop.run_until(15.0)
        event.cancel()
        event.cancel()  # idempotent
        loop.run_until(100.0)
        assert fired == [10.0]
        assert not event.active
        assert len(loop) == 0

    def test_callback_can_cancel_itself(self):
        loop = EventLoop()
        fired = []

        def tick():
            fired.append(loop.clock.now)
            if len(fired) == 2:
                event.cancel()

        event = loop.schedule_every(10.0, tick)
        loop.run_until(100.0)
        assert fired == [10.0, 20.0]

    def test_nonpositive_interval_rejected(self):
        loop = EventLoop()
        with pytest.raises(ValueError):
            loop.schedule_every(0.0, lambda: None)
