"""Unit tests for the discrete event loop."""

import pytest

from repro.sim.clock import SimClock
from repro.sim.events import EventLoop


class TestEventLoop:
    def test_events_fire_in_time_order(self):
        loop = EventLoop()
        fired = []
        loop.schedule(3.0, lambda: fired.append("c"))
        loop.schedule(1.0, lambda: fired.append("a"))
        loop.schedule(2.0, lambda: fired.append("b"))
        loop.run()
        assert fired == ["a", "b", "c"]
        assert loop.clock.now == 3.0

    def test_same_time_events_fire_in_schedule_order(self):
        loop = EventLoop()
        fired = []
        for tag in range(5):
            loop.schedule(1.0, lambda t=tag: fired.append(t))
        loop.run()
        assert fired == [0, 1, 2, 3, 4]

    def test_schedule_in_past_rejected(self):
        loop = EventLoop(SimClock(10.0))
        with pytest.raises(ValueError):
            loop.schedule(9.0, lambda: None)

    def test_schedule_in_relative(self):
        loop = EventLoop(SimClock(10.0))
        fired = []
        loop.schedule_in(5.0, lambda: fired.append(loop.clock.now))
        loop.run()
        assert fired == [15.0]

    def test_negative_delay_rejected(self):
        loop = EventLoop()
        with pytest.raises(ValueError):
            loop.schedule_in(-1.0, lambda: None)

    def test_cancel(self):
        loop = EventLoop()
        fired = []
        handle = loop.schedule(1.0, lambda: fired.append("x"))
        loop.schedule(2.0, lambda: fired.append("y"))
        loop.cancel(handle)
        loop.run()
        assert fired == ["y"]

    def test_run_until_stops_at_deadline(self):
        loop = EventLoop()
        fired = []
        loop.schedule(1.0, lambda: fired.append(1))
        loop.schedule(5.0, lambda: fired.append(5))
        loop.run_until(3.0)
        assert fired == [1]
        assert loop.clock.now == 3.0
        assert len(loop) == 1

    def test_events_can_schedule_events(self):
        loop = EventLoop()
        fired = []

        def first():
            fired.append("first")
            loop.schedule_in(1.0, lambda: fired.append("second"))

        loop.schedule(1.0, first)
        loop.run()
        assert fired == ["first", "second"]
        assert loop.clock.now == 2.0

    def test_step_on_empty_returns_false(self):
        assert EventLoop().step() is False

    def test_cancel_fired_handle_does_not_accumulate(self):
        # Cancelling a handle that already fired (or never existed) must not
        # grow the tombstone set — only genuinely pending handles count.
        loop = EventLoop()
        handle = loop.schedule(1.0, lambda: None)
        loop.run()
        loop.cancel(handle)
        loop.cancel(999_999)
        assert loop._cancelled == set()

    def test_cancelled_tombstone_cleared_after_skip(self):
        loop = EventLoop()
        handle = loop.schedule(1.0, lambda: None)
        loop.schedule(2.0, lambda: None)
        loop.cancel(handle)
        loop.run()
        assert loop._cancelled == set()
        assert loop._pending == set()

    def test_late_event_fires_at_current_instant(self):
        # When the clock is shared with foreground traffic it can move past a
        # due event between steps; the event fires late, without rewinding.
        clock = SimClock()
        loop = EventLoop(clock)
        fired = []
        loop.schedule(1.0, lambda: fired.append(clock.now))
        clock.advance_to(5.0)
        loop.run()
        assert fired == [5.0]


class TestScheduleEvery:
    def test_recurring_fires_on_interval(self):
        loop = EventLoop()
        fired = []
        event = loop.schedule_every(10.0, lambda: fired.append(loop.clock.now))
        loop.run_until(35.0)
        assert fired == [10.0, 20.0, 30.0]
        assert event.fired == 3
        assert event.active

    def test_first_occurrence_override(self):
        loop = EventLoop(SimClock(100.0))
        fired = []
        loop.schedule_every(10.0, lambda: fired.append(loop.clock.now), first=102.0)
        loop.run_until(125.0)
        assert fired == [102.0, 112.0, 122.0]

    def test_cancel_stops_recurrence(self):
        loop = EventLoop()
        fired = []
        event = loop.schedule_every(10.0, lambda: fired.append(loop.clock.now))
        loop.run_until(15.0)
        event.cancel()
        event.cancel()  # idempotent
        loop.run_until(100.0)
        assert fired == [10.0]
        assert not event.active
        assert len(loop) == 0

    def test_callback_can_cancel_itself(self):
        loop = EventLoop()
        fired = []

        def tick():
            fired.append(loop.clock.now)
            if len(fired) == 2:
                event.cancel()

        event = loop.schedule_every(10.0, tick)
        loop.run_until(100.0)
        assert fired == [10.0, 20.0]

    def test_nonpositive_interval_rejected(self):
        loop = EventLoop()
        with pytest.raises(ValueError):
            loop.schedule_every(0.0, lambda: None)
