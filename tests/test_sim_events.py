"""Unit tests for the discrete event loop."""

import pytest

from repro.sim.clock import SimClock
from repro.sim.events import EventLoop


class TestEventLoop:
    def test_events_fire_in_time_order(self):
        loop = EventLoop()
        fired = []
        loop.schedule(3.0, lambda: fired.append("c"))
        loop.schedule(1.0, lambda: fired.append("a"))
        loop.schedule(2.0, lambda: fired.append("b"))
        loop.run()
        assert fired == ["a", "b", "c"]
        assert loop.clock.now == 3.0

    def test_same_time_events_fire_in_schedule_order(self):
        loop = EventLoop()
        fired = []
        for tag in range(5):
            loop.schedule(1.0, lambda t=tag: fired.append(t))
        loop.run()
        assert fired == [0, 1, 2, 3, 4]

    def test_schedule_in_past_rejected(self):
        loop = EventLoop(SimClock(10.0))
        with pytest.raises(ValueError):
            loop.schedule(9.0, lambda: None)

    def test_schedule_in_relative(self):
        loop = EventLoop(SimClock(10.0))
        fired = []
        loop.schedule_in(5.0, lambda: fired.append(loop.clock.now))
        loop.run()
        assert fired == [15.0]

    def test_negative_delay_rejected(self):
        loop = EventLoop()
        with pytest.raises(ValueError):
            loop.schedule_in(-1.0, lambda: None)

    def test_cancel(self):
        loop = EventLoop()
        fired = []
        handle = loop.schedule(1.0, lambda: fired.append("x"))
        loop.schedule(2.0, lambda: fired.append("y"))
        loop.cancel(handle)
        loop.run()
        assert fired == ["y"]

    def test_run_until_stops_at_deadline(self):
        loop = EventLoop()
        fired = []
        loop.schedule(1.0, lambda: fired.append(1))
        loop.schedule(5.0, lambda: fired.append(5))
        loop.run_until(3.0)
        assert fired == [1]
        assert loop.clock.now == 3.0
        assert len(loop) == 1

    def test_events_can_schedule_events(self):
        loop = EventLoop()
        fired = []

        def first():
            fired.append("first")
            loop.schedule_in(1.0, lambda: fired.append("second"))

        loop.schedule(1.0, first)
        loop.run()
        assert fired == ["first", "second"]
        assert loop.clock.now == 2.0

    def test_step_on_empty_returns_false(self):
        assert EventLoop().step() is False
