"""Tests for DepSky-CA (confidentiality + erasure-coded availability)."""

import pytest

from repro.cloud.outage import OutageWindow
from repro.schemes import DepSkyCAScheme
from repro.schemes.base import DataUnavailable

KB, MB = 1024, 1024 * 1024


@pytest.fixture
def ca(providers, clock):
    return DepSkyCAScheme(list(providers.values()), clock)


class TestRoundTrip:
    def test_put_get(self, ca, payload):
        data = payload(100 * KB)
        ca.put("/sec/doc", data)
        got, _ = ca.get("/sec/doc")
        assert got == data

    def test_update(self, ca, payload):
        data = payload(64 * KB)
        ca.put("/sec/doc", data)
        ca.update("/sec/doc", 100, b"REDACTED")
        got, _ = ca.get("/sec/doc")
        assert got[100:108] == b"REDACTED"
        assert got[:100] == data[:100]

    def test_remove(self, ca, payload):
        ca.put("/sec/doc", payload(KB))
        ca.remove("/sec/doc")
        with pytest.raises(FileNotFoundError):
            ca.get("/sec/doc")

    def test_empty_file(self, ca):
        ca.put("/sec/empty", b"")
        got, _ = ca.get("/sec/empty")
        assert got == b""


class TestAvailability:
    def test_tolerates_f_outages(self, ca, providers, clock, payload):
        data = payload(80 * KB)
        ca.put("/sec/doc", data)
        providers["aliyun"].outages.add(OutageWindow(clock.now, clock.now + 60))
        got, report = ca.get("/sec/doc")
        assert got == data

    def test_tolerates_two_outages_with_rs22(self, providers, clock, payload):
        """n=4, f=1 gives RS(2,2): in fact two losses are survivable for
        reads (any 2 of 4 bundles), even beyond the quorum guarantee."""
        ca = DepSkyCAScheme(list(providers.values()), clock)
        data = payload(40 * KB)
        ca.put("/sec/doc", data)
        for name in ("aliyun", "azure"):
            providers[name].outages.add(OutageWindow(clock.now, clock.now + 60))
        got, _ = ca.get("/sec/doc")
        assert got == data

    def test_three_outages_fail(self, ca, providers, clock, payload):
        ca.put("/sec/doc", payload(KB))
        for name in ("aliyun", "azure", "amazon_s3"):
            providers[name].outages.add(OutageWindow(clock.now, clock.now + 60))
        with pytest.raises(DataUnavailable):
            ca.get("/sec/doc")

    def test_write_during_outage_heals(self, ca, providers, clock, payload):
        window = OutageWindow(clock.now, clock.now + 3600)
        providers["azure"].outages.add(window)
        data = payload(50 * KB)
        ca.put("/sec/doc", data)
        clock.advance_to(window.end)
        ca.heal_returned()
        assert len(ca.pending_log("azure")) == 0
        got, report = ca.get("/sec/doc")
        assert got == data


class TestConfidentiality:
    def test_no_provider_stores_plaintext(self, ca, providers, payload):
        data = payload(60 * KB)
        ca.put("/sec/doc", data)
        for name in providers:
            blob = ca.provider_view(name, "/sec/doc")
            assert data not in blob
            # Not even a sizeable plaintext window leaks into the bundle.
            assert data[:256] not in blob

    def test_single_provider_cannot_reconstruct(self, ca, providers, payload):
        """One bundle = one RS fragment of ciphertext + one key share below
        the threshold; neither is usable alone."""
        from repro.schemes.depsky_ca import DepSkyCAScheme as _CA

        data = payload(32 * KB)
        ca.put("/sec/doc", data)
        blob = ca.provider_view("aliyun", "/sec/doc")
        fragment, share, _idx = _CA._unbundle(blob)
        assert fragment != data
        assert len(share) == 16  # a share of the key, not the key space

    def test_space_overhead_is_two(self, ca, payload):
        ca.put("/sec/doc", payload(200 * KB))
        # RS(2,2) on the ciphertext: 2x, far below DepSky-A's 4x.
        assert ca.space_overhead() == pytest.approx(2.0, abs=0.1)

    def test_fresh_key_per_version(self, ca, payload):
        data = payload(4 * KB)
        ca.put("/sec/doc", data)
        v1_blob = ca.provider_view("aliyun", "/sec/doc")
        ca.put("/sec/doc", data)  # same plaintext, new version
        v2_blob = ca.provider_view("aliyun", "/sec/doc")
        assert v1_blob != v2_blob  # new key -> new ciphertext


class TestQuorum:
    def test_write_quorum(self, ca):
        assert ca.write_quorum == 3

    def test_needs_enough_providers(self, providers, clock):
        with pytest.raises(ValueError):
            DepSkyCAScheme([providers["aliyun"], providers["azure"]], clock)
