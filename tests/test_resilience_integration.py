"""Integration tests: the resilience layer driving real scheme traffic.

Covers the acceptance scenarios of the resilience PR: deterministic backoff
schedules, breaker state machines exercised by live phases, container-init
failures routed through the write log, the evaluator's config-exposed probe
retry policy and health-driven demotion, hedged reads, and the end-to-end
fault storm on HyRD (zero data loss, breakers trip and recover, logs drain).
"""

import numpy as np
import pytest

from repro.cloud.errors import CircuitOpenError, TransientProviderError
from repro.cloud.latency import LatencyModel
from repro.cloud.outage import OutageSchedule, OutageWindow
from repro.cloud.pricing import PRICE_PLANS
from repro.cloud.provider import SimulatedProvider, make_table2_cloud_of_clouds
from repro.core.config import HyRDConfig
from repro.core.evaluator import CostPerformanceEvaluator
from repro.core.resilience import BreakerState, ResilienceConfig, RetryPolicy
from repro.faults import FaultProfile, LatencyBrownout, make_fault_storm
from repro.schemes import HyrdScheme, SingleCloudScheme
from repro.schemes.base import DataUnavailable
from repro.sim.clock import SimClock

KB = 1024


def _flaky(clock, rate=0.0, seed=0, outages=None):
    return SimulatedProvider(
        name="flaky",
        clock=clock,
        latency=LatencyModel(
            rtt=0.05, upload_bw=5e6, download_bw=5e6, rtt_sigma=0.0, bw_sigma=0.0
        ),
        pricing=PRICE_PLANS["aliyun"],
        fault_rate=rate,
        fault_seed=seed,
        outages=outages,
    )


class TestBackoffAtSchemeLevel:
    def _run(self, payload):
        clock = SimClock()
        scheme = SingleCloudScheme(_flaky(clock, rate=0.3, seed=11), clock)
        for i in range(12):
            scheme.put(f"/d/f{i}", payload(2 * KB))
        return scheme

    def test_backoff_schedule_is_deterministic(self, payload):
        """Same seed -> same retry count and the same simulated timestamps."""
        rng = np.random.default_rng(0xC0FFEE)

        def mk():
            return rng.integers(0, 256, size=2 * KB, dtype=np.uint8).tobytes()

        datas = [mk() for _ in range(12)]
        ends = []
        retries = []
        for _ in range(2):
            clock = SimClock()
            scheme = SingleCloudScheme(_flaky(clock, rate=0.3, seed=11), clock)
            for i, data in enumerate(datas):
                scheme.put(f"/d/f{i}", data)
            ends.append(clock.now)
            retries.append(scheme.collector.counter("retries"))
        assert retries[0] > 0  # the flakiness actually burned retries
        assert retries[0] == retries[1]
        assert ends[0] == ends[1]

    def test_backoff_waits_cost_sim_time(self, payload):
        """Same fault sequence, backoff on vs off: identical retries, but
        the backoff run spends strictly more simulated time waiting."""
        results = {}
        for label, retry in (
            ("backoff", RetryPolicy(base_delay=0.2, jitter=0.0)),
            ("immediate", RetryPolicy(base_delay=0.2, jitter=0.0).without_backoff()),
        ):
            clock = SimClock()
            scheme = SingleCloudScheme(
                _flaky(clock, rate=0.3, seed=11),
                clock,
                resilience=ResilienceConfig(retry=retry),
            )
            for i in range(12):
                scheme.put(f"/d/f{i}", bytes(2 * KB))
            results[label] = (scheme.collector.counter("retries"), clock.now)
        assert results["backoff"][0] == results["immediate"][0]
        assert results["backoff"][1] > results["immediate"][1]

    def test_retries_surface_in_op_reports(self):
        clock = SimClock()
        scheme = SingleCloudScheme(_flaky(clock, rate=0.4, seed=2), clock)
        for i in range(10):
            scheme.put(f"/d/f{i}", bytes(KB))
        total = sum(r.retries for r in scheme.collector.reports)
        assert total == scheme.collector.counter("retries")
        assert total > 0


class TestBreakerIntegration:
    def _breaker_config(self):
        return ResilienceConfig(
            breaker_failure_threshold=2,
            breaker_reset_timeout=5.0,
            breaker_half_open_successes=1,
        )

    def test_outage_trips_breaker_and_fast_fails(self):
        clock = SimClock()
        outages = OutageSchedule([OutageWindow(0.0, 60.0)])
        scheme = SingleCloudScheme(
            _flaky(clock, outages=outages), clock, resilience=self._breaker_config()
        )
        for i in range(5):
            scheme.put(f"/d/f{i}", bytes(KB))
        breaker = scheme._breakers["flaky"]
        assert breaker.state == BreakerState.OPEN
        assert scheme.collector.counter("breaker_open") == 1
        assert scheme.collector.counter("breaker_fast_fail") > 0
        # every mutation is still write-logged, fast-failed or not
        keys = {e.key for e in scheme.pending_log("flaky").peek()}
        assert {f"/d/f{i}#v1" for i in range(5)} <= keys

    def test_fast_fail_costs_no_wire_time(self):
        clock = SimClock()
        outages = OutageSchedule([OutageWindow(0.0, 60.0)])
        scheme = SingleCloudScheme(
            _flaky(clock, outages=outages), clock, resilience=self._breaker_config()
        )
        scheme.put("/d/a", bytes(KB))
        scheme.put("/d/b", bytes(KB))  # trips the breaker (threshold 2)
        t0 = clock.now
        report = scheme.put("/d/c", bytes(KB))
        assert clock.now == t0  # breaker open: no request left the client
        assert report.elapsed == 0.0

    def test_breaker_recovers_through_half_open_probe(self):
        # Trip the breaker with failed *reads*: unlike mutations they leave no
        # write-log entry behind, so no heal replay precedes the next access
        # and recovery has to walk the genuine open -> half-open -> closed path.
        clock = SimClock()
        provider = _flaky(clock)
        scheme = SingleCloudScheme(provider, clock, resilience=self._breaker_config())
        scheme.put("/d/a", bytes(KB))
        provider.fault_rate = 1.0
        breaker = scheme._breakers["flaky"]
        while breaker.state != BreakerState.OPEN:
            with pytest.raises(DataUnavailable):
                scheme.get("/d/a")
        provider.fault_rate = 0.0
        clock.advance(20.0)  # cooldown (5s) expired: the next read is the probe
        got, _ = scheme.get("/d/a")
        assert got == bytes(KB)
        assert breaker.state == BreakerState.CLOSED
        assert [s for _, s in breaker.transitions] == [
            BreakerState.OPEN,
            BreakerState.HALF_OPEN,
            BreakerState.CLOSED,
        ]
        assert scheme.collector.counter("breaker_half_open") == 1
        assert scheme.collector.counter("breaker_closed") == 1

    def test_heal_replay_closes_open_breaker_directly(self):
        # Mutations during an outage land in the write log; on the next access
        # the heal replay runs first (breaker bypassed) and its success is
        # decisive evidence, closing the breaker without a half-open stop.
        clock = SimClock()
        outages = OutageSchedule([OutageWindow(0.0, 10.0)])
        scheme = SingleCloudScheme(
            _flaky(clock, outages=outages), clock, resilience=self._breaker_config()
        )
        scheme.put("/d/a", bytes(KB))
        scheme.put("/d/b", bytes(KB))
        breaker = scheme._breakers["flaky"]
        assert breaker.state == BreakerState.OPEN
        clock.advance(20.0)  # outage over and cooldown expired
        scheme.put("/d/c", bytes(KB))
        assert breaker.state == BreakerState.CLOSED
        assert [s for _, s in breaker.transitions] == [
            BreakerState.OPEN,
            BreakerState.CLOSED,
        ]
        assert not scheme.pending_log("flaky")

    def test_heal_bypasses_open_breaker(self):
        """The consistency update must run even while the breaker is open —
        and its success closes the breaker without waiting for the cooldown."""
        clock = SimClock()
        outages = OutageSchedule([OutageWindow(0.0, 10.0)])
        cfg = ResilienceConfig(
            breaker_failure_threshold=2,
            breaker_reset_timeout=1e6,  # would never half-open by timer
            breaker_half_open_successes=1,
        )
        scheme = SingleCloudScheme(_flaky(clock, outages=outages), clock, resilience=cfg)
        scheme.put("/d/a", bytes(KB))
        scheme.put("/d/b", bytes(KB))
        assert scheme._breakers["flaky"].state == BreakerState.OPEN
        clock.advance(15.0)  # outage over, breaker still open
        scheme.heal_returned()
        assert not scheme.pending_log("flaky")
        assert scheme._breakers["flaky"].state == BreakerState.CLOSED
        got, _ = scheme.get("/d/a")
        assert got == bytes(KB)

    def test_breakers_disabled_by_config(self):
        clock = SimClock()
        outages = OutageSchedule([OutageWindow(0.0, 60.0)])
        scheme = SingleCloudScheme(
            _flaky(clock, outages=outages),
            clock,
            resilience=ResilienceConfig(breaker_enabled=False),
        )
        for i in range(6):
            scheme.put(f"/d/f{i}", bytes(KB))
        assert scheme._breakers == {}
        assert scheme.collector.counter("breaker_fast_fail") == 0

    def test_circuit_open_error_is_a_provider_unavailable(self):
        from repro.cloud.errors import ProviderUnavailable

        err = CircuitOpenError("p", 1.0)
        assert isinstance(err, ProviderUnavailable)


class TestContainerInitWriteLog:
    def test_exhausted_create_retries_are_logged_and_healed(self):
        clock = SimClock()
        provider = _flaky(clock)
        real_create = provider.create
        attempts = []

        def failing_create(container, *, exist_ok=False):
            attempts.append(container)
            raise TransientProviderError("flaky", clock.now)

        provider.create = failing_create
        scheme = SingleCloudScheme(provider, clock)
        # the whole retry budget was spent, then the failure was recorded
        assert len(attempts) == scheme.retry_policy.max_attempts
        (entry,) = scheme.pending_log("flaky").peek()
        assert entry.kind == "create"
        assert entry.container == scheme.container
        # provider recovers: the consistency update creates the container
        provider.create = real_create
        scheme.heal_returned()
        assert not scheme.pending_log("flaky")
        assert provider.store.has_container(scheme.container)
        scheme.put("/d/f", b"x" * KB)
        got, _ = scheme.get("/d/f")
        assert got == b"x" * KB

    def test_outage_at_init_is_logged_and_healed(self):
        clock = SimClock()
        outages = OutageSchedule([OutageWindow(0.0, 10.0)])
        provider = _flaky(clock, outages=outages)
        scheme = SingleCloudScheme(provider, clock)
        (entry,) = scheme.pending_log("flaky").peek()
        assert entry.kind == "create"
        clock.advance(15.0)
        scheme.heal_returned()
        assert not scheme.pending_log("flaky")
        assert provider.store.has_container(scheme.container)


class TestEvaluatorRetryPolicy:
    def test_probe_policy_comes_from_config(self):
        clock = SimClock()
        fleet = make_table2_cloud_of_clouds(clock)
        probe = RetryPolicy(max_attempts=9, base_delay=0.0, max_delay=0.0, jitter=0.0)
        cfg = HyRDConfig(resilience=ResilienceConfig(probe_retry=probe))
        ev = CostPerformanceEvaluator(list(fleet.values()), cfg)
        assert ev.retry_policy is probe
        override = RetryPolicy(max_attempts=2)
        ev2 = CostPerformanceEvaluator(
            list(fleet.values()), cfg, retry_policy=override
        )
        assert ev2.retry_policy is override

    def test_probe_scores_are_deterministic_per_seed(self):
        """Regression for the hard-coded range(6) loop: two evaluators with
        the same seed converge on identical scores and classification."""
        runs = []
        for _ in range(2):
            clock = SimClock()
            fleet = make_table2_cloud_of_clouds(clock)
            for p in fleet.values():
                p.fault_rate = 0.15
            ev = CostPerformanceEvaluator(list(fleet.values()), HyRDConfig(seed=3))
            profiles = ev.evaluate()
            runs.append(
                {n: (p.latency_score, p.category) for n, p in profiles.items()}
            )
        assert runs[0] == runs[1]

    def test_single_attempt_policy_gives_up_on_flaky_provider(self):
        clock = SimClock()
        fleet = make_table2_cloud_of_clouds(clock)
        fleet["rackspace"].fault_rate = 0.9
        cfg = HyRDConfig(
            resilience=ResilienceConfig(probe_retry=RetryPolicy(max_attempts=1))
        )
        ev = CostPerformanceEvaluator(list(fleet.values()), cfg)
        profiles = ev.evaluate()  # other providers keep it evaluable
        assert profiles["rackspace"].latency_score == float("inf")


class TestHealthDemotion:
    def test_browned_out_provider_loses_performance_class(self):
        clock = SimClock()
        fleet = make_table2_cloud_of_clouds(clock)
        scheme = HyrdScheme(list(fleet.values()), clock)
        assert "aliyun" in scheme.evaluator.performance_oriented()

        # A harsh brownout starts *after* the clean probes ran.
        t0 = clock.now
        fleet["aliyun"].faults = FaultProfile(
            [LatencyBrownout(t0, t0 + 1e6, rtt_factor=10.0, bw_factor=0.1)]
        ).bind("aliyun")
        for i in range(15):  # live traffic teaches the health tracker
            scheme.put(f"/d/f{i}", bytes(64 * KB))
            scheme.get(f"/d/f{i}")
        assert scheme.health["aliyun"].slowdown > 2.0

        scheme.refresh_health_ranking()
        assert "aliyun" not in scheme.evaluator.performance_oriented()
        # the classification still names enough performance providers
        assert scheme.evaluator.performance_oriented()

    def test_rerank_restores_once_health_recovers(self):
        clock = SimClock()
        fleet = make_table2_cloud_of_clouds(clock)
        scheme = HyrdScheme(list(fleet.values()), clock)
        t0 = clock.now
        fleet["aliyun"].faults = FaultProfile(
            [LatencyBrownout(t0, t0 + 50.0, rtt_factor=10.0, bw_factor=0.1)]
        ).bind("aliyun")
        for i in range(15):
            scheme.put(f"/d/b{i}", bytes(64 * KB))
            scheme.get(f"/d/b{i}")
        scheme.refresh_health_ranking()
        assert "aliyun" not in scheme.evaluator.performance_oriented()
        # Brownout ends.  Demotion removed aliyun from the replication
        # targets, but it keeps its cost-oriented stripe slot, so large-file
        # traffic keeps sampling it — that is what washes the EWMA back down.
        clock.advance(60.0)
        for i in range(25):
            scheme.put(f"/d/L{i}", bytes(2 * 1024 * KB))
        scheme.refresh_health_ranking()
        assert "aliyun" in scheme.evaluator.performance_oriented()


class TestHedgedReads:
    def _hedge_scheme(self, clock, fleet):
        cfg = HyRDConfig(resilience=ResilienceConfig(hedge_reads=True))
        return HyrdScheme(list(fleet.values()), clock, config=cfg)

    def test_hedge_fires_on_slow_primary_and_backup_wins(self):
        clock = SimClock()
        fleet = make_table2_cloud_of_clouds(clock)
        scheme = self._hedge_scheme(clock, fleet)
        data = bytes(range(256)) * 256  # 64 KB -> replicated small file
        scheme.put("/d/small", data)
        t0 = clock.now
        fleet["aliyun"].faults = FaultProfile(
            [LatencyBrownout(t0, t0 + 1e6, rtt_factor=10.0, bw_factor=0.05)]
        ).bind("aliyun")
        got, report = scheme.get("/d/small")
        assert got == data
        assert report.hedged
        assert not report.degraded  # the primary never *failed*
        assert scheme.collector.counter("hedged_reads") == 1
        assert scheme.collector.counter("hedge_wins") == 1

    def test_fast_primary_never_hedges(self):
        clock = SimClock()
        fleet = make_table2_cloud_of_clouds(clock)
        scheme = self._hedge_scheme(clock, fleet)
        data = bytes(64 * KB)
        scheme.put("/d/small", data)
        for _ in range(3):
            got, report = scheme.get("/d/small")
            assert got == data
            assert not report.hedged
        assert scheme.collector.counter("hedged_reads") == 0

    def test_hedging_off_by_default(self):
        clock = SimClock()
        fleet = make_table2_cloud_of_clouds(clock)
        scheme = HyrdScheme(list(fleet.values()), clock)
        assert not scheme.resilience.hedge_reads

    def test_hedged_read_is_cheaper_than_waiting_out_the_brownout(self):
        """The hedge's point: tail latency under a brownout beats the
        non-hedged read by a wide margin."""
        elapsed = {}
        for label, hedge in (("hedged", True), ("plain", False)):
            clock = SimClock()
            fleet = make_table2_cloud_of_clouds(clock)
            cfg = HyRDConfig(resilience=ResilienceConfig(hedge_reads=hedge))
            scheme = HyrdScheme(list(fleet.values()), clock, config=cfg)
            data = bytes(256 * KB)
            scheme.put("/d/small", data)
            t0 = clock.now
            fleet["aliyun"].faults = FaultProfile(
                [LatencyBrownout(t0, t0 + 1e6, rtt_factor=10.0, bw_factor=0.05)]
            ).bind("aliyun")
            got, report = scheme.get("/d/small")
            assert got == data
            elapsed[label] = report.elapsed
        assert elapsed["hedged"] < elapsed["plain"]


class TestFaultStormEndToEnd:
    def test_hyrd_survives_the_three_front_storm(self, payload):
        """Acceptance scenario: brownout + transient burst + flapping outage
        at once.  Every read returns correct bytes throughout (degraded or
        hedged allowed), breakers trip and recover, and once the storm
        passes the write logs drain to empty."""
        clock = SimClock()
        fleet = make_table2_cloud_of_clouds(clock)
        cfg = HyRDConfig(
            resilience=ResilienceConfig(
                hedge_reads=True,
                breaker_failure_threshold=3,
                breaker_reset_timeout=15.0,
            )
        )
        scheme = HyrdScheme(list(fleet.values()), clock, config=cfg)

        storm = make_fault_storm(t0=clock.now, duration=3600.0, seed=5)
        storm.apply(fleet)

        contents = {}
        rng = np.random.default_rng(17)
        for step in range(60):
            i = step % 12
            path = f"/d/f{i}"
            if path not in contents or rng.random() < 0.4:
                size = int(rng.integers(1, 4)) * 64 * KB  # replicated smalls
                if rng.random() < 0.3:
                    size = 2 * 1024 * KB  # and some erasure-coded larges
                contents[path] = rng.integers(0, 256, size, dtype=np.uint8).tobytes()
                scheme.put(path, contents[path])
            got, _ = scheme.get(path)
            assert got == contents[path]  # zero data loss, mid-storm
            clock.advance(7.0)  # walk across flapping cycles
            scheme.heal_returned()

        # The flapper tripped its breaker and the breaker recovered.
        breaker = scheme._breakers["rackspace"]
        states = [s for _, s in breaker.transitions]
        assert BreakerState.OPEN in states
        assert BreakerState.CLOSED in states
        assert scheme.collector.counter("retries") > 0

        # Storm over: heal until every log drains, then everything serves
        # cleanly (no degraded path needed).
        storm.clear(fleet)
        for _ in range(50):
            if not any(scheme.pending_log(n) for n in scheme.provider_names):
                break
            scheme.heal_returned()
            clock.advance(1.0)
        assert not any(scheme.pending_log(n) for n in scheme.provider_names)
        for path, data in contents.items():
            got, report = scheme.get(path)
            assert got == data
            assert not report.degraded
