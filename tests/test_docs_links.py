"""Intra-repo markdown links must resolve (the checker the docs CI job runs)."""

import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "tools"))

from check_markdown_links import _slugify, check_file, check_tree  # noqa: E402


def test_repo_markdown_links_resolve():
    problems = check_tree(ROOT)
    assert not problems, "broken markdown links:\n" + "\n".join(problems)


def test_checker_catches_broken_link(tmp_path):
    (tmp_path / "a.md").write_text("see [other](missing.md)\n", encoding="utf-8")
    problems = check_tree(tmp_path)
    assert len(problems) == 1
    assert "broken link -> missing.md" in problems[0]


def test_checker_accepts_good_links_and_skips_external(tmp_path):
    (tmp_path / "b.md").write_text("# Target Section\n", encoding="utf-8")
    (tmp_path / "a.md").write_text(
        "[ok](b.md) [anchor](b.md#target-section) [ext](https://example.com) "
        "[self](#somewhere)\n",
        encoding="utf-8",
    )
    assert check_tree(tmp_path) == []


def test_checker_catches_missing_anchor(tmp_path):
    (tmp_path / "b.md").write_text("# Only Heading\n", encoding="utf-8")
    (tmp_path / "a.md").write_text("[x](b.md#nope)\n", encoding="utf-8")
    problems = check_file(tmp_path / "a.md", tmp_path)
    assert problems and "missing anchor" in problems[0]


def test_checker_ignores_code_blocks(tmp_path):
    (tmp_path / "a.md").write_text(
        "```\n[not a link](nothing.md)\n```\n", encoding="utf-8"
    )
    assert check_tree(tmp_path) == []


def test_slugify_matches_github_style():
    assert _slugify("Install & verify") == "install--verify"
    assert _slugify("The `repro report` CLI") == "the-repro-report-cli"
