"""Unit tests for the DuraCloud baseline (sequential 2x replication)."""

import pytest

from repro.cloud.outage import OutageWindow
from repro.schemes import DuraCloudScheme


@pytest.fixture
def dc(providers, clock):
    return DuraCloudScheme([providers["amazon_s3"], providers["azure"]], clock)


class TestPlacement:
    def test_requires_enough_providers(self, providers, clock):
        with pytest.raises(ValueError):
            DuraCloudScheme([providers["aliyun"]], clock)
        with pytest.raises(ValueError):
            DuraCloudScheme(list(providers.values()), clock, replication_level=1)

    def test_both_replicas_written(self, dc, providers, payload):
        data = payload(1000)
        dc.put("/d/a", data)
        for name in ("amazon_s3", "azure"):
            store = providers[name].store
            assert store.get(dc.container, "/d/a#v1").data == data

    def test_space_overhead_is_2x(self, dc, payload):
        dc.put("/d/a", payload(50_000))
        assert dc.space_overhead() == pytest.approx(2.0, abs=0.05)

    def test_replication_level_configurable(self, providers, clock, payload):
        dc3 = DuraCloudScheme(list(providers.values()), clock, replication_level=3)
        dc3.put("/d/a", payload(60_000))
        assert dc3.space_overhead() == pytest.approx(3.0, abs=0.1)


class TestSequentialWrites:
    def test_write_costs_sum_of_transfers(self, dc, providers, clock, payload):
        """Sequential sync: the write takes longer than either single upload."""
        data = payload(2_000_000)
        report = dc.put("/d/a", data)
        single_amazon = 2_000_000 / providers["amazon_s3"].latency.upload_bw
        single_azure = 2_000_000 / providers["azure"].latency.upload_bw
        assert report.elapsed > max(single_amazon, single_azure)
        assert report.elapsed > single_amazon + single_azure * 0.8

    def test_outage_skips_sync_step(self, dc, providers, clock, payload):
        """The paper's effect: writes get faster when one provider is out."""
        data = payload(2_000_000)
        normal = dc.put("/d/a", data)
        providers["azure"].outages.add(OutageWindow(clock.now, clock.now + 3600))
        during = dc.put("/d/b", data)
        assert during.elapsed < normal.elapsed


class TestReads:
    def test_reads_prefer_faster_replica(self, dc, providers, payload):
        dc.put("/d/a", payload(1000))
        _, report = dc.get("/d/a")
        assert report.providers == ("azure",)  # azure is the faster of the two

    def test_read_falls_back_during_outage(self, dc, providers, clock, payload):
        data = payload(1000)
        dc.put("/d/a", data)
        providers["azure"].outages.add(OutageWindow(clock.now, clock.now + 3600))
        got, report = dc.get("/d/a")
        assert got == data
        assert report.degraded
        assert "amazon_s3" in report.providers


class TestSynchronization:
    def test_copies_resynchronized_after_outage(self, dc, providers, clock, payload):
        v1 = payload(500)
        v2 = payload(700)
        dc.put("/d/a", v1)
        window = OutageWindow(clock.now, clock.now + 3600)
        providers["azure"].outages.add(window)
        dc.put("/d/a", v2)  # azure misses this
        clock.advance_to(window.end)
        dc.heal_returned()
        assert providers["azure"].store.get(dc.container, "/d/a#v2").data == v2
        # The stale v1 object was deleted during the consistency update.
        assert not providers["azure"].store.has(dc.container, "/d/a#v1")
