"""Unit tests for write logs (outage recovery state)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.recovery import LoggedWrite, WriteLog


class TestLoggedWrite:
    def test_validation(self):
        with pytest.raises(ValueError):
            LoggedWrite("move", "c", "k", None, 0.0)
        with pytest.raises(ValueError):
            LoggedWrite("put", "c", "k", None, 0.0)
        with pytest.raises(ValueError):
            LoggedWrite("remove", "c", "k", b"x", 0.0)


class TestWriteLog:
    def test_empty(self):
        log = WriteLog()
        assert not log
        assert len(log) == 0
        assert log.drain() == []

    def test_log_put_and_drain(self):
        log = WriteLog()
        log.log_put("c", "k", b"data", 1.0)
        assert len(log) == 1
        (entry,) = log.drain()
        assert entry.kind == "put"
        assert entry.data == b"data"
        assert not log  # drained

    def test_last_wins_per_key(self):
        log = WriteLog()
        log.log_put("c", "k", b"v1", 1.0)
        log.log_put("c", "k", b"v2", 2.0)
        assert len(log) == 1
        (entry,) = log.peek()
        assert entry.data == b"v2"

    def test_remove_supersedes_put(self):
        log = WriteLog()
        log.log_put("c", "k", b"v1", 1.0)
        log.log_remove("c", "k", 2.0)
        (entry,) = log.peek()
        assert entry.kind == "remove"

    def test_replay_order_is_recency_order(self):
        log = WriteLog()
        log.log_put("c", "a", b"1", 1.0)
        log.log_put("c", "b", b"2", 2.0)
        log.log_put("c", "a", b"3", 3.0)  # re-log moves to the end
        assert [e.key for e in log.peek()] == ["b", "a"]

    def test_distinct_keys_tracked_separately(self):
        log = WriteLog()
        log.log_put("c1", "k", b"1", 0.0)
        log.log_put("c2", "k", b"2", 0.0)
        assert len(log) == 2

    def test_discard(self):
        log = WriteLog()
        log.log_put("c", "k", b"1", 0.0)
        log.discard("c", "k")
        assert not log
        log.discard("c", "missing")  # no-op

    def test_pending_bytes(self):
        log = WriteLog()
        log.log_put("c", "a", b"12345", 0.0)
        log.log_remove("c", "b", 0.0)
        assert log.pending_bytes() == 5

    def test_payload_copied(self):
        log = WriteLog()
        buf = bytearray(b"abc")
        log.log_put("c", "k", bytes(buf), 0.0)
        buf[0] = 0
        assert log.peek()[0].data == b"abc"


class TestWriteLogSpill:
    """Bounded memory: past the limit, oldest put payloads move to the
    client-local disk tier (still replayable, no longer resident)."""

    def test_validation(self):
        with pytest.raises(ValueError):
            WriteLog(memory_limit_bytes=-1)

    def test_unlimited_never_spills(self):
        log = WriteLog()
        log.log_put("c", "k", b"x" * 1024, 0.0)
        assert log.spilled_bytes() == 0 and log.spill_events == 0
        assert log.memory_bytes() == 1024

    def test_zero_budget_spills_everything(self):
        log = WriteLog(memory_limit_bytes=0)
        log.log_put("c", "a", b"x" * 10, 0.0)
        log.log_put("c", "b", b"y" * 20, 1.0)
        assert log.memory_bytes() == 0
        assert log.spilled_bytes() == 30
        assert log.pending_bytes() == 30
        assert log.spill_events == 2

    def test_spill_is_oldest_first(self):
        log = WriteLog(memory_limit_bytes=25)
        log.log_put("c", "a", b"a" * 10, 0.0)
        log.log_put("c", "b", b"b" * 10, 1.0)
        assert log.spilled_bytes() == 0  # 20 <= 25: all resident
        log.log_put("c", "c", b"c" * 10, 2.0)
        # 30 > 25: spill "a" (oldest) — 20 resident fits the budget
        assert log.spilled_bytes() == 10
        assert log.memory_bytes() == 20
        assert log.spill_events == 1

    def test_removes_cost_no_memory(self):
        log = WriteLog(memory_limit_bytes=0)
        log.log_remove("c", "k", 0.0)
        assert log.pending_bytes() == 0 and log.spill_events == 0

    def test_overwrite_of_spilled_entry_fixes_accounting(self):
        log = WriteLog(memory_limit_bytes=0)
        log.log_put("c", "k", b"x" * 100, 0.0)
        assert log.spilled_bytes() == 100
        log.log_put("c", "k", b"y" * 40, 1.0)
        assert log.pending_bytes() == 40
        assert log.spilled_bytes() == 40  # re-spilled under the zero budget
        log.log_remove("c", "k", 2.0)
        assert log.pending_bytes() == 0 and log.spilled_bytes() == 0

    def test_discard_of_spilled_entry(self):
        log = WriteLog(memory_limit_bytes=0)
        log.log_put("c", "k", b"x" * 7, 0.0)
        log.discard("c", "k")
        assert not log
        assert log.pending_bytes() == 0 and log.spilled_bytes() == 0

    def test_drain_reloads_spilled_payloads_and_resets(self):
        log = WriteLog(memory_limit_bytes=0)
        log.log_put("c", "a", b"payload-a", 0.0)
        log.log_put("c", "b", b"payload-b", 1.0)
        entries = log.drain()
        # entries always carry their data, whatever tier they waited on
        assert [e.data for e in entries] == [b"payload-a", b"payload-b"]
        assert log.pending_bytes() == 0
        assert log.memory_bytes() == 0
        assert log.spilled_bytes() == 0

    @given(
        limit=st.integers(min_value=0, max_value=64),
        sizes=st.lists(st.integers(min_value=0, max_value=32), max_size=20),
    )
    def test_tier_accounting_is_conserved(self, limit, sizes):
        log = WriteLog(memory_limit_bytes=limit)
        for i, size in enumerate(sizes):
            log.log_put("c", f"k{i}", b"x" * size, float(i))
            # the two tiers always partition the pending payload...
            assert log.memory_bytes() + log.spilled_bytes() == log.pending_bytes()
            # ...and residency only exceeds the budget when nothing more
            # can be spilled (every retained payload is already on disk)
            if log.memory_bytes() > limit:
                assert all(
                    e.data is None or log.spilled_bytes() >= log.pending_bytes()
                    for e in log.peek()
                )


# (container, key) space small enough that random sequences collide often —
# collisions are exactly what exercises the last-wins compaction.
_KEYS = st.tuples(st.sampled_from(["c1", "c2"]), st.sampled_from(["a", "b", "c"]))
# payload None encodes a remove, bytes a put
_OPS = st.lists(st.tuples(_KEYS, st.none() | st.binary(max_size=32)), max_size=50)


class TestWriteLogReplayProperties:
    """Replay semantics under arbitrary interleaved put/remove sequences."""

    @staticmethod
    def _apply(log, ops):
        for i, ((container, key), payload) in enumerate(ops):
            if payload is None:
                log.log_remove(container, key, float(i))
            else:
                log.log_put(container, key, payload, float(i))

    @given(ops=_OPS)
    def test_replay_is_last_write_per_key_in_log_order(self, ops):
        log = WriteLog()
        self._apply(log, ops)
        # last mutation per key, and the position where it happened
        last: dict[tuple[str, str], tuple[int, bytes | None]] = {}
        for i, (k, payload) in enumerate(ops):
            last[k] = (i, payload)
        entries = log.drain()
        assert not log  # drain empties the log
        # exactly one entry per mutated key, carrying its final state
        assert {(e.container, e.key) for e in entries} == set(last)
        for e in entries:
            _, payload = last[(e.container, e.key)]
            if payload is None:
                assert e.kind == "remove" and e.data is None
            else:
                assert e.kind == "put" and e.data == payload
        # replay order == order of each key's *latest* mutation
        positions = [last[(e.container, e.key)][0] for e in entries]
        assert positions == sorted(positions)

    @given(ops=_OPS)
    def test_pending_bytes_matches_drained_payload(self, ops):
        log = WriteLog()
        self._apply(log, ops)
        pending = log.pending_bytes()
        drained = log.drain()
        assert pending == sum(len(e.data) for e in drained if e.data is not None)
        assert log.pending_bytes() == 0

    @given(ops=_OPS)
    def test_replaying_drain_reproduces_final_state(self, ops):
        """Applying the compacted log to a store yields the same contents as
        applying the full mutation sequence — the consistency-update
        correctness argument."""
        log = WriteLog()
        full: dict[tuple[str, str], bytes] = {}
        for i, ((container, key), payload) in enumerate(ops):
            if payload is None:
                log.log_remove(container, key, float(i))
                full.pop((container, key), None)
            else:
                log.log_put(container, key, payload, float(i))
                full[(container, key)] = payload
        replayed: dict[tuple[str, str], bytes] = {}
        for e in log.drain():
            if e.kind == "put":
                replayed[(e.container, e.key)] = e.data
            elif e.kind == "remove":
                replayed.pop((e.container, e.key), None)
        assert replayed == full
