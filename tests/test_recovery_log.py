"""Unit tests for write logs (outage recovery state)."""

import pytest

from repro.core.recovery import LoggedWrite, WriteLog


class TestLoggedWrite:
    def test_validation(self):
        with pytest.raises(ValueError):
            LoggedWrite("move", "c", "k", None, 0.0)
        with pytest.raises(ValueError):
            LoggedWrite("put", "c", "k", None, 0.0)
        with pytest.raises(ValueError):
            LoggedWrite("remove", "c", "k", b"x", 0.0)


class TestWriteLog:
    def test_empty(self):
        log = WriteLog()
        assert not log
        assert len(log) == 0
        assert log.drain() == []

    def test_log_put_and_drain(self):
        log = WriteLog()
        log.log_put("c", "k", b"data", 1.0)
        assert len(log) == 1
        (entry,) = log.drain()
        assert entry.kind == "put"
        assert entry.data == b"data"
        assert not log  # drained

    def test_last_wins_per_key(self):
        log = WriteLog()
        log.log_put("c", "k", b"v1", 1.0)
        log.log_put("c", "k", b"v2", 2.0)
        assert len(log) == 1
        (entry,) = log.peek()
        assert entry.data == b"v2"

    def test_remove_supersedes_put(self):
        log = WriteLog()
        log.log_put("c", "k", b"v1", 1.0)
        log.log_remove("c", "k", 2.0)
        (entry,) = log.peek()
        assert entry.kind == "remove"

    def test_replay_order_is_recency_order(self):
        log = WriteLog()
        log.log_put("c", "a", b"1", 1.0)
        log.log_put("c", "b", b"2", 2.0)
        log.log_put("c", "a", b"3", 3.0)  # re-log moves to the end
        assert [e.key for e in log.peek()] == ["b", "a"]

    def test_distinct_keys_tracked_separately(self):
        log = WriteLog()
        log.log_put("c1", "k", b"1", 0.0)
        log.log_put("c2", "k", b"2", 0.0)
        assert len(log) == 2

    def test_discard(self):
        log = WriteLog()
        log.log_put("c", "k", b"1", 0.0)
        log.discard("c", "k")
        assert not log
        log.discard("c", "missing")  # no-op

    def test_pending_bytes(self):
        log = WriteLog()
        log.log_put("c", "a", b"12345", 0.0)
        log.log_remove("c", "b", 0.0)
        assert log.pending_bytes() == 5

    def test_payload_copied(self):
        log = WriteLog()
        buf = bytearray(b"abc")
        log.log_put("c", "k", bytes(buf), 0.0)
        buf[0] = 0
        assert log.peek()[0].data == b"abc"
