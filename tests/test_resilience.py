"""Unit tests for retry policies, circuit breakers and health tracking."""

import numpy as np
import pytest

from repro.core.resilience import (
    NO_BACKOFF,
    BreakerState,
    CircuitBreaker,
    ProviderHealth,
    ResilienceConfig,
    RetryPolicy,
)
from repro.sim.rng import make_rng


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-0.1)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.0)

    def test_backoff_grows_exponentially_without_jitter(self):
        policy = RetryPolicy(base_delay=0.1, multiplier=2.0, max_delay=10.0, jitter=0.0)
        assert policy.backoff(0) == pytest.approx(0.1)
        assert policy.backoff(1) == pytest.approx(0.2)
        assert policy.backoff(2) == pytest.approx(0.4)

    def test_backoff_caps_at_max_delay(self):
        policy = RetryPolicy(base_delay=1.0, multiplier=10.0, max_delay=2.0, jitter=0.0)
        assert policy.backoff(5) == 2.0

    def test_jitter_stays_in_band(self):
        policy = RetryPolicy(base_delay=1.0, multiplier=1.0, max_delay=1.0, jitter=0.25)
        rng = np.random.default_rng(0)
        for _ in range(100):
            d = policy.backoff(0, rng)
            assert 0.75 <= d <= 1.25

    def test_jitter_is_deterministic_per_seed(self):
        policy = RetryPolicy(jitter=0.25)
        a = [policy.backoff(i, make_rng(7, "retry")) for i in range(4)]
        b = [policy.backoff(i, make_rng(7, "retry")) for i in range(4)]
        assert a == b

    def test_schedule_truncated_by_deadline(self):
        policy = RetryPolicy(
            max_attempts=10, base_delay=1.0, multiplier=2.0, max_delay=100.0,
            jitter=0.0, deadline=5.0,
        )
        # waits 1, 2, 4 -> cumulative 1, 3, 7: the third wait breaks the deadline
        assert policy.schedule() == [1.0, 2.0]

    def test_without_backoff_keeps_attempts(self):
        policy = RetryPolicy(max_attempts=5).without_backoff()
        assert policy.max_attempts == 5
        assert policy.backoff(3, np.random.default_rng(0)) == 0.0
        assert NO_BACKOFF.backoff(0) == 0.0


class TestCircuitBreaker:
    def make(self, **kw):
        kw.setdefault("failure_threshold", 3)
        kw.setdefault("reset_timeout", 10.0)
        kw.setdefault("half_open_successes", 2)
        return CircuitBreaker("p", **kw)

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker("p", failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker("p", reset_timeout=0.0)
        with pytest.raises(ValueError):
            CircuitBreaker("p", half_open_successes=0)

    def test_opens_after_threshold_consecutive_failures(self):
        b = self.make()
        b.record_failure(1.0)
        b.record_failure(2.0)
        assert b.state == BreakerState.CLOSED
        b.record_failure(3.0)
        assert b.state == BreakerState.OPEN
        assert b.transitions == [(3.0, BreakerState.OPEN)]

    def test_success_resets_consecutive_count(self):
        b = self.make()
        b.record_failure(1.0)
        b.record_failure(2.0)
        b.record_success(3.0)
        b.record_failure(4.0)
        b.record_failure(5.0)
        assert b.state == BreakerState.CLOSED

    def test_open_denies_until_cooldown(self):
        b = self.make()
        for t in (1.0, 2.0, 3.0):
            b.record_failure(t)
        assert not b.allow(5.0)
        assert not b.would_allow(5.0)
        assert b.would_allow(13.5)
        assert b.state == BreakerState.OPEN  # would_allow never mutates

    def test_half_open_probe_then_close(self):
        b = self.make()
        for t in (1.0, 2.0, 3.0):
            b.record_failure(t)
        assert b.allow(14.0)  # cooldown expired -> half-open probe admitted
        assert b.state == BreakerState.HALF_OPEN
        b.record_success(14.5)
        assert b.state == BreakerState.HALF_OPEN  # needs 2 successes
        b.record_success(15.0)
        assert b.state == BreakerState.CLOSED
        assert [s for _, s in b.transitions] == [
            BreakerState.OPEN,
            BreakerState.HALF_OPEN,
            BreakerState.CLOSED,
        ]

    def test_half_open_failure_reopens(self):
        b = self.make()
        for t in (1.0, 2.0, 3.0):
            b.record_failure(t)
        b.allow(14.0)
        b.record_failure(14.5)
        assert b.state == BreakerState.OPEN
        assert not b.would_allow(20.0)  # cooldown restarted at 14.5
        assert b.would_allow(24.5)

    def test_failure_while_open_restarts_cooldown(self):
        b = self.make()
        for t in (1.0, 2.0, 3.0):
            b.record_failure(t)
        b.record_failure(9.0)  # forced traffic (heal) still failing
        assert not b.would_allow(13.5)
        assert b.would_allow(19.0)

    def test_success_while_open_closes_immediately(self):
        # The consistency-update replay bypasses the breaker; a confirmed
        # healthy response is decisive evidence.
        b = self.make()
        for t in (1.0, 2.0, 3.0):
            b.record_failure(t)
        b.record_success(4.0)
        assert b.state == BreakerState.CLOSED


class TestProviderHealth:
    def test_validation(self):
        with pytest.raises(ValueError):
            ProviderHealth("p", alpha=0.0)

    def test_error_rate_ewma(self):
        h = ProviderHealth("p", alpha=0.5)
        h.record_attempt(False)
        assert h.error_rate == pytest.approx(0.5)
        h.record_attempt(True)
        assert h.error_rate == pytest.approx(0.25)

    def test_slowdown_tracks_ratio(self):
        h = ProviderHealth("p", alpha=0.5)
        for _ in range(20):
            h.record_latency(observed=3.0, expected=1.0)
        assert h.slowdown == pytest.approx(3.0, rel=0.01)
        assert h.p95_slowdown() >= h.slowdown

    def test_degenerate_samples_ignored(self):
        h = ProviderHealth("p")
        h.record_latency(observed=1.0, expected=0.0)
        h.record_latency(observed=-1.0, expected=1.0)
        assert h.slowdown == 1.0

    def test_penalty_combines_signals(self):
        h = ProviderHealth("p", alpha=1.0)
        assert h.penalty() == pytest.approx(1.0)  # healthy: no penalty
        h.record_latency(observed=2.0, expected=1.0)
        h.record_attempt(False)
        assert h.penalty(error_weight=4.0) == pytest.approx(2.0 * 5.0)

    def test_p95_floor_is_one(self):
        h = ProviderHealth("p", alpha=1.0)
        h.record_latency(observed=0.5, expected=1.0)  # faster than expected
        assert h.p95_slowdown() >= 1.0


class TestResilienceConfig:
    def test_defaults_mirror_seed_behaviour(self):
        cfg = ResilienceConfig()
        # probe policy = 6 immediate attempts (the old hard-coded loop)
        assert cfg.probe_retry.max_attempts == 6
        assert cfg.probe_retry.backoff(0) == 0.0
        assert cfg.breaker_enabled
        assert not cfg.hedge_reads

    def test_factories_apply_knobs(self):
        cfg = ResilienceConfig(
            breaker_failure_threshold=5,
            breaker_reset_timeout=7.0,
            breaker_half_open_successes=3,
            health_alpha=0.4,
        )
        b = cfg.make_breaker("x")
        assert b.failure_threshold == 5
        assert b.reset_timeout == 7.0
        assert b.half_open_successes == 3
        assert cfg.make_health("x").alpha == 0.4

    def test_validation(self):
        with pytest.raises(ValueError):
            ResilienceConfig(hedge_min_delay_factor=0.5)
        with pytest.raises(ValueError):
            ResilienceConfig(hedge_quantile_dev=-1.0)
        with pytest.raises(ValueError):
            ResilienceConfig(health_error_weight=-1.0)


class TestOpDeadline:
    """``RetryPolicy.op_deadline`` bounds a request's total wall time.

    Attempt counts alone cannot: against a browned-out provider every
    failed attempt burns a (huge) RTT before the client can react, so ten
    attempts of a slow provider cost minutes.  The op deadline stops the
    retry chain once the serialized penalty reaches the budget.
    """

    def test_validation_and_default(self):
        assert RetryPolicy().op_deadline is None
        RetryPolicy(op_deadline=0.5)  # valid
        with pytest.raises(ValueError):
            RetryPolicy(op_deadline=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(op_deadline=-1.0)

    @staticmethod
    def _slow_provider_put(op_deadline):
        """One replicated put against a scripted slow provider: azure fails
        ~every request and answers 60x slower than its SLA."""
        from repro.cloud.provider import make_table2_cloud_of_clouds
        from repro.faults import FaultProfile, LatencyBrownout, TransientErrorBurst
        from repro.schemes import DuraCloudScheme
        from repro.sim.clock import SimClock

        clock = SimClock()
        profile = FaultProfile(
            [
                TransientErrorBurst(0.0, 1e6, rate=0.999),
                LatencyBrownout(0.0, 1e6, rtt_factor=60.0, bw_factor=1.0),
            ],
            seed=3,
        ).bind("azure")
        fleet = make_table2_cloud_of_clouds(clock, faults={"azure": profile})
        policy = RetryPolicy(
            max_attempts=10,
            base_delay=0.05,
            jitter=0.0,
            deadline=1e9,
            op_deadline=op_deadline,
        )
        scheme = DuraCloudScheme(
            [fleet["amazon_s3"], fleet["azure"]],
            clock,
            resilience=ResilienceConfig(retry=policy),
        )
        scheme.put("/d/slow", b"x" * 4096)
        return scheme

    def test_deadline_caps_retry_spend_against_slow_provider(self):
        unbounded = self._slow_provider_put(op_deadline=None)
        bounded = self._slow_provider_put(op_deadline=3.0)
        # strictly fewer retries burned, strictly less simulated time
        assert bounded.collector.counter("retries") < unbounded.collector.counter(
            "retries"
        )
        assert bounded.clock.now < unbounded.clock.now
        # the slow provider's missed mutation still lands in its write log
        # either way — giving up early must not drop the consistency update
        assert bounded._write_logs["azure"].has_pending(
            bounded.container, next(iter(bounded._write_logs["azure"].peek())).key
        )
        assert unbounded._write_logs["azure"]

    def test_deadline_is_deterministic(self):
        a = self._slow_provider_put(op_deadline=3.0)
        b = self._slow_provider_put(op_deadline=3.0)
        assert a.clock.now == b.clock.now
        assert a.collector.reports == b.collector.reports
