"""Tests for the experiment CLI."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_known_commands(self):
        parser = build_parser()
        for cmd in ("table1", "table2", "fig3", "fig4", "fig5", "fig6",
                    "threshold", "replication", "codec", "degraded",
                    "whatif", "availability", "lockin", "report",
                    "maintain"):
            args = parser.parse_args([cmd])
            assert args.command == cmd
            assert args.seed == 0

    def test_seed_flag(self):
        args = build_parser().parse_args(["fig5", "--seed", "7"])
        assert args.seed == 7

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestFastCommands:
    """Commands cheap enough to execute in unit tests."""

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "amazon_s3" in out
        assert "Both" in out  # aliyun's category

    def test_fig3(self, capsys):
        assert main(["fig3"]) == 0
        out = capsys.readouterr().out
        assert "Figure 3" in out
        assert "m11" in out

    def test_fig5(self, capsys):
        assert main(["fig5"]) == 0
        out = capsys.readouterr().out
        assert "4MB" in out
        assert "aliyun" in out

    def test_availability(self, capsys):
        assert main(["availability"]) == 0
        out = capsys.readouterr().out
        assert "duracloud" in out
        assert "Monte-Carlo" in out

    def test_lockin(self, capsys):
        assert main(["lockin"]) == 0
        out = capsys.readouterr().out
        assert "Vendor lock-in" in out
        assert "hyrd" in out

    def test_report(self, capsys):
        assert main(["report"]) == 0
        out = capsys.readouterr().out
        assert "Run report — scheme=hyrd" in out
        assert "Flame summary" in out
