"""Tests for the experiment CLI."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_known_commands(self):
        parser = build_parser()
        for cmd in ("table1", "table2", "fig3", "fig4", "fig5", "fig6",
                    "threshold", "replication", "codec", "degraded",
                    "whatif", "availability", "lockin", "report",
                    "maintain", "serve"):
            args = parser.parse_args([cmd])
            assert args.command == cmd
            assert args.seed == 0

    def test_seed_flag(self):
        args = build_parser().parse_args(["fig5", "--seed", "7"])
        assert args.seed == 7

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestFastCommands:
    """Commands cheap enough to execute in unit tests."""

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "amazon_s3" in out
        assert "Both" in out  # aliyun's category

    def test_fig3(self, capsys):
        assert main(["fig3"]) == 0
        out = capsys.readouterr().out
        assert "Figure 3" in out
        assert "m11" in out

    def test_fig5(self, capsys):
        assert main(["fig5"]) == 0
        out = capsys.readouterr().out
        assert "4MB" in out
        assert "aliyun" in out

    def test_availability(self, capsys):
        assert main(["availability"]) == 0
        out = capsys.readouterr().out
        assert "duracloud" in out
        assert "Monte-Carlo" in out

    def test_lockin(self, capsys):
        assert main(["lockin"]) == 0
        out = capsys.readouterr().out
        assert "Vendor lock-in" in out
        assert "hyrd" in out

    def test_report(self, capsys):
        assert main(["report"]) == 0
        out = capsys.readouterr().out
        assert "Run report — scheme=hyrd" in out
        assert "Flame summary" in out

    def test_serve(self, capsys):
        assert main(["serve", "--tenants", "3"]) == 0
        out = capsys.readouterr().out
        assert "Multi-tenant service plane — 3 tenants" in out
        assert "Jain fairness" in out
        assert "Requests admitted" in out

    def test_serve_flags_parse(self):
        args = build_parser().parse_args(
            ["serve", "--tenants", "32", "--mode", "open", "--skew", "10",
             "--queue-limit", "4", "--offered-load", "2", "--ops-quota", "1.5",
             "--frontends", "3"]
        )
        assert args.tenants == 32
        assert args.mode == "open"
        assert args.skew == 10.0
        assert args.queue_limit == 4
        assert args.offered_load == 2.0
        assert args.ops_quota == 1.5
        assert args.frontends == 3


class TestExplain:
    def test_parser_knows_explain(self):
        args = build_parser().parse_args(["explain", "--top", "3"])
        assert args.command == "explain"
        assert args.top == 3
        assert args.trace is None

    def _small_trace(self, tmp_path):
        from repro.cloud.provider import make_table2_cloud_of_clouds
        from repro.obs import RecordingTracer
        from repro.schemes import HyrdScheme
        from repro.sim.clock import SimClock

        clock = SimClock()
        fleet = make_table2_cloud_of_clouds(clock)
        tracer = RecordingTracer(clock)
        scheme = HyrdScheme(list(fleet.values()), clock, tracer=tracer)
        scheme.put("/e/small", bytes(64 * 1024))
        scheme.put("/e/large", bytes(4 * 1024 * 1024))
        scheme.get("/e/small")
        scheme.get("/e/large")
        path = tmp_path / "trace.jsonl"
        tracer.write_jsonl(path)
        return path

    def test_explain_saved_trace(self, capsys, tmp_path):
        path = self._small_trace(tmp_path)
        assert main(["explain", "--trace", str(path)]) == 0
        out = capsys.readouterr().out
        assert "Critical-path attribution" in out
        assert "transfer" in out
        assert "slow ops" in out

    def test_explain_saved_trace_respects_top(self, capsys, tmp_path):
        path = self._small_trace(tmp_path)
        assert main(["explain", "--trace", str(path), "--top", "1"]) == 0
        out = capsys.readouterr().out
        # 4 ops in the trace, but the digest keeps only the slowest one:
        # the 4 MB put, which is erasure-coded (large class).
        assert "Top-1 slow ops" in out
        digest = out.split("Top-1 slow ops", 1)[1].split("\n\n", 1)[0]
        # drop the heading remainder, the column header, and the dash rule
        rows = [l for l in digest.splitlines() if l.strip()][3:]
        assert len(rows) == 1
        assert "/e/large" in rows[0]
