"""Unit tests for the RAID5 XOR codec."""

import pytest

from repro.erasure.raid5 import Raid5Code


class TestRaid5:
    def test_properties(self):
        c = Raid5Code(3)
        assert c.n == 4
        assert c.k == 3
        assert c.parity_index == 3
        assert c.fault_tolerance == 1
        assert c.storage_overhead == pytest.approx(4 / 3)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            Raid5Code(0)

    def test_parity_is_xor(self, payload):
        data = payload(300)
        c = Raid5Code(3)
        frags = c.encode(data)
        parity = bytes(
            a ^ b ^ cc for a, b, cc in zip(frags[0], frags[1], frags[2])
        )
        assert frags[3] == parity

    def test_full_decode(self, payload):
        data = payload(1001)
        c = Raid5Code(4)
        frags = c.encode(data)
        assert c.decode({i: frags[i] for i in range(4)}, 1001) == data

    def test_decode_with_each_single_loss(self, payload):
        data = payload(777)
        c = Raid5Code(3)
        frags = c.encode(data)
        for lost in range(4):
            available = {i: f for i, f in enumerate(frags) if i != lost}
            assert c.decode(available, 777) == data

    def test_two_data_losses_rejected(self, payload):
        c = Raid5Code(3)
        frags = c.encode(payload(100))
        with pytest.raises(ValueError):
            c.decode({2: frags[2], 3: frags[3]}, 100)

    def test_reconstruct_each_fragment(self, payload):
        data = payload(512)
        c = Raid5Code(3)
        frags = c.encode(data)
        for lost in range(4):
            available = {i: f for i, f in enumerate(frags) if i != lost}
            assert c.reconstruct_fragment(available, lost, 512) == frags[lost]

    def test_reconstruct_requires_all_others(self, payload):
        c = Raid5Code(3)
        frags = c.encode(payload(100))
        with pytest.raises(ValueError):
            c.reconstruct_fragment({1: frags[1], 2: frags[2]}, 0, 100)

    def test_empty_payload(self):
        c = Raid5Code(2)
        c.encode(b"")
        assert c.decode({0: b"", 2: b""}, 0) == b""
        assert c.reconstruct_fragment({0: b"", 1: b""}, 2, 0) == b""

    def test_wrong_length_rejected(self, payload):
        c = Raid5Code(2)
        frags = c.encode(payload(100))
        with pytest.raises(ValueError):
            c.decode({0: frags[0] + b"x", 1: frags[1], 2: frags[2]}, 100)
