"""Unit tests for directory metadata groups and the client cache."""

import pytest

from repro.fs.metadata import MetadataStore, decode_group, encode_group, group_key, is_group_key
from repro.fs.namespace import FileEntry, Namespace


def _entry(path, **kw):
    defaults = dict(
        size=10,
        version=2,
        codec="raid5",
        codec_params=(("k", 3),),
        placements=(("aliyun", 0), ("azure", 1)),
        klass="small",
        created=1.5,
        modified=2.5,
        access_count=7,
    )
    defaults.update(kw)
    return FileEntry(path=path, **defaults)


class TestSerialization:
    def test_roundtrip_preserves_all_fields(self):
        entries = [_entry("/d/a"), _entry("/d/b", size=99, codec="replication")]
        decoded = decode_group(encode_group(entries))
        assert decoded == sorted(entries, key=lambda e: e.path)

    def test_deterministic_encoding(self):
        entries = [_entry("/d/b"), _entry("/d/a")]
        assert encode_group(entries) == encode_group(list(reversed(entries)))

    def test_empty_group(self):
        assert decode_group(encode_group([])) == []

    def test_corrupt_blob_rejected(self):
        with pytest.raises(ValueError):
            decode_group(b"\xff\xfe not json")

    def test_group_key(self):
        assert is_group_key(group_key("/d"))
        assert not is_group_key("/d/file")


class TestMetadataStore:
    @pytest.fixture
    def store(self):
        ns = Namespace()
        ns.upsert(_entry("/d/a"))
        ns.upsert(_entry("/d/b"))
        ns.upsert(_entry("/e/c"))
        return MetadataStore(ns, cache_capacity=2)

    def test_encode_dir(self, store):
        entries = decode_group(store.encode_dir("/d"))
        assert [e.path for e in entries] == ["/d/a", "/d/b"]

    def test_group_size(self, store):
        assert store.group_size("/d") == len(store.encode_dir("/d"))

    def test_apply_group_merges(self, store):
        blob = encode_group([_entry("/f/new")])
        store.apply_group(blob)
        assert store.namespace.get("/f/new").path == "/f/new"

    def test_cache_miss_then_hit(self, store):
        assert not store.is_cached("/d")
        store.touch("/d")
        assert store.is_cached("/d")
        assert store.hits == 1
        assert store.misses == 1

    def test_lru_eviction(self, store):
        store.touch("/a")
        store.touch("/b")
        store.touch("/c")  # capacity 2: /a evicted
        assert store.cached_dirs() == ["/b", "/c"]
        assert not store.is_cached("/a")

    def test_touch_refreshes_recency(self, store):
        store.touch("/a")
        store.touch("/b")
        store.is_cached("/a")  # refresh
        store.touch("/c")  # /b evicted, not /a
        assert store.is_cached("/a")
        assert not store.is_cached("/b")

    def test_invalidate(self, store):
        store.touch("/d")
        store.invalidate("/d")
        assert not store.is_cached("/d")

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            MetadataStore(Namespace(), cache_capacity=0)

    def test_dir_of(self, store):
        assert store.dir_of("/x/y/z.txt") == "/x/y"
