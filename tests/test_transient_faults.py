"""Tests for transient request failures and client-side retries.

Real cloud APIs fail a fraction of individual requests even when "up"
(throttling, HTTP 500s); clients retry.  The simulator injects these via
``SimulatedProvider.fault_rate`` and the scheme engine retries each request
up to ``transient_retries`` times, write-logging mutations that exhaust
their retries so consistency is still restored by the healer.
"""

import numpy as np
import pytest

from repro.cloud.errors import TransientProviderError
from repro.cloud.latency import LatencyModel
from repro.cloud.pricing import PRICE_PLANS
from repro.cloud.provider import SimulatedProvider, make_table2_cloud_of_clouds
from repro.schemes import HyrdScheme, RacsScheme, SingleCloudScheme
from repro.sim.clock import SimClock

KB = 1024


def _flaky_provider(clock, rate, seed=0):
    return SimulatedProvider(
        name="flaky",
        clock=clock,
        latency=LatencyModel(rtt=0.05, upload_bw=5e6, download_bw=5e6),
        pricing=PRICE_PLANS["aliyun"],
        fault_rate=rate,
        fault_seed=seed,
    )


class TestProviderFaultInjection:
    def test_default_rate_is_zero(self, providers):
        for p in providers.values():
            assert p.fault_rate == 0.0

    def test_rate_validation(self, clock):
        with pytest.raises(ValueError):
            _flaky_provider(clock, 1.0)
        with pytest.raises(ValueError):
            _flaky_provider(clock, -0.1)

    def test_faults_occur_at_configured_rate(self, clock):
        provider = _flaky_provider(clock, 0.3)
        provider.create("c", exist_ok=True)
        failures = 0
        for i in range(400):
            try:
                provider.put("c", f"k{i}", b"x")
            except TransientProviderError:
                failures += 1
        assert 0.2 < failures / 400 < 0.4

    def test_fault_is_not_an_outage(self, clock):
        provider = _flaky_provider(clock, 0.99, seed=1)
        assert provider.is_available()  # up, just flaky


class TestSchemeRetries:
    def test_retries_mask_moderate_flakiness(self, clock, payload):
        """At 20% request-failure rate, 2 retries make ops effectively
        reliable: a whole workload completes with correct content."""
        provider = _flaky_provider(clock, 0.2)
        scheme = SingleCloudScheme(provider, clock)
        contents = {}
        for i in range(20):
            path = f"/d/f{i}"
            contents[path] = payload(4 * KB)
            scheme.put(path, contents[path])
        scheme.heal_returned()  # replay anything that exhausted retries
        for path, data in contents.items():
            got, _ = scheme.get(path)
            assert got == data

    def test_retries_cost_extra_round_trips(self, clock, payload):
        flaky = _flaky_provider(clock, 0.35, seed=3)
        scheme_flaky = SingleCloudScheme(flaky, clock)
        clock2 = SimClock()
        clean = _flaky_provider(clock2, 0.0)
        scheme_clean = SingleCloudScheme(clean, clock2)
        data = payload(4 * KB)
        for i in range(10):
            scheme_flaky.put(f"/d/f{i}", data)
            scheme_clean.put(f"/d/f{i}", data)
        assert (
            scheme_flaky.collector.summary("put").mean
            > scheme_clean.collector.summary("put").mean
        )

    def test_exhausted_retries_are_write_logged(self, clock, payload):
        from repro.schemes.base import DataUnavailable

        # Rate high enough that some op burns all 3 attempts.
        provider = _flaky_provider(clock, 0.6, seed=7)
        scheme = SingleCloudScheme(provider, clock)
        logged_any = False
        for i in range(15):
            scheme.put(f"/d/f{i}", payload(KB))
            logged_any = logged_any or bool(scheme.pending_log("flaky"))
        assert logged_any  # at 60% fault rate some op exhausted its retries
        # Heal drains whatever was missed; afterwards all content serves.
        for _ in range(50):
            if not scheme.pending_log("flaky"):
                break
            scheme.heal_returned()
        assert not scheme.pending_log("flaky")
        for i in range(15):
            for _ in range(20):  # reads themselves may fail transiently
                try:
                    got, _ = scheme.get(f"/d/f{i}")
                    break
                except DataUnavailable:
                    continue
            assert len(got) == KB

    def test_redundant_schemes_shrug_off_flaky_provider(self, payload):
        """One persistently flaky provider: HyRD and RACS still serve
        everything correctly (reads route around failed requests)."""
        for builder in (
            lambda p, c: HyrdScheme(list(p.values()), c),
            lambda p, c: RacsScheme(list(p.values()), c),
        ):
            clock = SimClock()
            fleet = make_table2_cloud_of_clouds(clock)
            fleet["rackspace"].fault_rate = 0.3
            scheme = builder(fleet, clock)
            contents = {}
            rng = np.random.default_rng(5)
            for i in range(12):
                path = f"/d/f{i}"
                contents[path] = rng.integers(0, 256, 8 * KB, dtype=np.uint8).tobytes()
                scheme.put(path, contents[path])
            scheme.heal_returned()
            for path, data in contents.items():
                got, _ = scheme.get(path)
                assert got == data


class TestEvaluatorUnderFaults:
    def test_probing_survives_flaky_fleet(self, clock):
        from repro.core.config import HyRDConfig
        from repro.core.evaluator import CostPerformanceEvaluator

        fleet = make_table2_cloud_of_clouds(clock)
        for p in fleet.values():
            p.fault_rate = 0.15
        ev = CostPerformanceEvaluator(list(fleet.values()), HyRDConfig())
        profiles = ev.evaluate()
        assert len(profiles) == 4
        assert all(p.latency_score < float("inf") for p in profiles.values())
