"""Unit tests for the RESTful adapter layer."""

import pytest

from repro.cloud.outage import OutageWindow
from repro.cloud.rest import RestAdapter, RestRequest, RestResponse


@pytest.fixture
def adapter(providers):
    return RestAdapter(providers["amazon_s3"])


class TestRestRequest:
    def test_validation(self):
        with pytest.raises(ValueError):
            RestRequest("POST", "/c")
        with pytest.raises(ValueError):
            RestRequest("GET", "no-slash")

    def test_split_path(self):
        assert RestRequest("GET", "/c").split_path() == ("c", None)
        assert RestRequest("GET", "/c/a/b.txt").split_path() == ("c", "a/b.txt")
        assert RestRequest("GET", "/c/").split_path() == ("c", None)


class TestVerbMapping:
    def test_create_container(self, adapter):
        assert adapter.execute(RestRequest("PUT", "/bucket")).status == 201

    def test_put_get_roundtrip(self, adapter):
        adapter.execute(RestRequest("PUT", "/b"))
        put = adapter.execute(RestRequest("PUT", "/b/key", b"payload"))
        assert put.status == 200
        assert put.headers["x-version"] == "1"
        got = adapter.execute(RestRequest("GET", "/b/key"))
        assert got.ok and got.body == b"payload"

    def test_version_header_increments(self, adapter):
        adapter.execute(RestRequest("PUT", "/b"))
        adapter.execute(RestRequest("PUT", "/b/k", b"1"))
        second = adapter.execute(RestRequest("PUT", "/b/k", b"2"))
        assert second.headers["x-version"] == "2"

    def test_list(self, adapter):
        adapter.execute(RestRequest("PUT", "/b"))
        adapter.execute(RestRequest("PUT", "/b/a", b""))
        adapter.execute(RestRequest("PUT", "/b/z", b""))
        listing = adapter.execute(RestRequest("GET", "/b"))
        assert listing.body == b"a\nz"

    def test_delete(self, adapter):
        adapter.execute(RestRequest("PUT", "/b"))
        adapter.execute(RestRequest("PUT", "/b/k", b"x"))
        assert adapter.execute(RestRequest("DELETE", "/b/k")).status == 204
        assert adapter.execute(RestRequest("GET", "/b/k")).status == 404

    def test_delete_container_not_allowed(self, adapter):
        adapter.execute(RestRequest("PUT", "/b"))
        assert adapter.execute(RestRequest("DELETE", "/b")).status == 405


class TestErrorMapping:
    def test_404_on_missing(self, adapter):
        assert adapter.execute(RestRequest("GET", "/nope/key")).status == 404

    def test_409_on_duplicate_container(self, adapter):
        adapter.execute(RestRequest("PUT", "/b"))
        assert adapter.execute(RestRequest("PUT", "/b")).status == 409

    def test_503_during_outage(self, adapter, clock):
        adapter.provider.outages.add(OutageWindow(0.0))
        assert adapter.execute(RestRequest("GET", "/b/k")).status == 503

    def test_response_ok_flag(self):
        assert RestResponse(204).ok
        assert not RestResponse(404).ok
