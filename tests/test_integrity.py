"""Tests for the HAIL-style fragment-integrity layer (paper citation [8]).

Every write records per-fragment SHA-256 digests in the file's metadata;
every read verifies what the providers return.  A corrupt fragment is
treated exactly like an erased one: replicated schemes fall through to the
next copy, erasure-coded schemes reconstruct around it.
"""

import dataclasses

import pytest

from repro.schemes import (
    DepSkyCAScheme,
    DepSkyScheme,
    DuraCloudScheme,
    HyrdScheme,
    RacsScheme,
)
from repro.schemes.base import DataUnavailable

KB, MB = 1024, 1024 * 1024


def _corrupt(provider, container, key):
    """Flip the stored object's bytes behind everyone's back."""
    obj = provider.store.get(container, key)
    garbled = bytes(b ^ 0xFF for b in obj.data)
    provider.store.put(container, key, garbled, 0.0)


class TestDigestsRecorded:
    def test_every_scheme_records_digests(self, providers, clock, payload):
        schemes = [
            DuraCloudScheme([providers["amazon_s3"], providers["azure"]], clock),
            RacsScheme(list(providers.values()), clock),
        ]
        for scheme in schemes:
            scheme.put("/d/f", payload(9 * KB))
            entry = scheme.namespace.get("/d/f")
            assert len(entry.digests) == len(entry.placements)
            assert all(len(d) == 64 for d in entry.digests)

    def test_rmw_refreshes_digests(self, providers, clock, payload):
        racs = RacsScheme(list(providers.values()), clock)
        racs.put("/d/f", payload(9 * KB))
        before = racs.namespace.get("/d/f").digests
        racs.update("/d/f", 0, b"XX")
        after = racs.namespace.get("/d/f").digests
        assert before != after
        got, _ = racs.get("/d/f")  # digests verify post-update
        assert got[:2] == b"XX"


class TestReplicatedCorruptionRecovery:
    def test_duracloud_serves_from_intact_replica(self, providers, clock, payload):
        dc = DuraCloudScheme([providers["amazon_s3"], providers["azure"]], clock)
        data = payload(20 * KB)
        dc.put("/d/f", data)
        # Azure (the preferred read source) silently corrupts the object.
        _corrupt(providers["azure"], dc.container, "/d/f#v1")
        got, report = dc.get("/d/f")
        assert got == data
        assert report.degraded
        assert "amazon_s3" in report.providers

    def test_all_replicas_corrupt_raises(self, providers, clock, payload):
        dc = DuraCloudScheme([providers["amazon_s3"], providers["azure"]], clock)
        dc.put("/d/f", payload(KB))
        for name in ("amazon_s3", "azure"):
            _corrupt(providers[name], dc.container, "/d/f#v1")
        with pytest.raises(DataUnavailable, match="no intact replica"):
            dc.get("/d/f")


class TestStripedCorruptionRecovery:
    def test_racs_reconstructs_around_corrupt_fragment(
        self, providers, clock, payload
    ):
        racs = RacsScheme(list(providers.values()), clock)
        data = payload(30 * KB)
        racs.put("/d/f", data)
        entry = racs.namespace.get("/d/f")
        victim = [p for p, i in entry.placements if i == 0][0]
        _corrupt(providers[victim], racs.container, racs._fragment_key("/d/f", 0, 1))
        got, report = racs.get("/d/f")
        assert got == data
        assert report.degraded

    def test_hyrd_large_file_corruption(self, providers, clock, payload):
        hyrd = HyrdScheme(list(providers.values()), clock)
        data = payload(3 * MB)
        hyrd.put("/d/big", data)
        entry = hyrd.namespace.get("/d/big")
        victim = [p for p, i in entry.placements if i == 0][0]
        _corrupt(
            providers[victim], hyrd.container, hyrd._fragment_key("/d/big", 0, 1)
        )
        got, report = hyrd.get("/d/big")
        assert got == data
        assert report.degraded

    def test_hyrd_small_file_corruption(self, providers, clock, payload):
        hyrd = HyrdScheme(list(providers.values()), clock)
        data = payload(6 * KB)
        hyrd.put("/d/s", data)
        _corrupt(providers["aliyun"], hyrd.container, "/d/s#v1")
        got, report = hyrd.get("/d/s")
        assert got == data
        # The corrupt Aliyun fetch is still a charged request; the intact
        # Azure replica ultimately serves.
        assert "azure" in report.providers
        assert report.degraded

    def test_corruption_beyond_tolerance_raises(self, providers, clock, payload):
        racs = RacsScheme(list(providers.values()), clock)
        racs.put("/d/f", payload(30 * KB))
        entry = racs.namespace.get("/d/f")
        for idx in (0, 1):  # two corrupt fragments > RAID5 tolerance
            victim = [p for p, i in entry.placements if i == idx][0]
            _corrupt(
                providers[victim], racs.container, racs._fragment_key("/d/f", idx, 1)
            )
        with pytest.raises(DataUnavailable):
            racs.get("/d/f")


class TestQuorumAndConfidentialSchemes:
    def test_depsky_verifies_replicas(self, providers, clock, payload):
        ds = DepSkyScheme(list(providers.values()), clock)
        data = payload(10 * KB)
        ds.put("/d/f", data)
        _corrupt(providers["aliyun"], ds.container, "/d/f#v1")
        got, report = ds.get("/d/f")
        assert got == data
        assert report.degraded

    def test_depsky_ca_rejects_corrupt_bundle(self, providers, clock, payload):
        ca = DepSkyCAScheme(list(providers.values()), clock)
        data = payload(40 * KB)
        ca.put("/d/f", data)
        entry = ca.namespace.get("/d/f")
        victim = [p for p, i in entry.placements if i == 0][0]
        _corrupt(providers[victim], ca.container, ca._fragment_key("/d/f", 0, 1))
        got, _ = ca.get("/d/f")
        assert got == data

    def test_hot_copy_corruption_falls_back_to_stripe(
        self, providers, clock, payload
    ):
        from repro.core.config import HyRDConfig

        hyrd = HyrdScheme(
            list(providers.values()), clock, config=HyRDConfig(hot_file_threshold=1)
        )
        data = payload(2 * MB)
        hyrd.put("/d/big", data)
        hyrd.get("/d/big")  # triggers promotion
        (provider, version) = hyrd.hot_copies()["/d/big"]
        _corrupt(
            providers[provider], hyrd.container, hyrd._hot_key("/d/big", version)
        )
        got, _ = hyrd.get("/d/big")
        assert got == data  # verified stripe wins over the corrupt hot copy


class TestLegacyEntriesWithoutDigests:
    def test_digestless_entries_skip_verification(self, providers, clock, payload):
        """Entries written before the integrity layer (digests=()) still read."""
        dc = DuraCloudScheme([providers["amazon_s3"], providers["azure"]], clock)
        data = payload(KB)
        dc.put("/d/f", data)
        entry = dc.namespace.get("/d/f")
        dc.namespace.upsert(dataclasses.replace(entry, digests=()))
        got, _ = dc.get("/d/f")
        assert got == data
