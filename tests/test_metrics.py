"""Unit tests for latency statistics and the collector."""

import pytest

from repro.metrics.collector import LatencyCollector, OpReport
from repro.metrics.stats import LatencySummary, summarize


class TestSummarize:
    def test_empty(self):
        s = summarize([])
        assert s == LatencySummary.empty()
        assert s.count == 0

    def test_basic_stats(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        assert s.count == 4
        assert s.mean == pytest.approx(2.5)
        assert s.total == pytest.approx(10.0)
        assert s.p50 == pytest.approx(2.5)
        assert s.max == 4.0

    def test_percentile_ordering(self):
        s = summarize(list(range(100)))
        assert s.p50 <= s.p95 <= s.p99 <= s.max

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            summarize([1.0, -0.5])


class TestOpReport:
    def test_validation(self):
        with pytest.raises(ValueError):
            OpReport(op="get", path="/a", elapsed=-1.0)


class TestCollector:
    @pytest.fixture
    def collector(self):
        c = LatencyCollector()
        c.add(OpReport(op="get", path="/a", elapsed=1.0, bytes_down=10, cloud_ops=2))
        c.add(OpReport(op="get", path="/b", elapsed=3.0, degraded=True))
        c.add(OpReport(op="put", path="/c", elapsed=2.0, bytes_up=20, cloud_ops=4))
        return c

    def test_len_and_extend(self, collector):
        assert len(collector) == 3
        collector.extend([OpReport(op="stat", path="/d", elapsed=0.1)])
        assert len(collector) == 4

    def test_latencies_filters(self, collector):
        assert collector.latencies("get") == [1.0, 3.0]
        assert collector.latencies(degraded=True) == [3.0]
        assert collector.latencies("get", degraded=False) == [1.0]

    def test_summary_by_op(self, collector):
        by_op = collector.by_op()
        assert by_op["get"].count == 2
        assert by_op["put"].mean == pytest.approx(2.0)

    def test_mean_latency(self, collector):
        assert collector.mean_latency() == pytest.approx(2.0)

    def test_degraded_fraction(self, collector):
        assert collector.degraded_fraction() == pytest.approx(1 / 3)
        assert LatencyCollector().degraded_fraction() == 0.0

    def test_total_bytes_and_ops(self, collector):
        assert collector.total_bytes() == (20, 10)
        assert collector.total_cloud_ops() == 6
