"""Unit tests for latency statistics and the collector."""

import pytest

from repro.metrics.collector import LatencyCollector, OpReport
from repro.metrics.stats import LatencySummary, summarize


class TestSummarize:
    def test_empty(self):
        s = summarize([])
        assert s == LatencySummary.empty()
        assert s.count == 0

    def test_basic_stats(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        assert s.count == 4
        assert s.mean == pytest.approx(2.5)
        assert s.total == pytest.approx(10.0)
        assert s.p50 == pytest.approx(2.5)
        assert s.max == 4.0

    def test_percentile_ordering(self):
        s = summarize(list(range(100)))
        assert s.p50 <= s.p95 <= s.p99 <= s.max

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            summarize([1.0, -0.5])

    def test_single_sample_is_exact_everywhere(self):
        s = summarize([0.37])
        assert s.count == 1
        assert s.p50 == s.p95 == s.p99 == s.max == 0.37
        assert s.mean == pytest.approx(0.37)

    def test_all_ties_report_the_tied_value(self):
        s = summarize([2.0] * 25)
        assert s.p50 == s.p95 == s.p99 == s.max == 2.0
        assert s.total == pytest.approx(50.0)


class TestOpReport:
    def test_validation(self):
        with pytest.raises(ValueError):
            OpReport(op="get", path="/a", elapsed=-1.0)

    @pytest.mark.parametrize("field", ["bytes_up", "bytes_down", "cloud_ops"])
    def test_negative_count_fields_rejected(self, field):
        with pytest.raises(ValueError, match=field):
            OpReport(op="get", path="/a", elapsed=1.0, **{field: -1})


class TestCollector:
    @pytest.fixture
    def collector(self):
        c = LatencyCollector()
        c.add(OpReport(op="get", path="/a", elapsed=1.0, bytes_down=10, cloud_ops=2))
        c.add(OpReport(op="get", path="/b", elapsed=3.0, degraded=True))
        c.add(OpReport(op="put", path="/c", elapsed=2.0, bytes_up=20, cloud_ops=4))
        return c

    def test_len_and_extend(self, collector):
        assert len(collector) == 3
        collector.extend([OpReport(op="stat", path="/d", elapsed=0.1)])
        assert len(collector) == 4

    def test_extend_accepts_any_iterable(self, collector):
        collector.extend(
            OpReport(op="stat", path=f"/g{i}", elapsed=0.1) for i in range(2)
        )
        collector.extend((OpReport(op="stat", path="/t", elapsed=0.1),))
        assert len(collector) == 6

    def test_counters_reflect_registry(self, collector):
        collector.bump("retries", 2)
        collector.bump("hedged_reads")
        assert collector.counter("retries") == 2
        assert collector.counters["hedged_reads"] == 1
        # ops_total feeds automatically from add(); degraded split included.
        assert collector.registry.counter_value(
            "ops_total", op="get", degraded="true") == 1
        assert collector.registry.counter_value(
            "ops_total", op="get", degraded="false") == 1

    def test_latency_histogram_fed_on_add(self, collector):
        h = collector.registry.histogram("op_latency_seconds", op="put")
        assert h.count == 1
        assert h.summary()["max"] == 2.0

    def test_latencies_filters(self, collector):
        assert collector.latencies("get") == [1.0, 3.0]
        assert collector.latencies(degraded=True) == [3.0]
        assert collector.latencies("get", degraded=False) == [1.0]

    def test_summary_by_op(self, collector):
        by_op = collector.by_op()
        assert by_op["get"].count == 2
        assert by_op["put"].mean == pytest.approx(2.0)

    def test_mean_latency(self, collector):
        assert collector.mean_latency() == pytest.approx(2.0)

    def test_degraded_fraction(self, collector):
        assert collector.degraded_fraction() == pytest.approx(1 / 3)
        assert LatencyCollector().degraded_fraction() == 0.0

    def test_total_bytes_and_ops(self, collector):
        assert collector.total_bytes() == (20, 10)
        assert collector.total_cloud_ops() == 6
