"""Dashboard rendering: sparklines, gauges, saved-file parity, CLI wiring."""

import pytest

from repro.metrics.registry import MetricsRegistry
from repro.obs.dashboard import (
    CLEAR,
    gauge_bar,
    render_dashboard,
    render_frame,
    sparkline,
)
from repro.obs.timeseries import MetricTimeSeries, TimeSeriesSampler


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_flat_series_is_lowest_block(self):
        assert sparkline([5.0, 5.0, 5.0]) == "▁▁▁"

    def test_monotone_ramp_uses_full_range(self):
        line = sparkline([0.0, 1.0, 2.0, 3.0])
        assert line[0] == "▁"
        assert line[-1] == "█"
        assert len(line) == 4

    def test_resamples_to_width(self):
        line = sparkline(list(range(100)), width=10)
        assert len(line) == 10
        assert line[-1] == "█"  # right edge keeps the live value

    def test_short_series_not_padded(self):
        assert len(sparkline([1.0, 2.0], width=40)) == 2


class TestGaugeBar:
    def test_above_target_is_green_full(self):
        bar = gauge_bar(1.0, 0.999, width=10, color=True)
        assert bar.startswith("\x1b[32m")
        assert "█" in bar

    def test_below_target_is_red(self):
        bar = gauge_bar(0.9985, 0.999, width=10, color=True)
        assert bar.startswith("\x1b[31m")

    def test_no_color_has_no_escapes(self):
        bar = gauge_bar(0.5, 0.999, width=10, color=False)
        assert "\x1b" not in bar
        assert len(bar) == 10

    def test_target_is_marked(self):
        assert "|" in gauge_bar(0.999, 0.999, width=24, color=False)

    def test_far_below_range_is_empty_bar(self):
        bar = gauge_bar(0.0, 0.999, width=10, color=False)
        assert "█" not in bar


def storm_series():
    """One sampled storm run with SLO attached, cached per module."""
    from repro.obs import SloTracker, run_fault_storm_report

    slo = SloTracker()
    sampler = TimeSeriesSampler(cadence=30.0, slo=slo)
    run_fault_storm_report(seed=0, trace=False, slo=slo, sampler=sampler)
    return sampler.ts


@pytest.fixture(scope="module")
def storm_ts():
    return storm_series()


class TestRenderDashboard:
    def test_empty_series(self):
        assert "no samples" in render_dashboard(MetricTimeSeries())

    def test_storm_dashboard_has_all_sections(self, storm_ts):
        text = render_dashboard(storm_ts, color=False)
        assert "repro watch" in text
        assert "SLO (sliding window)" in text
        assert "Operations" in text
        assert "Providers" in text
        assert "rackspace" in text
        assert "(true " in text  # scheduled ground truth next to observed

    def test_no_color_output_is_escape_free(self, storm_ts):
        assert "\x1b" not in render_dashboard(storm_ts, color=False)

    def test_sections_degrade_without_slo(self):
        # A bare registry sampled without an SLO tracker: no SLO/provider
        # sections, but the header still renders.
        ts = MetricTimeSeries()
        reg = MetricsRegistry()
        reg.counter("retries").inc()
        ts.snapshot(reg, 1.0)
        text = render_dashboard(ts, color=False)
        assert "repro watch" in text
        assert "SLO" not in text
        assert "Providers" not in text

    def test_saved_file_renders_identically_to_live(self, storm_ts, tmp_path):
        """ISSUE acceptance: `repro watch --from` must reproduce the live
        dashboard from a saved file alone."""
        path = tmp_path / "storm-ts.jsonl"
        storm_ts.write_jsonl(path)
        loaded = MetricTimeSeries.read_jsonl(path)
        assert render_dashboard(loaded, color=False) == render_dashboard(
            storm_ts, color=False
        )

    def test_load_panel_renders_with_observatory(self):
        from repro.obs import ProviderLoadObservatory, run_fault_storm_report

        observatory = ProviderLoadObservatory()
        sampler = TimeSeriesSampler(cadence=30.0)
        run_fault_storm_report(
            seed=0, trace=False, sampler=sampler, observatory=observatory
        )
        text = render_dashboard(sampler.ts, color=False)
        assert "Provider load (observatory)" in text
        panel = text.split("Provider load (observatory)", 1)[1]
        for p in observatory.providers():
            assert p in panel
        assert "inflight" in panel and "queue" in panel and "svc" in panel

    def test_load_panel_absent_without_observatory(self, storm_ts):
        assert "Provider load (observatory)" not in render_dashboard(
            storm_ts, color=False
        )

    def test_tenant_panel_absent_without_service_plane(self, storm_ts):
        assert "Tenants (admission)" not in render_dashboard(storm_ts, color=False)

    def test_render_frame_prepends_clear(self, storm_ts):
        sampler = TimeSeriesSampler()
        sampler.ts = storm_ts
        frame = render_frame(sampler, color=False)
        assert frame.startswith(CLEAR)
        assert frame == CLEAR + render_dashboard(storm_ts, color=False)


class TestWatchCli:
    def test_watch_from_file(self, storm_ts, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "storm-ts.jsonl"
        storm_ts.write_jsonl(path)
        assert main(["watch", "--from", str(path), "--no-color"]) == 0
        out = capsys.readouterr().out
        assert "repro watch" in out
        assert "SLO (sliding window)" in out
        assert render_dashboard(storm_ts, color=False) in out

    def test_watch_live_exports_time_series(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "live-ts.jsonl"
        assert (
            main(
                [
                    "watch",
                    "--cadence",
                    "30",
                    "--ts-out",
                    str(path),
                    "--no-color",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "repro watch" in out
        ts = MetricTimeSeries.read_jsonl(path)
        assert len(ts) > 0
        # the exported file round-trips into the very dashboard just printed
        assert render_dashboard(ts, color=False) in out


def service_series(tenants: int = 3) -> MetricTimeSeries:
    """A time series carrying the service plane's admission metrics."""
    ts = MetricTimeSeries()
    reg = MetricsRegistry()
    for step in (1, 2):
        for i in range(tenants):
            tid = f"t{i}"
            reg.counter("tenant_admitted_total", tenant=tid).inc(10 * (i + 1))
            reg.gauge("tenant_queue_depth", tenant=tid).set(float(i))
        reg.counter(
            "tenant_shed_total", reason="queue_full", tenant="t0"
        ).inc(2)
        reg.gauge("admission_fairness_index").set(0.95)
        reg.gauge("admission_queued").set(3.0)
        ts.snapshot(reg, step * 30.0)
    return ts


class TestTenantPanel:
    def test_panel_renders_admission_state(self):
        text = render_dashboard(service_series(), color=False)
        assert "Tenants (admission)" in text
        panel = text.split("Tenants (admission)", 1)[1]
        assert "fairness 0.9500" in panel
        assert "queued    3" in panel
        for tid in ("t0", "t1", "t2"):
            assert tid in panel
        assert "shed" in panel and "admitted" in panel

    def test_rows_ranked_by_admitted_with_tail_summary(self):
        text = render_dashboard(service_series(tenants=12), color=False)
        panel = text.split("Tenants (admission)", 1)[1]
        # Busiest tenant (highest admitted count) leads the rows.
        rows = [ln for ln in panel.splitlines() if ln.strip().startswith("t")]
        assert rows[0].split()[0] == "t11"
        assert "… 4 more tenants" in panel

    def test_panel_is_escape_free_without_color(self):
        assert "\x1b" not in render_dashboard(service_series(), color=False)

    def test_live_drill_feeds_the_panel(self):
        """End to end: a sampled service drill renders per-tenant rows."""
        from repro.obs.timeseries import TimeSeriesSampler as _Sampler  # noqa: F401
        from repro.service import run_service_drill

        # The drill publishes through the scheme's registry; rebuild the
        # panel's input by snapshotting that registry is what `repro watch`
        # would do.  Reuse the drill's metric side effects via a fresh run.
        ts = MetricTimeSeries()
        from repro.core.config import HyRDConfig
        from repro.obs.slo import SloTracker
        from repro.schemes import HyrdScheme
        from repro.cloud.provider import make_table2_cloud_of_clouds
        from repro.service import (
            AdmissionController,
            Request,
            ServicePlane,
            TenantRegistry,
        )
        from repro.sim.clock import SimClock
        from repro.sim.events import EventLoop

        clock = SimClock()
        loop = EventLoop(clock)
        providers = make_table2_cloud_of_clouds(clock)
        scheme = HyrdScheme(
            list(providers.values()), clock, config=HyRDConfig(seed=0)
        )
        scheme.attach_slo(SloTracker())
        registry = TenantRegistry(seed=0)
        alice = registry.create("alice")
        plane = ServicePlane(scheme, loop, registry, n_frontends=1)
        plane.route(
            Request(
                tenant_id="alice",
                token=alice.token,
                kind="put",
                path="/d/x",
                size=4,
                payload=b"data",
            )
        )
        loop.run()
        ts.snapshot(scheme.registry, clock.now)
        panel = render_dashboard(ts, color=False)
        assert "Tenants (admission)" in panel
        assert "alice" in panel
