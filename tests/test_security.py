"""Unit + property tests for the confidentiality primitives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.security.cipher import KEY_BYTES, keystream_cipher, random_key
from repro.security.secret_sharing import combine_secret, share_secret


@pytest.fixture
def key(rng):
    return random_key(rng)


class TestCipher:
    def test_roundtrip(self, key, payload):
        data = payload(10_000)
        assert keystream_cipher(key, keystream_cipher(key, data)) == data

    def test_ciphertext_differs_from_plaintext(self, key, payload):
        data = payload(1000)
        assert keystream_cipher(key, data) != data

    def test_deterministic(self, key, payload):
        data = payload(100)
        assert keystream_cipher(key, data) == keystream_cipher(key, data)

    def test_key_separation(self, rng, payload):
        data = payload(100)
        a = keystream_cipher(random_key(rng), data)
        b = keystream_cipher(random_key(rng), data)
        assert a != b

    def test_empty(self, key):
        assert keystream_cipher(key, b"") == b""

    def test_bad_key_length(self):
        with pytest.raises(ValueError):
            keystream_cipher(b"short", b"data")

    def test_random_key_length(self, rng):
        assert len(random_key(rng)) == KEY_BYTES

    def test_keystream_looks_uniform(self, key):
        # Encrypting zeros exposes the raw keystream; check byte coverage.
        stream = keystream_cipher(key, b"\x00" * 65536)
        counts = np.bincount(np.frombuffer(stream, np.uint8), minlength=256)
        assert counts.min() > 0
        assert counts.max() < 2.0 * counts.mean()


class TestSecretSharing:
    def test_threshold_reconstruction(self, rng):
        secret = random_key(rng)
        shares = share_secret(secret, n=4, k=2, rng=rng)
        from itertools import combinations

        for pair in combinations(range(4), 2):
            assert combine_secret({i: shares[i] for i in pair}, k=2) == secret

    def test_below_threshold_rejected(self, rng):
        shares = share_secret(b"topsecret!", n=4, k=3, rng=rng)
        with pytest.raises(ValueError):
            combine_secret({0: shares[0], 1: shares[1]}, k=3)

    def test_single_share_is_not_the_secret(self, rng):
        secret = b"attack at dawn!!"
        shares = share_secret(secret, n=4, k=2, rng=rng)
        assert all(s != secret for s in shares)

    def test_k_equals_one_degenerates_to_copies(self, rng):
        shares = share_secret(b"public", n=3, k=1, rng=rng)
        assert all(s == b"public" for s in shares)

    def test_shares_are_randomized_per_call(self, rng):
        secret = b"same secret data"
        a = share_secret(secret, 4, 2, np.random.default_rng(1))
        b = share_secret(secret, 4, 2, np.random.default_rng(2))
        assert a != b
        # ... but both reconstruct identically.
        assert combine_secret({0: a[0], 3: a[3]}, 2) == secret
        assert combine_secret({1: b[1], 2: b[2]}, 2) == secret

    def test_empty_secret(self, rng):
        shares = share_secret(b"", 3, 2, rng=rng)
        assert combine_secret({0: shares[0], 1: shares[1]}, 2) == b""

    def test_inconsistent_lengths_rejected(self, rng):
        shares = share_secret(b"abcd", 3, 2, rng=rng)
        with pytest.raises(ValueError):
            combine_secret({0: shares[0], 1: shares[1][:-1]}, 2)

    def test_param_validation(self, rng):
        with pytest.raises(ValueError):
            share_secret(b"x", n=2, k=3, rng=rng)
        with pytest.raises(ValueError):
            share_secret(b"x", n=300, k=2, rng=rng)

    @given(
        secret=st.binary(min_size=0, max_size=64),
        n=st.integers(1, 8),
        k_offset=st.integers(0, 7),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_any_k_shares_reconstruct(self, secret, n, k_offset, seed):
        k = min(1 + k_offset, n)
        rng = np.random.default_rng(seed)
        shares = share_secret(secret, n=n, k=k, rng=rng)
        picks = list(range(n))[-k:]
        assert combine_secret({i: shares[i] for i in picks}, k=k) == secret

    def test_leakage_statistics(self, rng):
        """k-1 shares carry no information: a fixed share position looks
        uniformly random across re-sharings of the SAME secret."""
        secret = b"\x00" * 64  # worst case: all-zero secret
        first_bytes = []
        for trial in range(200):
            shares = share_secret(secret, 3, 2, np.random.default_rng(trial))
            first_bytes.extend(shares[0])
        counts = np.bincount(np.array(first_bytes, dtype=np.uint8), minlength=256)
        # Roughly uniform: no byte value wildly over-represented.
        assert counts.max() < 6 * (len(first_bytes) / 256)
