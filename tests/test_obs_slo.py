"""SLO tracker: ledgers, windowed availability, and fault-schedule agreement."""

import json
from types import SimpleNamespace

import pytest

from repro.cloud.provider import make_table2_cloud_of_clouds
from repro.faults import FaultProfile, FlappingOutage
from repro.metrics.registry import MetricsRegistry
from repro.obs.slo import IntervalLedger, SloConfig, SloTracker, op_class
from repro.sim.clock import SimClock


def ok_op(op, t, degraded=False):
    return SimpleNamespace(op=op, degraded=degraded), t


class TestOpClass:
    def test_read_write_partition(self):
        assert {op_class(o) for o in ("get", "stat", "listdir")} == {"read"}
        assert {op_class(o) for o in ("put", "update", "remove")} == {"write"}

    def test_repair_traffic_excluded(self):
        assert op_class("heal") is None
        assert op_class("recover_namespace") is None


class TestSloConfig:
    def test_defaults(self):
        cfg = SloConfig()
        assert cfg.target("read") == 0.999
        assert cfg.target("write") == 0.999

    def test_validation(self):
        with pytest.raises(ValueError):
            SloConfig(window=0.0)
        with pytest.raises(ValueError):
            SloConfig(read_target=1.0)
        with pytest.raises(ValueError):
            SloConfig(write_target=0.0)
        with pytest.raises(KeyError):
            SloConfig().target("heal")


class TestIntervalLedger:
    def test_edges_build_intervals(self):
        led = IntervalLedger()
        led.mark_down(10.0)
        assert led.down_since == 10.0
        led.mark_up(25.0)
        assert led.intervals == [(10.0, 25.0)]
        assert led.down_since is None

    def test_repeated_edges_are_idempotent(self):
        led = IntervalLedger()
        led.mark_up(1.0)  # up while up: ignored
        led.mark_down(5.0)
        led.mark_down(7.0)  # down while down: first edge wins
        led.mark_up(9.0)
        assert led.intervals == [(5.0, 9.0)]

    def test_zero_length_blip_dropped(self):
        led = IntervalLedger()
        led.mark_down(5.0)
        led.mark_up(5.0)
        assert led.intervals == []

    def test_up_before_down_rejected(self):
        led = IntervalLedger()
        led.mark_down(10.0)
        with pytest.raises(ValueError, match="precedes"):
            led.mark_up(9.0)

    def test_add_window_rejects_disorder(self):
        led = IntervalLedger()
        led.add_window(10.0, 20.0)
        with pytest.raises(ValueError):
            led.add_window(15.0, 30.0)  # overlap
        with pytest.raises(ValueError):
            led.add_window(40.0, 40.0)  # empty

    def test_downtime_includes_open_tail(self):
        led = IntervalLedger()
        led.add_window(0.0, 10.0)
        led.mark_down(50.0)
        assert led.downtime(60.0) == 20.0

    def test_mttr_mean_of_closed_intervals(self):
        led = IntervalLedger()
        assert led.mttr() is None
        led.add_window(0.0, 10.0)
        led.add_window(100.0, 130.0)
        assert led.mttr() == 20.0

    def test_mtbf_needs_two_failures(self):
        led = IntervalLedger()
        led.add_window(0.0, 10.0)
        assert led.mtbf() is None
        led.add_window(70.0, 90.0)
        assert led.mtbf() == 60.0  # gap 10 -> 70

    def test_mtbf_counts_open_interval_start(self):
        led = IntervalLedger()
        led.add_window(0.0, 10.0)
        led.mark_down(40.0)  # second failure, still ongoing
        assert led.mtbf() == 30.0


class TestSlidingWindow:
    def make(self, window=100.0):
        return SloTracker(SloConfig(window=window, read_target=0.9, write_target=0.9))

    def test_availability_none_without_traffic(self):
        slo = self.make()
        assert slo.availability("read", 50.0) is None
        assert slo.error_budget_burn("read", 50.0) is None
        assert slo.degraded_read_fraction(50.0) is None

    def test_availability_and_burn(self):
        slo = self.make()
        for t in range(8):
            slo.record_op(*ok_op("get", float(t)))
        slo.record_failure("get", 8.0)
        slo.record_failure("get", 9.0)
        assert slo.availability("read", 10.0) == 0.8
        # unavailability 0.2 against a 0.1 budget: burning double speed
        assert slo.error_budget_burn("read", 10.0) == pytest.approx(2.0)

    def test_classes_are_independent(self):
        slo = self.make()
        slo.record_op(*ok_op("get", 1.0))
        slo.record_failure("put", 2.0)
        assert slo.availability("read", 3.0) == 1.0
        assert slo.availability("write", 3.0) == 0.0

    def test_window_eviction(self):
        slo = self.make(window=100.0)
        slo.record_failure("get", 0.0)
        for t in (50.0, 120.0):
            slo.record_op(*ok_op("get", t))
        # the t=0 failure has aged out of [20, 120]
        assert slo.availability("read", 120.0) == 1.0
        assert len(slo.window_ops(120.0)) == 2

    def test_degraded_read_fraction(self):
        slo = self.make()
        slo.record_op(*ok_op("get", 1.0))
        slo.record_op(*ok_op("get", 2.0, degraded=True))
        slo.record_failure("get", 3.0)  # failures are not "degraded reads"
        assert slo.degraded_read_fraction(4.0) == 0.5

    def test_repair_ops_do_not_count(self):
        slo = self.make()
        slo.record_op(*ok_op("heal", 1.0))
        slo.record_failure("heal", 2.0)
        assert slo.availability("read", 3.0) is None
        assert slo.availability("write", 3.0) is None

    def test_breaker_transitions_feed_observed_ledger(self):
        slo = self.make()
        slo.on_breaker_transition("azure", "open", 10.0)
        slo.on_breaker_transition("azure", "half_open", 15.0)  # not an edge
        slo.on_breaker_transition("azure", "closed", 20.0)
        assert slo.provider("azure").observed.intervals == [(10.0, 20.0)]

    def test_publish_sets_gauges_and_summary_is_json_safe(self):
        slo = self.make()
        reg = MetricsRegistry()
        slo.bind(reg, SimpleNamespace(now=10.0))
        slo.record_op(*ok_op("get", 1.0))
        slo.record_failure("put", 2.0)
        slo.on_breaker_transition("azure", "open", 3.0)
        slo.publish(10.0)
        assert reg.gauge("slo_read_availability").value == 1.0
        assert reg.gauge("slo_write_availability").value == 0.0
        assert reg.gauge("slo_window_ops", op_class="read").value == 1
        assert (
            reg.gauge(
                "slo_provider_downtime_seconds", provider="azure", feed="observed"
            ).value
            == 7.0
        )
        summary = slo.summary(10.0)
        json.dumps(summary)  # must serialize without help
        assert summary["read"]["availability"] == 1.0
        assert summary["providers"]["azure"]["observed"]["downtime"] == 7.0

    def test_publish_requires_bind(self):
        with pytest.raises(RuntimeError, match="not bound"):
            self.make().publish(1.0)


class TestScheduledGroundTruth:
    """ISSUE satellite: observed MTBF/MTTR from a scripted faults profile must
    match the profile's scheduled windows *exactly* (via the ground-truth
    feed — the breaker feed necessarily lags and gets tolerance instead)."""

    def test_flapper_schedule_matches_exactly(self):
        clock = SimClock()
        fleet = make_table2_cloud_of_clouds(clock)
        azure = fleet["azure"]
        azure.faults = FaultProfile(
            [FlappingOutage(100.0, 580.0, period=120.0, downtime=40.0)]
        ).bind("azure")

        assert azure.scheduled_downtime(0.0, 600.0) == [
            (100.0, 140.0),
            (220.0, 260.0),
            (340.0, 380.0),
            (460.0, 500.0),
        ]

        slo = SloTracker()
        slo.ingest_ground_truth([azure], 0.0, 600.0)
        ledger = slo.provider("azure").scheduled
        assert len(ledger) == 4
        assert ledger.mttr() == 40.0  # exactly the scripted downtime
        assert ledger.mtbf() == 80.0  # exactly period - downtime
        assert ledger.downtime(600.0) == 160.0

    def test_schedule_clips_to_queried_range(self):
        clock = SimClock()
        fleet = make_table2_cloud_of_clouds(clock)
        azure = fleet["azure"]
        azure.faults = FaultProfile(
            [FlappingOutage(100.0, 580.0, period=120.0, downtime=40.0)]
        ).bind("azure")
        assert azure.scheduled_downtime(120.0, 240.0) == [
            (120.0, 140.0),
            (220.0, 240.0),
        ]

    def test_is_out_agrees_with_windows(self):
        flapper = FlappingOutage(100.0, 580.0, period=120.0, downtime=40.0)
        windows = flapper.downtime_windows(0.0, 600.0)
        for t in range(0, 600):
            in_window = any(a <= t < b for a, b in windows)
            assert flapper.is_out(float(t)) == in_window, t


class TestStormIntegration:
    """End-to-end through the canonical fault-storm run."""

    @pytest.fixture(scope="class")
    def storm(self):
        from repro.obs import TimeSeriesSampler, run_fault_storm_report

        slo = SloTracker()
        sampler = TimeSeriesSampler(cadence=30.0, slo=slo)
        report, _ = run_fault_storm_report(
            seed=0, trace=False, slo=slo, sampler=sampler
        )
        return report, slo, sampler

    def test_user_facing_traffic_was_recorded(self, storm):
        report, slo, _ = storm
        now = slo.clock.now
        assert slo.availability("read", now) is not None
        assert slo.availability("write", now) is not None

    def test_observed_downtime_within_scheduled(self, storm):
        """The breaker view trips after the true outage begins and re-closes
        after it ends, so observed downtime approximates — and never wildly
        exceeds — the injected schedule."""
        _, slo, _ = storm
        now = slo.clock.now
        sched = slo.provider("rackspace").scheduled
        obs = slo.provider("rackspace").observed
        assert sched.downtime(now) > 0.0  # the storm's flapper really fired
        assert len(obs) >= 1  # and the breaker saw it
        for a, b in obs.intervals:
            # every observed interval overlaps some true outage window
            assert any(a < wb and b > wa for wa, wb in sched.intervals), (
                (a, b),
                sched.intervals,
            )

    def test_observed_mttr_close_to_scheduled(self, storm):
        _, slo, _ = storm
        sched = slo.provider("rackspace").scheduled
        obs = slo.provider("rackspace").observed
        assert sched.mttr() == 40.0  # ground truth is exact
        assert obs.mttr() == pytest.approx(40.0, rel=0.25)

    def test_slo_gauges_reached_the_time_series(self, storm):
        _, _, sampler = storm
        ids = sampler.ts.series_ids()
        assert "slo_read_availability" in ids
        assert "slo_write_availability" in ids
        assert any(i.startswith("slo_provider_downtime_seconds") for i in ids)
