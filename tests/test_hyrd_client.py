"""Unit + behaviour tests for the HyRD client itself."""

import pytest

from repro.cloud.outage import OutageWindow
from repro.core.config import MB, HyRDConfig
from repro.core.hyrd import HyRDClient


@pytest.fixture
def hyrd(providers, clock):
    return HyRDClient(list(providers.values()), clock)


class TestHybridPlacement:
    def test_small_files_replicated_on_perf_providers(self, hyrd, payload):
        hyrd.put("/d/small.txt", payload(4096))
        entry = hyrd.namespace.get("/d/small.txt")
        assert entry.codec == "replication"
        assert entry.klass == "small"
        assert set(entry.providers) == {"aliyun", "azure"}

    def test_large_files_striped_on_cost_providers(self, hyrd, payload):
        hyrd.put("/d/big.bin", payload(3 * MB))
        entry = hyrd.namespace.get("/d/big.bin")
        assert entry.codec == "raid5"
        assert entry.klass == "large"
        assert set(entry.providers) == {"rackspace", "aliyun", "amazon_s3"}

    def test_threshold_is_configurable(self, providers, clock, payload):
        hyrd = HyRDClient(
            list(providers.values()), clock, config=HyRDConfig(size_threshold=1024)
        )
        hyrd.put("/d/f", payload(2048))
        assert hyrd.namespace.get("/d/f").codec == "raid5"

    def test_metadata_replicated_on_perf_providers(self, hyrd, providers, payload):
        hyrd.put("/d/a", payload(100))
        for name in ("aliyun", "azure"):
            assert providers[name].store.has(hyrd.container, "__meta__/d")
        for name in ("amazon_s3", "rackspace"):
            assert not providers[name].store.has(hyrd.container, "__meta__/d")

    def test_space_overhead_between_racs_and_duracloud(self, hyrd, payload):
        hyrd.put("/d/big", payload(6 * MB))
        hyrd.put("/d/small", payload(64 * 1024))
        overhead = hyrd.space_overhead()
        assert 1.3 < overhead < 1.7  # mostly RAID5(2+1) = 1.5 on large bytes

    def test_roundtrips(self, hyrd, payload):
        small, large = payload(10_000), payload(2 * MB)
        hyrd.put("/d/s", small)
        hyrd.put("/d/l", large)
        assert hyrd.get("/d/s")[0] == small
        assert hyrd.get("/d/l")[0] == large


class TestReclassification:
    def test_small_growing_past_threshold_migrates(self, hyrd, payload):
        hyrd.put("/d/f", payload(900 * 1024))
        assert hyrd.namespace.get("/d/f").codec == "replication"
        hyrd.update("/d/f", 900 * 1024, payload(200 * 1024))
        entry = hyrd.namespace.get("/d/f")
        assert entry.codec == "raid5"
        got, _ = hyrd.get("/d/f")
        assert len(got) == 1100 * 1024

    def test_shrinking_overwrite_migrates_back(self, hyrd, payload):
        hyrd.put("/d/f", payload(2 * MB))
        hyrd.put("/d/f", payload(1000))
        assert hyrd.namespace.get("/d/f").codec == "replication"

    def test_old_fragments_garbage_collected_on_migration(
        self, hyrd, providers, payload
    ):
        hyrd.put("/d/f", payload(2 * MB))
        hyrd.put("/d/f", payload(1000))
        # rackspace held a stripe fragment of v1; it must be gone.
        keys = providers["rackspace"].store.list(hyrd.container)
        assert not any(k.startswith("/d/f#") for k in keys)


class TestUpdates:
    def test_small_update_is_cheap_reput(self, hyrd, payload):
        hyrd.put("/d/s", payload(8192))
        report = hyrd.update("/d/s", 100, b"x" * 100)
        # 2 replica puts + 2 old-version removes + 2 metadata puts; crucially
        # NO reads (the erasure-code write-amplification does not apply).
        assert report.cloud_ops == 6
        assert report.bytes_down == 0

    def test_large_inplace_update_is_rmw(self, hyrd, payload):
        data = payload(3 * MB)
        hyrd.put("/d/l", data)
        report = hyrd.update("/d/l", 100, b"y" * 100)
        # RAID5(2+1): 1 data read + 1 parity read + 2 writes + 2 meta puts.
        assert report.cloud_ops == 6
        assert report.bytes_down > 0  # the RMW reads
        got, _ = hyrd.get("/d/l")
        assert got[100:200] == b"y" * 100


class TestOutageBehaviour:
    def test_small_read_unaffected_by_replica_outage(
        self, hyrd, providers, clock, payload
    ):
        data = payload(4096)
        hyrd.put("/d/s", data)
        providers["azure"].outages.add(OutageWindow(clock.now, clock.now + 3600))
        got, report = hyrd.get("/d/s")
        assert got == data
        # aliyun replica serves; no degradation flag since aliyun was the
        # preferred replica anyway.
        assert report.providers == ("aliyun",)

    def test_small_read_degraded_when_fast_replica_out(
        self, hyrd, providers, clock, payload
    ):
        data = payload(4096)
        hyrd.put("/d/s", data)
        providers["aliyun"].outages.add(OutageWindow(clock.now, clock.now + 3600))
        got, report = hyrd.get("/d/s")
        assert got == data
        assert report.degraded
        assert report.providers == ("azure",)

    def test_large_degraded_read_reconstructs(self, hyrd, providers, clock, payload):
        data = payload(4 * MB)
        hyrd.put("/d/l", data)
        providers["rackspace"].outages.add(OutageWindow(clock.now, clock.now + 3600))
        got, report = hyrd.get("/d/l")
        assert got == data
        assert report.degraded

    def test_consistency_update_after_outage(self, hyrd, providers, clock, payload):
        window = OutageWindow(clock.now, clock.now + 3600)
        providers["azure"].outages.add(window)
        data = payload(4096)
        hyrd.put("/d/s", data)
        assert len(hyrd.pending_log("azure")) > 0
        clock.advance_to(window.end)
        hyrd.heal_returned()
        assert len(hyrd.pending_log("azure")) == 0
        assert providers["azure"].store.get(hyrd.container, "/d/s#v1").data == data


class TestHotPromotion:
    def test_promotion_after_threshold_reads(self, providers, clock, payload):
        hyrd = HyRDClient(
            list(providers.values()), clock, config=HyRDConfig(hot_file_threshold=3)
        )
        data = payload(3 * MB)
        hyrd.put("/d/l", data)
        for _ in range(3):
            got, _ = hyrd.get("/d/l")
            assert got == data
        assert "/d/l" in hyrd.hot_copies()
        provider, version = hyrd.hot_copies()["/d/l"]
        assert provider == "aliyun"
        # The hot copy object physically exists.
        assert providers["aliyun"].store.has(hyrd.container, f"/d/l#hot.v{version}")

    def test_promotion_disabled_by_default_threshold_zero(
        self, providers, clock, payload
    ):
        hyrd = HyRDClient(
            list(providers.values()), clock, config=HyRDConfig(hot_file_threshold=0)
        )
        hyrd.put("/d/l", payload(2 * MB))
        for _ in range(10):
            hyrd.get("/d/l")
        assert hyrd.hot_copies() == {}

    def test_promotion_reports_separately(self, providers, clock, payload):
        hyrd = HyRDClient(
            list(providers.values()), clock, config=HyRDConfig(hot_file_threshold=1)
        )
        hyrd.put("/d/l", payload(2 * MB))
        hyrd.get("/d/l")
        ops = [r.op for r in hyrd.collector.reports]
        assert "promote" in ops

    def test_hot_copy_invalidated_on_overwrite(self, providers, clock, payload):
        hyrd = HyRDClient(
            list(providers.values()), clock, config=HyRDConfig(hot_file_threshold=1)
        )
        hyrd.put("/d/l", payload(2 * MB))
        hyrd.get("/d/l")
        assert hyrd.hot_copies()
        hyrd.put("/d/l", payload(2 * MB))
        assert hyrd.hot_copies() == {}

    def test_hot_copy_served_and_correct(self, providers, clock, payload):
        hyrd = HyRDClient(
            list(providers.values()), clock, config=HyRDConfig(hot_file_threshold=1)
        )
        data = payload(2 * MB)
        hyrd.put("/d/l", data)
        hyrd.get("/d/l")  # triggers promotion
        got, report = hyrd.get("/d/l")  # may serve from the hot copy
        assert got == data


class TestMonitorIntegration:
    def test_monitor_sees_all_classes(self, hyrd, payload):
        from repro.core.monitor import FileClass

        hyrd.put("/d/s", payload(100))
        hyrd.put("/d/l", payload(2 * MB))
        counts = hyrd.monitor.stats.counts
        assert counts[FileClass.SMALL] == 1
        assert counts[FileClass.LARGE] == 1
        assert counts[FileClass.METADATA] >= 2  # write-throughs
