"""Unit tests for the FMSR regenerating codec (NCCloud)."""

from itertools import combinations

import numpy as np
import pytest

from repro.erasure.fmsr import FMSRCode


class TestConstruction:
    def test_default_nccloud_params(self):
        c = FMSRCode(4)
        assert c.n == 4
        assert c.k == 2
        assert c.chunks_per_node == 2
        assert c.repair_traffic_ratio == pytest.approx(0.75)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            FMSRCode(2, 2)
        with pytest.raises(ValueError):
            FMSRCode(3, 0)

    def test_ecm_shape_and_read_only(self):
        c = FMSRCode(4)
        assert c.ecm.shape == (8, 4)
        with pytest.raises(ValueError):
            c.ecm[0, 0] = 1

    def test_bad_ecm_rejected(self):
        singular = np.zeros((8, 4), dtype=np.uint8)
        with pytest.raises(ValueError):
            FMSRCode(4, ecm=singular)
        with pytest.raises(ValueError):
            FMSRCode(4, ecm=np.zeros((3, 3), dtype=np.uint8))

    def test_deterministic_for_seed(self):
        a = FMSRCode(4, seed=5)
        b = FMSRCode(4, seed=5)
        assert np.array_equal(a.ecm, b.ecm)


class TestRoundTrip:
    def test_any_k_nodes_decode(self, payload):
        data = payload(4000)
        c = FMSRCode(4)
        frags = c.encode(data)
        assert len(frags) == 4
        for subset in combinations(range(4), 2):
            assert c.decode({i: frags[i] for i in subset}, 4000) == data

    def test_n5_k3(self, payload):
        data = payload(901)
        c = FMSRCode(5, 3)
        frags = c.encode(data)
        for subset in combinations(range(5), 3):
            assert c.decode({i: frags[i] for i in subset}, 901) == data

    def test_fragment_size(self):
        c = FMSRCode(4)
        # 4 native chunks of ceil(1000/4) = 250; 2 chunks per node.
        assert c.fragment_size(1000) == 500

    def test_empty_payload(self):
        c = FMSRCode(4)
        frags = c.encode(b"")
        assert all(f == b"" for f in frags)
        assert c.decode({0: b"", 2: b""}, 0) == b""

    def test_wrong_fragment_length(self, payload):
        c = FMSRCode(4)
        frags = c.encode(payload(100))
        with pytest.raises(ValueError):
            c.decode({0: frags[0][:-1], 1: frags[1]}, 100)


class TestEncodeViews:
    """Regression: FMSRCode used to inherit the copying ``encode_views``
    fallback from the ABC, so FMSR writes silently missed the zero-copy
    path every other codec took."""

    def test_override_exists(self):
        assert "encode_views" in FMSRCode.__dict__

    def test_views_equal_encode_bytes(self, payload):
        c = FMSRCode(4)
        for size in (0, 1, 7, 4096, 100_001):
            data = payload(size)
            views = c.encode_views(data)
            assert [bytes(v) for v in views] == c.encode(data)

    def test_views_are_zero_copy_and_flat(self, payload):
        c = FMSRCode(4)
        views = c.encode_views(payload(10_000))
        assert all(isinstance(v, memoryview) for v in views)
        # 1-D views: len() must count bytes, not chunk rows.
        assert all(len(v) == c.fragment_size(10_000) for v in views)
        # All node fragments alias one coded-matrix allocation: no two
        # separately-copied buffers, just adjacent windows of one matrix.
        arrays = [np.frombuffer(v, dtype=np.uint8) for v in views]
        merged = np.concatenate(arrays)
        whole = np.frombuffer(memoryview(views[0].obj.base).cast("B"), dtype=np.uint8)
        assert np.array_equal(merged, whole)
        assert all(np.shares_memory(a, whole) for a in arrays)


class TestFunctionalRepair:
    def test_repair_preserves_decodability(self, payload):
        data = payload(2048)
        c = FMSRCode(4)
        frags = list(c.encode(data))
        survivors = {0: frags[0], 2: frags[2], 3: frags[3]}
        new_frag, c2 = c.repair(survivors, failed=1, size=2048)
        frags[1] = new_frag
        for subset in combinations(range(4), 2):
            assert c2.decode({i: frags[i] for i in subset}, 2048) == data

    def test_repair_changes_ecm_only_for_failed_node(self, payload):
        c = FMSRCode(4)
        frags = c.encode(payload(512))
        _, c2 = c.repair({0: frags[0], 1: frags[1], 3: frags[3]}, failed=2, size=512)
        assert np.array_equal(c.ecm[:4], c2.ecm[:4])
        assert np.array_equal(c.ecm[6:], c2.ecm[6:])
        assert not np.array_equal(c.ecm[4:6], c2.ecm[4:6])

    def test_original_codec_untouched(self, payload):
        c = FMSRCode(4)
        before = c.ecm.copy()
        frags = c.encode(payload(256))
        c.repair({0: frags[0], 1: frags[1], 2: frags[2]}, failed=3, size=256)
        assert np.array_equal(c.ecm, before)

    def test_repeated_repairs_stay_mds(self, payload):
        data = payload(1200)
        c = FMSRCode(4)
        frags = list(c.encode(data))
        for failed in (0, 1, 2, 3, 0, 2):
            survivors = {i: frags[i] for i in range(4) if i != failed}
            new_frag, c = c.repair(survivors, failed=failed, size=1200)
            frags[failed] = new_frag
        for subset in combinations(range(4), 2):
            assert c.decode({i: frags[i] for i in subset}, 1200) == data

    def test_repair_requires_all_survivors(self, payload):
        c = FMSRCode(4)
        frags = c.encode(payload(100))
        with pytest.raises(ValueError):
            c.repair({0: frags[0], 1: frags[1]}, failed=3, size=100)

    def test_repair_invalid_index(self, payload):
        c = FMSRCode(4)
        frags = c.encode(payload(100))
        with pytest.raises(ValueError):
            c.repair({i: frags[i] for i in range(3)}, failed=7, size=100)
