"""Property-based tests: erasure-codec invariants under arbitrary inputs.

The central MDS property — *any k fragments reconstruct the exact payload* —
is exercised with hypothesis-generated payloads, parameters, and erasure
patterns for every codec in the registry.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.erasure.fmsr import FMSRCode
from repro.erasure.galois import MUL_TABLE, gf_inv, gf_mul
from repro.erasure.raid5 import Raid5Code
from repro.erasure.reed_solomon import ReedSolomonCode
from repro.erasure.replication import ReplicationCode
from repro.erasure.striping import join_shards, split_shards

payloads = st.binary(min_size=0, max_size=4096)


@st.composite
def rs_case(draw):
    k = draw(st.integers(1, 6))
    m = draw(st.integers(0, 4))
    data = draw(payloads)
    n = k + m
    subset = draw(st.permutations(range(n))) if n else []
    return k, m, data, tuple(subset[:k])


class TestStripingProperties:
    @given(data=payloads, k=st.integers(1, 16))
    def test_split_join_identity(self, data, k):
        assert join_shards(split_shards(data, k), len(data)) == data

    @given(data=payloads, k=st.integers(1, 16))
    def test_shards_equal_length(self, data, k):
        shards = split_shards(data, k)
        assert shards.shape[0] == k
        assert shards.shape[1] * k >= len(data)


class TestGaloisProperties:
    @given(st.integers(0, 255), st.integers(0, 255), st.integers(0, 255))
    def test_mul_associative(self, a, b, c):
        assert gf_mul(gf_mul(a, b), c) == gf_mul(a, gf_mul(b, c))

    @given(st.integers(0, 255), st.integers(0, 255), st.integers(0, 255))
    def test_distributive(self, a, b, c):
        assert gf_mul(a, b ^ c) == gf_mul(a, b) ^ gf_mul(a, c)

    @given(st.integers(1, 255))
    def test_inverse_involution(self, a):
        assert int(gf_inv(int(gf_inv(a)))) == a

    @given(st.integers(0, 255))
    def test_mul_table_row_is_permutation_for_nonzero(self, a):
        row = MUL_TABLE[a]
        if a == 0:
            assert np.all(row == 0)
        else:
            assert len(set(row.tolist())) == 256


class TestReedSolomonProperties:
    @given(case=rs_case())
    @settings(max_examples=40, deadline=None)
    def test_any_k_fragments_decode(self, case):
        k, m, data, subset = case
        rs = ReedSolomonCode(k, m)
        frags = rs.encode(data)
        available = {i: frags[i] for i in subset}
        assert rs.decode(available, len(data)) == data

    @given(data=payloads, k=st.integers(1, 5), m=st.integers(1, 3))
    @settings(max_examples=30, deadline=None)
    def test_reconstruction_matches_encode(self, data, k, m):
        rs = ReedSolomonCode(k, m)
        frags = rs.encode(data)
        lost = (k + m) // 2
        available = {i: f for i, f in enumerate(frags) if i != lost}
        assert rs.reconstruct_fragment(available, lost, len(data)) == frags[lost]

    @given(data=payloads, k=st.integers(1, 6))
    @settings(max_examples=30, deadline=None)
    def test_fragment_sizes_uniform(self, data, k):
        rs = ReedSolomonCode(k, 2)
        frags = rs.encode(data)
        assert len({len(f) for f in frags}) == 1
        assert len(frags[0]) == rs.fragment_size(len(data))


class TestRaid5Properties:
    @given(data=payloads, k=st.integers(1, 8), lost=st.integers(0, 8))
    @settings(max_examples=50, deadline=None)
    def test_single_erasure_always_recoverable(self, data, k, lost):
        lost = lost % (k + 1)
        c = Raid5Code(k)
        frags = c.encode(data)
        available = {i: f for i, f in enumerate(frags) if i != lost}
        assert c.decode(available, len(data)) == data

    @given(data=payloads, k=st.integers(1, 8))
    @settings(max_examples=30, deadline=None)
    def test_matches_rs_data_fragments(self, data, k):
        """RAID5's data half must agree with systematic RS(k, 1)."""
        raid = Raid5Code(k)
        rs = ReedSolomonCode(k, 1)
        assert raid.encode(data)[:k] == rs.encode(data)[:k]


class TestFMSRProperties:
    @given(
        data=st.binary(min_size=0, max_size=1024),
        seed=st.integers(0, 2**16),
        failed=st.integers(0, 3),
    )
    @settings(max_examples=15, deadline=None)
    def test_repair_preserves_mds(self, data, seed, failed):
        c = FMSRCode(4, seed=seed)
        frags = list(c.encode(data))
        survivors = {i: frags[i] for i in range(4) if i != failed}
        new_frag, c2 = c.repair(survivors, failed, len(data))
        frags[failed] = new_frag
        from itertools import combinations

        for subset in combinations(range(4), 2):
            assert c2.decode({i: frags[i] for i in subset}, len(data)) == data


class TestReplicationProperties:
    @given(data=payloads, n=st.integers(1, 6))
    def test_every_replica_decodes(self, data, n):
        c = ReplicationCode(n)
        frags = c.encode(data)
        for i in range(n):
            assert c.decode({i: frags[i]}, len(data)) == data


class TestCrossCodecInvariants:
    @given(data=payloads)
    @settings(max_examples=25, deadline=None)
    def test_storage_overhead_accounting(self, data):
        """Sum of fragment bytes ~= overhead * payload (up to padding)."""
        for codec in (ReedSolomonCode(3, 2), Raid5Code(3), FMSRCode(4), ReplicationCode(2)):
            frags = codec.encode(data)
            total = sum(len(f) for f in frags)
            if data:
                assert total >= codec.storage_overhead * len(data) - codec.n * codec.n
                assert total <= codec.storage_overhead * len(data) + codec.n * codec.n
