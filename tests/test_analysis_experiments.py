"""Tests for the experiment runners (small configurations).

These assert the paper's *shapes* on reduced workloads so the test suite
stays fast; the full-size runs live in ``benchmarks/``.
"""

import pytest

from repro.analysis.experiments import (
    default_ia_config,
    default_postmark_config,
    run_fig3,
    run_fig4,
    run_fig5,
    run_fig6,
    run_table1,
    run_table2,
)
from repro.workloads.filesizes import MediaLibraryFileSizes
from repro.workloads.ia_trace import IATraceConfig
from repro.workloads.postmark import PostMarkConfig

KB, MB = 1024, 1024 * 1024


# Trimmed-but-faithful configurations: the paper's shapes depend on the
# 100 MB file tail (Fig. 6: DuraCloud's double-write penalty) and on twelve
# months of storage accumulation (Fig. 4: DuraCloud's replication bill), so
# we shrink op *counts*, not the workload's shape.
@pytest.fixture(scope="module")
def small_pm():
    return PostMarkConfig(file_pool=25, transactions=100, size_hi=100 * MB)


@pytest.fixture(scope="module")
def small_ia():
    return IATraceConfig(
        months=12, writes_per_month=8, sizes=MediaLibraryFileSizes(scale=0.125)
    )


@pytest.fixture(scope="module")
def fig6(small_pm):
    return run_fig6(seed=1, config=small_pm)


@pytest.fixture(scope="module")
def fig4(small_ia):
    return run_fig4(seed=1, config=small_ia)


class TestFig3:
    def test_statistics(self):
        trace = run_fig3(seed=0)
        assert trace.total_read_to_write_bytes == pytest.approx(2.1, rel=0.06)
        assert trace.total_read_to_write_requests == pytest.approx(3.5, rel=0.06)
        assert len(trace.stats) == 12


class TestFig5:
    def test_aliyun_fastest_everywhere(self):
        res = run_fig5(seed=0)
        for i in range(len(res.sizes)):
            others = [res.read[p][i] for p in res.read if p != "aliyun"]
            assert res.read["aliyun"][i] <= min(others)

    def test_latency_monotone_in_size(self):
        # Enough repeats to average the lognormal jitter out of the
        # RTT-dominated small sizes.
        res = run_fig5(seed=0, repeats=15)
        for series in list(res.read.values()) + list(res.write.values()):
            assert all(b >= a * 0.9 for a, b in zip(series, series[1:]))

    def test_knee_justifies_1mb_threshold(self):
        """1 MB -> 4 MB latency jump is disproportionate (>2x) everywhere."""
        res = run_fig5(seed=0)
        for provider in res.read:
            assert res.knee_ratio(provider) > 2.0

    def test_small_sizes_rtt_bound(self):
        res = run_fig5(seed=0, sizes=[4 * KB, 16 * KB, 1 * MB, 4 * MB])
        # At 4 KB vs 16 KB latency barely moves (RTT dominates).
        for provider in res.read:
            assert res.read[provider][1] < res.read[provider][0] * 1.6


class TestFig6Shape:
    def test_hyrd_best_cloud_of_clouds_normal(self, fig6):
        assert fig6.normal["hyrd"] < fig6.normal["racs"]
        assert fig6.normal["hyrd"] < fig6.normal["duracloud"]

    def test_hyrd_improvements_in_paper_ballpark(self, fig6):
        # Paper: 58.7% vs DuraCloud, 34.8% vs RACS; we assert wide windows.
        assert 0.25 <= fig6.improvement("hyrd", "duracloud") <= 0.75
        assert 0.10 <= fig6.improvement("hyrd", "racs") <= 0.60

    def test_hyrd_best_during_outage(self, fig6):
        assert fig6.outage["hyrd"] < fig6.outage["racs"]
        assert fig6.outage["hyrd"] < fig6.outage["duracloud"]

    def test_duracloud_improves_during_outage(self, fig6):
        """Paper: 'the access latency of DuraCloud is better than that in
        the normal state since no double writes or updates are performed'."""
        assert fig6.outage["duracloud"] < fig6.normal["duracloud"] * 1.05

    def test_hyrd_barely_affected_by_outage(self, fig6):
        assert fig6.outage["hyrd"] < fig6.normal["hyrd"] * 1.25

    def test_normalization_baseline_is_one(self, fig6):
        assert fig6.normalized()["amazon_s3"] == pytest.approx(1.0)

    def test_racs_degrades_during_outage(self, fig6):
        assert fig6.outage["racs"] > fig6.normal["racs"] * 0.95


class TestFig4Shape:
    def test_duracloud_most_costly(self, fig4):
        dura = fig4.cumulative("duracloud")
        for name, result in fig4.results.items():
            if name != "duracloud":
                assert result.grand_total < dura

    def test_aliyun_least_costly(self, fig4):
        aliyun = fig4.cumulative("aliyun")
        for name, result in fig4.results.items():
            if name != "aliyun":
                assert result.grand_total > aliyun

    def test_hyrd_cheaper_than_other_coc(self, fig4):
        assert fig4.cumulative("hyrd") < fig4.cumulative("racs")
        assert fig4.cumulative("hyrd") < fig4.cumulative("duracloud")

    def test_savings_in_paper_ballpark(self, fig4):
        # Paper: 33.4% vs DuraCloud, 20.4% vs RACS; assert wide windows.
        assert 0.15 <= fig4.savings_vs("hyrd", "duracloud") <= 0.55
        assert 0.03 <= fig4.savings_vs("hyrd", "racs") <= 0.40

    def test_monthly_costs_grow_for_flat_rate_providers(self, fig4):
        """Azure/Rackspace bills are storage-dominated, hence monotone."""
        for name in ("azure", "rackspace"):
            months = fig4.results[name].monthly_totals
            assert all(b >= a * 0.98 for a, b in zip(months, months[1:]))


class TestTables:
    def test_table2_rows(self):
        rows = run_table2()
        assert len(rows) == 4
        by_name = {r[0]: r for r in rows}
        assert by_name["amazon_s3"][1] == 0.033
        assert by_name["aliyun"][-1] == "Both"
        assert by_name["azure"][-1] == "Performance-oriented"

    def test_table1_derivation(self, fig4, fig6):
        rows = run_table1(fig4=fig4, fig6=fig6)
        by_name = {r[0]: r for r in rows}
        assert by_name["hyrd"][1] == "Replication + erasure code"
        # HyRD: best measured performance and cheaper than both baselines.
        assert by_name["hyrd"][3] < by_name["racs"][3]
        assert by_name["hyrd"][4] < by_name["duracloud"][4]
        # Recovery column, per Table I: RACS Hard, DuraCloud and HyRD Easy.
        assert "Hard" in by_name["racs"][2]
        assert "Easy" in by_name["duracloud"][2]
        assert "Easy" in by_name["hyrd"][2]


class TestDefaults:
    def test_default_configs_construct(self):
        assert default_postmark_config().size_hi == 100 * MB
        assert default_ia_config().months == 12
