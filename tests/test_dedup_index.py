"""Unit tests for the fingerprint index."""

import pytest

from repro.dedup.index import FingerprintIndex


class TestFingerprintIndex:
    def test_first_reference_is_new(self):
        idx = FingerprintIndex()
        assert idx.reference("aa", 100) is True
        assert idx.reference("aa", 100) is False
        assert idx.refcount("aa") == 2
        assert len(idx) == 1

    def test_collision_detected(self):
        idx = FingerprintIndex()
        idx.reference("aa", 100)
        with pytest.raises(ValueError, match="collision"):
            idx.reference("aa", 101)

    def test_release_to_garbage(self):
        idx = FingerprintIndex()
        idx.reference("aa", 100)
        idx.reference("aa", 100)
        assert idx.release("aa") is False
        assert idx.release("aa") is True
        assert "aa" not in idx
        assert idx.refcount("aa") == 0

    def test_release_unknown(self):
        with pytest.raises(KeyError):
            FingerprintIndex().release("zz")

    def test_byte_accounting(self):
        idx = FingerprintIndex()
        idx.reference("aa", 100)
        idx.reference("aa", 100)
        idx.reference("bb", 50)
        assert idx.unique_bytes() == 150
        assert idx.logical_bytes() == 250
        assert idx.dedup_ratio() == pytest.approx(250 / 150)

    def test_empty_ratio_is_one(self):
        assert FingerprintIndex().dedup_ratio() == 1.0
