"""Property: a crash at ANY cloud-op step of a write recovers clean.

The crash-consistency contract is not "most crash points are fine" — it is
universal: for every scheme and every 1-based ordinal at which the client
can die during an overwrite, the replacement client (inheriting only the
durable state: intent journal + write logs) must recover to a state where

- the journal is drained (the intent rolled forward or back, never stuck);
- every write log is empty (nothing pending against a healthy fleet);
- the object reads back as exactly the old or the new payload, matching
  the direction recovery reported;
- a deep audit of the object passes and no orphaned fragments remain.

The exhaustive test *enumerates* every crash ordinal per scheme (the walk
stops at the first ordinal past the op's last cloud request, detected by
the schedule never firing); hypothesis then varies the seed — and with it
payload bytes, placement draws and fragment sizes — across random
(scheme, ordinal) pairs.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chaos import invariants as inv
from repro.chaos.engine import CHAOS_SCHEMES, _build_scheme, chaos_resilience
from repro.cloud.provider import make_table2_cloud_of_clouds
from repro.faults.crash import ClientCrash, CrashSchedule
from repro.sim.clock import SimClock
from repro.sim.rng import make_rng

# No scheme's overwrite issues anywhere near this many cloud requests; the
# enumeration asserts it terminates rather than looping forever.
_MAX_STEPS = 200


def _crash_trial(scheme_name: str, seed: int, ordinal: int) -> str:
    """Overwrite with a scripted crash at ``ordinal``; recover; verify.

    Returns ``"committed"`` when the ordinal lies past the op's last cloud
    request (the schedule never fired), else asserts the recovered world is
    invariant-clean and returns ``"crashed"``.
    """
    rng = make_rng(seed, "crash-prop", scheme_name, ordinal)
    clock = SimClock()
    fleet = make_table2_cloud_of_clouds(clock)
    resilience = chaos_resilience()
    scheme = _build_scheme(scheme_name, fleet, clock, resilience)
    journal = scheme.attach_journal()
    path = "/prop/f0"
    old = rng.bytes(32 * 1024)
    new = rng.bytes(32 * 1024)
    scheme.put(path, old)
    scheme.install_crash_schedule(CrashSchedule([ordinal]))
    try:
        scheme.put(path, new)
    except ClientCrash:
        pass
    else:
        return "committed"

    # The replacement client inherits only durable state: journal + logs.
    dead = scheme
    scheme = _build_scheme(scheme_name, fleet, clock, resilience)
    scheme.adopt_write_logs(dead._write_logs)
    scheme.attach_journal(journal)
    scheme.recover_namespace()
    summary = scheme.recover()

    assert inv.check_journal_drained(journal) == []
    assert inv.check_writelog_convergence(scheme) == []
    resolved = summary["rolled_forward"] + summary["rolled_back"]
    assert len(resolved) == 1 and resolved[0]["path"] == path
    want = new if summary["rolled_forward"] else old
    data, _ = scheme.get(path)
    assert data == want, f"{scheme_name} @ {ordinal}: wrong payload after recovery"
    audit = scheme.verify_object(path, deep=True)
    assert inv.check_namespace_provider_audit(scheme, [audit]) == []
    return "crashed"


@pytest.mark.parametrize("scheme_name", CHAOS_SCHEMES)
def test_every_crash_point_of_a_write_recovers(scheme_name):
    """Exhaustive: kill the client at step 1, 2, 3, ... until the op's
    cloud-request stream runs out; every single point must recover."""
    ordinal = 1
    while _crash_trial(scheme_name, seed=0, ordinal=ordinal) == "crashed":
        ordinal += 1
        assert ordinal <= _MAX_STEPS, "enumeration failed to terminate"
    assert ordinal > 1, "overwrite issued no cloud requests?"


@settings(max_examples=20, deadline=None)
@given(data=st.data())
def test_random_seeds_and_crash_points_recover(data):
    scheme_name = data.draw(st.sampled_from(CHAOS_SCHEMES))
    seed = data.draw(st.integers(min_value=1, max_value=2**20))
    ordinal = data.draw(st.integers(min_value=1, max_value=40))
    _crash_trial(scheme_name, seed, ordinal)
