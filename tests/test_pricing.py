"""Unit tests for the Table II price plans."""

import pytest

from repro.cloud.pricing import (
    CATEGORIES,
    GB,
    PRICE_PLANS,
    PricingPlan,
    ProviderCategory,
)


class TestTable2Fidelity:
    """The preset plans must match Table II of the paper, cell by cell."""

    def test_providers_present(self):
        assert set(PRICE_PLANS) == {"amazon_s3", "azure", "aliyun", "rackspace"}

    def test_amazon(self):
        p = PRICE_PLANS["amazon_s3"]
        assert p.storage_gb_month == 0.033
        assert p.data_out_gb == 0.201
        assert p.tier1_per_10k == 0.047
        assert p.tier2_per_10k == 0.0037

    def test_azure(self):
        p = PRICE_PLANS["azure"]
        assert p.storage_gb_month == 0.157
        assert p.data_out_gb == 0.0
        assert p.tier1_per_10k == 0.0

    def test_aliyun(self):
        p = PRICE_PLANS["aliyun"]
        assert p.storage_gb_month == 0.029
        assert p.data_out_gb == 0.123
        assert p.tier1_per_10k == 0.0016
        assert p.tier2_per_10k == 0.0016

    def test_rackspace(self):
        p = PRICE_PLANS["rackspace"]
        assert p.storage_gb_month == 0.13
        assert p.data_out_gb == 0.0

    def test_data_in_free_everywhere(self):
        assert all(p.data_in_gb == 0.0 for p in PRICE_PLANS.values())

    def test_category_row(self):
        assert CATEGORIES["amazon_s3"] == ProviderCategory.COST_ORIENTED
        assert CATEGORIES["azure"] == ProviderCategory.PERFORMANCE_ORIENTED
        assert CATEGORIES["aliyun"] == ProviderCategory.BOTH
        assert CATEGORIES["rackspace"] == ProviderCategory.COST_ORIENTED


class TestPricingMath:
    def test_storage_cost(self):
        plan = PricingPlan(0.10, 0, 0, 0, 0)
        assert plan.storage_cost(2.5) == pytest.approx(0.25)

    def test_data_out_cost(self):
        plan = PricingPlan(0, 0, 0.20, 0, 0)
        assert plan.data_out_cost(5 * GB) == pytest.approx(1.0)

    def test_transaction_costs_per_10k(self):
        plan = PricingPlan(0, 0, 0, 0.047, 0.0037)
        assert plan.tier1_cost(10_000) == pytest.approx(0.047)
        assert plan.tier2_cost(20_000) == pytest.approx(0.0074)

    def test_negative_price_rejected(self):
        with pytest.raises(ValueError):
            PricingPlan(-0.1, 0, 0, 0, 0)

    def test_category_flags(self):
        assert ProviderCategory.BOTH & ProviderCategory.COST_ORIENTED
        assert ProviderCategory.BOTH & ProviderCategory.PERFORMANCE_ORIENTED
        assert not (
            ProviderCategory.COST_ORIENTED & ProviderCategory.PERFORMANCE_ORIENTED
        )
