"""Hedge accounting: lost-race legs are waste plus a *censored* sample.

The regression this suite pins: a hedged read's losing leg used to feed its
full (counterfactual) completion time into the provider's latency EWMA —
a number the client never observed, because it cancelled the leg the moment
the winner answered.  Post-fix the books are honest:

- the winner's real latency feeds :meth:`ProviderHealth.record_latency`;
- the loser's on-wire time until cancellation lands in the
  ``hedge_wasted_seconds`` histogram and a ``hedge.wasted`` trace event;
- the loser's health gets that same *censored* wait ("still pending after
  this long") — the only brownout signal available once hedging routes
  around a slow primary — never the counterfactual finish.
"""

import pytest

from repro.cloud.provider import make_table2_cloud_of_clouds
from repro.core.config import HyRDConfig
from repro.core.resilience import ResilienceConfig
from repro.faults import FaultProfile, LatencyBrownout
from repro.obs import RecordingTracer, attribute_trace
from repro.schemes import HyrdScheme
from repro.sim.clock import SimClock

KB = 1024


def _hedge_scheme(clock, fleet, tracer=None):
    cfg = HyRDConfig(resilience=ResilienceConfig(hedge_reads=True))
    return HyrdScheme(list(fleet.values()), clock, config=cfg, tracer=tracer)


def _brownout(fleet, clock, name, rtt_factor=10.0, bw_factor=0.05):
    t0 = clock.now
    fleet[name].faults = FaultProfile(
        [LatencyBrownout(t0, t0 + 1e6, rtt_factor=rtt_factor, bw_factor=bw_factor)]
    ).bind(name)


def _expected_get(scheme, provider, size):
    """The clean-model read expectation health ratios are computed against."""
    lat = scheme.provider(provider).latency
    return lat.rtt + size / min(lat.download_bw, scheme.link.downlink)


def _wasted_series(scheme):
    """provider -> (count, sum) over the hedge_wasted_seconds histograms."""
    from repro.metrics.registry import Histogram

    out = {}
    for m in scheme.registry.all_metrics():
        if isinstance(m, Histogram) and m.name == "hedge_wasted_seconds":
            s = m.summary()
            out[dict(m.labels)["provider"]] = (int(s["count"]), s["mean"] * s["count"])
    return out


class TestScriptedSlowPrimaryHedge:
    """The ISSUE's scripted scenario: primary browns out, backup wins."""

    def _run(self):
        clock = SimClock()
        fleet = make_table2_cloud_of_clouds(clock)
        tracer = RecordingTracer(clock)
        scheme = _hedge_scheme(clock, fleet, tracer)
        data = bytes(range(256)) * 256  # 64 KB -> replicated small file
        scheme.put("/d/small", data)
        _brownout(fleet, clock, "aliyun")
        s0 = scheme.health["aliyun"].slowdown
        got, report = scheme.get("/d/small")
        assert got == data and report.hedged
        assert scheme.collector.counter("hedge_wins") == 1
        return scheme, s0

    def _loser_leg_duration(self, scheme):
        fired = next(
            r for r in scheme.tracer.records
            if r.get("t") == "event" and r["name"] == "hedge.fired"
        )
        leg = next(
            r for r in scheme.tracer.records
            if r.get("t") == "span" and r["name"] == "request"
            and r["attrs"].get("kind") == "get"
            and r["attrs"]["provider"] == fired["attrs"]["primary"]
        )
        return leg["end"] - leg["start"]

    def test_loser_health_fed_censored_wait_not_counterfactual(self):
        scheme, s0 = self._run()
        (count, wasted) = _wasted_series(scheme)["aliyun"]
        assert count == 1
        full = self._loser_leg_duration(scheme)
        # Censoring truncated a real in-flight leg: the metered waste is the
        # wait until cancellation, strictly less than the browned-out leg's
        # counterfactual wire time.
        assert 0.0 < wasted < full
        expected = _expected_get(scheme, "aliyun", 64 * KB)
        alpha = scheme.health["aliyun"].alpha
        censored = s0 + alpha * (wasted / expected - s0)
        counterfactual = s0 + alpha * (full / expected - s0)
        assert scheme.health["aliyun"].slowdown == pytest.approx(censored)
        # The pre-fix behavior — EWMA folded the full finish — is pinned out.
        assert scheme.health["aliyun"].slowdown < counterfactual - 0.1
        # And the brownout still registers: the censored sample adapts.
        assert scheme.health["aliyun"].slowdown > s0

    def test_wasted_wire_time_is_metered(self):
        scheme, _ = self._run()
        wasted = _wasted_series(scheme)
        assert set(wasted) == {"aliyun"}
        count, total = wasted["aliyun"]
        assert count == 1 and total > 0.0

    def test_trace_carries_hedge_wasted_event_and_hedge_wait_phase(self):
        scheme, _ = self._run()
        events = [
            r for r in scheme.tracer.records
            if r.get("t") == "event" and r["name"] == "hedge.wasted"
        ]
        assert len(events) == 1
        assert events[0]["attrs"]["provider"] == "aliyun"
        assert events[0]["attrs"]["wasted"] > 0.0
        report = attribute_trace(scheme.tracer.records)
        hedged = [o for o in report.ops if o.hedged]
        assert len(hedged) == 1
        o = hedged[0]
        # The lead-in where only the doomed primary was on the wire.
        assert o.phases["hedge_wait"] > 0.0
        assert o.hedge_wasted == {
            "aliyun": pytest.approx(events[0]["attrs"]["wasted"])
        }
        assert sum(o.phases.values()) == pytest.approx(o.duration)

    def test_backup_span_sits_at_its_true_offset(self):
        scheme, _ = self._run()
        spans = [
            r for r in scheme.tracer.records
            if r.get("t") == "span" and r["name"] == "request"
            and r["attrs"].get("kind") == "get"
        ]
        fired = next(
            r for r in scheme.tracer.records
            if r.get("t") == "event" and r["name"] == "hedge.fired"
        )
        primary = next(
            s for s in spans if s["attrs"]["provider"] == fired["attrs"]["primary"]
        )
        backup = next(
            s for s in spans if s["attrs"]["provider"] == fired["attrs"]["backup"]
        )
        # The backup leg fired hedge_delay after the primary, and the trace
        # must say so (span_offset) — not show both legs starting together.
        assert backup["start"] == pytest.approx(
            primary["start"] + fired["attrs"]["delay"]
        )

    def test_health_adapts_so_repeat_reads_stop_hedging(self):
        """The point of the censored feed: after a few hedged reads the
        health ranking routes around the browned-out primary and reads go
        back to single-leg."""
        clock = SimClock()
        fleet = make_table2_cloud_of_clouds(clock)
        scheme = _hedge_scheme(clock, fleet)
        data = bytes(64 * KB)
        for i in range(6):
            scheme.put(f"/d/f{i}", data)
        _brownout(fleet, clock, "aliyun")
        for i in range(6):
            got, _ = scheme.get(f"/d/f{i}")
            assert got == data
        assert scheme.collector.counter("hedged_reads") < 6
        assert scheme.health["aliyun"].slowdown > 1.0


class TestPrimaryWinsHedge:
    def test_slow_backup_is_wasted_not_sampled_in_full(self):
        clock = SimClock()
        fleet = make_table2_cloud_of_clouds(clock)
        tracer = RecordingTracer(clock)
        scheme = _hedge_scheme(clock, fleet, tracer)
        data = bytes(64 * KB)
        scheme.put("/d/small", data)
        # Mild brownout on everyone: the primary gets slow enough to trigger
        # the hedge but still beats a backup suffering the same factor plus
        # the trigger delay.
        for name in fleet:
            _brownout(fleet, clock, name, rtt_factor=4.0, bw_factor=0.3)
        got, report = scheme.get("/d/small")
        assert got == data and report.hedged
        assert scheme.collector.counter("hedged_reads") == 1
        assert scheme.collector.counter("hedge_wins") == 0
        fired = next(
            r for r in tracer.records
            if r.get("t") == "event" and r["name"] == "hedge.fired"
        )
        loser = fired["attrs"]["backup"]
        winner = fired["attrs"]["primary"]
        wasted = _wasted_series(scheme)
        assert set(wasted) == {loser}
        # The winner's real, browned-out latency fed health in full.
        assert scheme.health[winner].slowdown > 1.2
        # The loser's censored wait is bounded by the time the client
        # actually spent racing it — not its counterfactual finish.
        loser_leg = next(
            r for r in tracer.records
            if r.get("t") == "span" and r["name"] == "request"
            and r["attrs"].get("kind") == "get"
            and r["attrs"]["provider"] == loser
        )
        _, loser_wasted = wasted[loser]
        assert loser_wasted < loser_leg["end"] - loser_leg["start"]


class TestNoHedgeNoWaste:
    def test_fast_primary_leaves_no_waste_series(self):
        clock = SimClock()
        fleet = make_table2_cloud_of_clouds(clock)
        scheme = _hedge_scheme(clock, fleet)
        data = bytes(64 * KB)
        scheme.put("/d/small", data)
        for _ in range(3):
            got, report = scheme.get("/d/small")
            assert got == data and not report.hedged
        assert _wasted_series(scheme) == {}

    def test_unhedged_reads_still_feed_health(self):
        clock = SimClock()
        fleet = make_table2_cloud_of_clouds(clock)
        scheme = _hedge_scheme(clock, fleet)
        data = bytes(64 * KB)
        scheme.put("/d/small", data)
        before = {n: h.slowdown for n, h in scheme.health.items()}
        scheme.get("/d/small")
        assert any(h.slowdown != before[n] for n, h in scheme.health.items())
