"""Unit tests for latency models and the client link."""

import pytest

from repro.cloud.latency import ClientLink, LatencyModel
from repro.sim.rng import make_rng


@pytest.fixture
def model():
    return LatencyModel(rtt=0.1, upload_bw=1e6, download_bw=2e6)


class TestLatencyModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            LatencyModel(rtt=-1, upload_bw=1, download_bw=1)
        with pytest.raises(ValueError):
            LatencyModel(rtt=0, upload_bw=0, download_bw=1)
        with pytest.raises(ValueError):
            LatencyModel(rtt=0, upload_bw=1, download_bw=1, rtt_sigma=-0.1)

    def test_deterministic_without_rng(self, model):
        assert model.sample_rtt() == 0.1
        spec = model.upload_spec(1000)
        assert spec.start_delay == 0.1
        assert spec.size_bytes == 1000
        assert spec.remote_cap == 1e6

    def test_jitter_positive_and_varies(self, model):
        rng = make_rng(0, "jitter")
        samples = {model.sample_rtt(rng) for _ in range(16)}
        assert len(samples) > 1
        assert all(s > 0 for s in samples)

    def test_zero_sigma_disables_jitter(self):
        m = LatencyModel(rtt=0.1, upload_bw=1, download_bw=1, rtt_sigma=0, bw_sigma=0)
        rng = make_rng(0, "x")
        assert m.sample_rtt(rng) == 0.1
        assert m.upload_spec(10, rng).remote_cap == 1

    def test_download_spec(self, model):
        spec = model.download_spec(500)
        assert spec.remote_cap == 2e6

    def test_control_spec_has_no_payload(self, model):
        spec = model.control_spec()
        assert spec.size_bytes == 0


class TestClientLink:
    def test_defaults_are_asymmetric(self):
        link = ClientLink()
        assert link.downlink > link.uplink

    def test_validation(self):
        with pytest.raises(ValueError):
            ClientLink(uplink=0)

    def test_elapsed_empty(self):
        assert ClientLink().elapsed() == 0.0

    def test_elapsed_takes_slower_direction(self, model):
        link = ClientLink(uplink=1e6, downlink=1e6)
        up = [model.upload_spec(1_000_000)]
        down = [model.download_spec(10)]
        elapsed = link.elapsed(uploads=up, downloads=down)
        assert elapsed == pytest.approx(0.1 + 1.0)

    def test_directions_do_not_contend(self, model):
        link = ClientLink(uplink=1e6, downlink=1e6)
        up = [model.upload_spec(1_000_000)]
        down = [model.download_spec(1_000_000)]
        both = link.elapsed(uploads=up, downloads=down)
        only_up = link.elapsed(uploads=up)
        assert both == pytest.approx(only_up, rel=0.3)

    def test_serial_upload_time(self):
        link = ClientLink(uplink=10.0, downlink=10.0)
        assert link.serial_upload_time(100) == pytest.approx(10.0)
        assert link.serial_upload_time(100, remote_cap=5.0) == pytest.approx(20.0)
