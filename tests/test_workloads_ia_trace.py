"""Unit tests for the Internet Archive trace synthesizer (Figure 3)."""

import numpy as np
import pytest

from repro.workloads.ia_trace import (
    IATraceConfig,
    _fit_read_bytes,
    _solve_tilt,
    _tilted_weights,
    synthesize_ia_trace,
)


@pytest.fixture
def trace(rng):
    return synthesize_ia_trace(IATraceConfig(writes_per_month=20), rng)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            IATraceConfig(months=0)
        with pytest.raises(ValueError):
            IATraceConfig(read_volume_ratio=0)
        with pytest.raises(ValueError):
            IATraceConfig(seasonality=1.0)


class TestFigure3Statistics:
    def test_read_write_byte_ratio(self, trace):
        """Fig. 3a: reads outweigh writes 2.1:1 by volume."""
        assert trace.total_read_to_write_bytes == pytest.approx(2.1, rel=0.05)

    def test_read_write_request_ratio(self, trace):
        """Fig. 3b: read requests outnumber writes 3.5:1."""
        assert trace.total_read_to_write_requests == pytest.approx(3.5, rel=0.05)

    def test_twelve_months(self, trace):
        assert len(trace.stats) == 12
        assert [s.month for s in trace.stats] == list(range(12))

    def test_monthly_volumes_fluctuate(self, trace):
        written = [s.bytes_written for s in trace.stats]
        assert max(written) > 1.2 * min(written)  # seasonality visible

    def test_ops_match_stats(self, trace):
        for s in trace.stats:
            month_ops = [op for op in trace.ops if op.month == s.month]
            puts = [op for op in month_ops if op.kind == "put"]
            gets = [op for op in month_ops if op.kind == "get"]
            assert len(puts) == s.write_requests
            assert len(gets) == s.read_requests
            assert sum(op.size for op in puts) == s.bytes_written

    def test_reads_follow_writes(self, trace):
        """Every get targets a path already written."""
        written: set[str] = set()
        for op in trace.ops:
            if op.kind == "put":
                written.add(op.path)
            else:
                assert op.path in written

    def test_reads_can_target_older_months(self, trace):
        first_month_paths = {
            op.path for op in trace.ops if op.kind == "put" and op.month == 0
        }
        late_reads = {
            op.path for op in trace.ops if op.kind == "get" and op.month >= 6
        }
        assert first_month_paths & late_reads  # archive items stay popular


class TestTiltMachinery:
    def test_solve_tilt_hits_target(self, rng):
        sizes = np.exp(rng.uniform(np.log(1e3), np.log(1e8), 3000))
        for frac in (0.3, 0.6, 1.0, 2.0):
            target = frac * sizes.mean()
            lam = _solve_tilt(sizes, target)
            w = _tilted_weights(sizes, lam)
            assert (w * sizes).sum() == pytest.approx(target, rel=0.01)

    def test_tilt_degenerate_uniform_sizes(self):
        sizes = np.full(10, 500.0)
        assert _solve_tilt(sizes, 500.0) == 0.0

    def test_fit_read_bytes_converges(self, rng):
        lib = np.exp(rng.uniform(np.log(1e3), np.log(1e8), 500))
        picks = rng.integers(0, 500, size=80)
        target = 0.6 * lib.mean() * 80
        fitted = _fit_read_bytes(lib, picks, target)
        assert lib[fitted].sum() == pytest.approx(target, rel=0.04)

    def test_fit_preserves_pick_count(self, rng):
        lib = np.exp(rng.uniform(np.log(1e3), np.log(1e6), 100))
        picks = rng.integers(0, 100, size=30)
        fitted = _fit_read_bytes(lib, picks, lib.mean() * 30)
        assert len(fitted) == 30
