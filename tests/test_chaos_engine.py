"""Unit tests for the chaos campaign engine and its invariant oracle.

The heavyweight acceptance story (a multi-episode campaign per scheme with
zero violations and byte-identical re-runs) lives in
``benchmarks/test_chaos_campaign.py``; these tests pin the component
contracts: the invariant checkers as pure functions, episode report shape,
and seed determinism on a single episode.
"""

import json

import pytest

from repro.chaos import CHAOS_SCHEMES, run_campaign, run_episode
from repro.chaos import invariants as inv
from repro.fs.journal import IntentJournal

# ------------------------------------------------------------ invariant oracle


def _obs(allowed, observed):
    return {"/x": {"allowed": allowed, "observed": observed}}


class TestDescribeValue:
    def test_absent_sentinel_and_digest(self):
        assert inv.describe_value(None) == "absent"
        assert inv.describe_value(inv.UNREACHABLE) == "unreachable"
        d = inv.describe_value(b"abc")
        assert d.startswith("sha256:") and d.endswith("/3B")

    def test_digest_is_deterministic(self):
        assert inv.describe_value(b"abc") == inv.describe_value(b"abc")
        assert inv.describe_value(b"abc") != inv.describe_value(b"abd")


class TestNoAckedWriteLost:
    def test_readable_path_passes(self):
        assert inv.check_no_acked_write_lost(_obs([b"v1", b"v2"], b"v1")) == []

    def test_missing_acked_path_is_a_violation(self):
        (v,) = inv.check_no_acked_write_lost(_obs([b"v1"], None))
        assert v["path"] == "/x" and v["observed"] == "absent"

    def test_unreachable_counts_as_lost(self):
        assert inv.check_no_acked_write_lost(_obs([b"v1"], inv.UNREACHABLE))

    def test_allowed_absence_skips_the_check(self):
        # a crashed remove may resolve either way: absence is acceptable
        assert inv.check_no_acked_write_lost(_obs([b"v1", None], None)) == []


class TestNoTornStripeReadable:
    def test_exact_match_passes(self):
        assert inv.check_no_torn_stripe_readable(_obs([b"v1", b"v2"], b"v2")) == []

    def test_torn_bytes_are_a_violation(self):
        (v,) = inv.check_no_torn_stripe_readable(_obs([b"v1", b"v2"], b"v1v2"))
        assert v["path"] == "/x"
        assert v["observed"] != v["allowed"][0]

    def test_absence_is_not_tornness(self):
        # losing the object is no_acked_write_lost's finding, not this one's
        assert inv.check_no_torn_stripe_readable(_obs([b"v1"], None)) == []
        assert inv.check_no_torn_stripe_readable(_obs([b"v1"], inv.UNREACHABLE)) == []


class TestJournalDrained:
    def test_empty_journal_passes(self):
        assert inv.check_journal_drained(IntentJournal()) == []

    def test_pending_intent_reported(self):
        journal = IntentJournal()
        journal.begin(
            kind="put",
            path="/x",
            version=1,
            codec="rep",
            replicated=True,
            min_needed=1,
            sites=(("amazon_s3", "k"),),
            payload=b"v",
            prev=None,
            logged_at=0.0,
        )
        (v,) = inv.check_journal_drained(journal)
        assert v == {"seq": 1, "kind": "put", "path": "/x"}


# ------------------------------------------------------------ episode engine


class TestEpisode:
    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError):
            run_episode("glacier", seed=1)
        with pytest.raises(ValueError):
            run_campaign(["glacier"], episodes=1)

    def test_report_shape_and_verdict(self):
        result = run_episode("racs", seed=2026)
        report = result.report
        assert report["schema"] == "chaos-episode/v1"
        assert report["scheme"] == "racs" and report["seed"] == 2026
        assert set(report["invariants"]) == set(inv.INVARIANTS)
        for name in inv.INVARIANTS:
            cell = report["invariants"][name]
            assert cell["ok"] == (not cell["violations"])
        assert report["ok"] == all(
            report["invariants"][n]["ok"] for n in inv.INVARIANTS
        )
        assert result.ok == report["ok"]
        # crashes fired ⇒ recoveries ran (one replacement client per crash)
        assert len(report["crashes"]["recoveries"]) == len(report["crashes"]["fired"])

    def test_same_seed_is_byte_identical(self):
        a = run_episode("hyrd", seed=4242)
        b = run_episode("hyrd", seed=4242)
        assert a.to_json() == b.to_json()

    def test_different_seeds_diverge(self):
        a = run_episode("hyrd", seed=1)
        b = run_episode("hyrd", seed=2)
        assert a.to_json() != b.to_json()

    def test_to_json_is_canonical(self):
        result = run_episode("single", seed=9)
        parsed = json.loads(result.to_json())
        assert result.to_json() == json.dumps(
            parsed, sort_keys=True, separators=(",", ":")
        )


class TestCampaign:
    def test_small_campaign_totals(self):
        report = run_campaign(["racs", "single"], episodes=2, base_seed=11)
        assert report["schema"] == "chaos-campaign/v1"
        assert report["totals"]["episodes"] == 4
        assert len(report["episodes"]) == 4
        assert report["ok"] == (
            report["totals"]["violations"] == 0
            and not report["determinism_drift"]
        )

    def test_default_scheme_list_is_the_full_roster(self):
        report = run_campaign(episodes=1, base_seed=5)
        assert tuple(report["schemes"]) == CHAOS_SCHEMES
