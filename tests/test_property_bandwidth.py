"""Property-based tests: bandwidth-model physics invariants."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.bandwidth import TransferSpec, _waterfill_rates, simulate_transfers


@st.composite
def spec_batch(draw):
    n = draw(st.integers(1, 8))
    specs = []
    for _ in range(n):
        specs.append(
            TransferSpec(
                start_delay=draw(st.floats(0, 5, allow_nan=False)),
                size_bytes=draw(st.floats(0, 1e6, allow_nan=False)),
                remote_cap=draw(
                    st.one_of(st.floats(1.0, 1e7), st.just(math.inf))
                ),
            )
        )
    link = draw(st.floats(1.0, 1e7, allow_nan=False))
    return specs, link


class TestWaterfillProperties:
    @given(
        caps=st.lists(st.floats(0.1, 1e6), min_size=1, max_size=10),
        link=st.floats(0.1, 1e6),
    )
    def test_rates_feasible(self, caps, link):
        rates = _waterfill_rates(caps, link)
        assert sum(rates) <= link * (1 + 1e-9)
        for rate, cap in zip(rates, caps):
            assert 0 <= rate <= cap * (1 + 1e-9)

    @given(
        caps=st.lists(st.floats(0.1, 1e6), min_size=1, max_size=10),
        link=st.floats(0.1, 1e6),
    )
    def test_work_conserving(self, caps, link):
        """Either the link is saturated or every transfer is at its cap."""
        rates = _waterfill_rates(caps, link)
        saturated = sum(rates) >= link * (1 - 1e-9)
        all_capped = all(r >= c * (1 - 1e-9) for r, c in zip(rates, caps))
        assert saturated or all_capped

    @given(
        caps=st.lists(st.floats(0.1, 1e6), min_size=2, max_size=10),
        link=st.floats(0.1, 1e6),
    )
    def test_max_min_fairness(self, caps, link):
        """Uncapped transfers all receive the same (maximal) rate."""
        rates = _waterfill_rates(caps, link)
        uncapped = [r for r, c in zip(rates, caps) if r < c * (1 - 1e-9)]
        if len(uncapped) >= 2:
            assert max(uncapped) - min(uncapped) < 1e-6 * max(uncapped)


class TestSimulationProperties:
    @given(batch=spec_batch())
    @settings(max_examples=80, deadline=None)
    def test_finish_after_start(self, batch):
        specs, link = batch
        for spec, res in zip(specs, simulate_transfers(specs, link)):
            assert res.start_time == spec.start_delay
            assert res.finish_time >= res.start_time - 1e-9

    @given(batch=spec_batch())
    @settings(max_examples=80, deadline=None)
    def test_finish_no_faster_than_dedicated_link(self, batch):
        """No transfer can beat having the whole link plus its cap to itself."""
        specs, link = batch
        for spec, res in zip(specs, simulate_transfers(specs, link)):
            best = spec.start_delay + spec.size_bytes / min(spec.remote_cap, link)
            assert res.finish_time >= best - max(1e-6 * best, 1e-6)

    @given(batch=spec_batch())
    @settings(max_examples=80, deadline=None)
    def test_finish_no_slower_than_serialized(self, batch):
        """All transfers must drain by (last start) + (total bytes / link) +
        (slowest individual cap time)."""
        specs, link = batch
        results = simulate_transfers(specs, link)
        latest_start = max(s.start_delay for s in specs)
        total = sum(s.size_bytes for s in specs)
        cap_tail = max(s.size_bytes / s.remote_cap for s in specs)
        bound = latest_start + total / link + cap_tail + 1e-6
        assert max(r.finish_time for r in results) <= bound * (1 + 1e-6)

    @given(batch=spec_batch())
    @settings(max_examples=50, deadline=None)
    def test_adding_a_transfer_never_speeds_others_up(self, batch):
        specs, link = batch
        base = simulate_transfers(specs, link)
        extra = specs + [TransferSpec(0.0, 1e5, math.inf)]
        with_extra = simulate_transfers(extra, link)
        for b, w in zip(base, with_extra):
            assert w.finish_time >= b.finish_time - max(1e-6 * b.finish_time, 1e-6)
