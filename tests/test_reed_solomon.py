"""Unit tests for the systematic Reed-Solomon codec."""

from itertools import combinations

import pytest

from repro.erasure.reed_solomon import ReedSolomonCode


class TestConstruction:
    def test_properties(self):
        rs = ReedSolomonCode(k=4, m=2)
        assert rs.n == 6
        assert rs.k == 4
        assert rs.fault_tolerance == 2
        assert rs.storage_overhead == pytest.approx(1.5)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            ReedSolomonCode(k=0, m=1)
        with pytest.raises(ValueError):
            ReedSolomonCode(k=-1, m=1)
        with pytest.raises(ValueError):
            ReedSolomonCode(k=200, m=100)

    def test_generator_matrix_read_only(self):
        rs = ReedSolomonCode(k=2, m=1)
        with pytest.raises(ValueError):
            rs.generator_matrix[0, 0] = 9


class TestRoundTrip:
    def test_systematic_prefix(self, payload):
        data = payload(900)
        rs = ReedSolomonCode(k=3, m=2)
        frags = rs.encode(data)
        assert b"".join(frags[:3]) == data  # 900 divides evenly by 3

    def test_all_k_subsets_decode(self, payload):
        data = payload(500)
        rs = ReedSolomonCode(k=3, m=2)
        frags = rs.encode(data)
        for subset in combinations(range(5), 3):
            available = {i: frags[i] for i in subset}
            assert rs.decode(available, 500) == data

    def test_empty_payload(self):
        rs = ReedSolomonCode(k=3, m=1)
        frags = rs.encode(b"")
        assert all(f == b"" for f in frags)
        assert rs.decode({0: b"", 1: b"", 3: b""}, 0) == b""

    def test_one_byte(self):
        rs = ReedSolomonCode(k=3, m=2)
        frags = rs.encode(b"Z")
        assert rs.decode({2: frags[2], 3: frags[3], 4: frags[4]}, 1) == b"Z"

    def test_insufficient_fragments(self, payload):
        rs = ReedSolomonCode(k=3, m=1)
        frags = rs.encode(payload(100))
        with pytest.raises(ValueError):
            rs.decode({0: frags[0], 1: frags[1]}, 100)

    def test_wrong_fragment_length_rejected(self, payload):
        rs = ReedSolomonCode(k=2, m=1)
        frags = rs.encode(payload(100))
        with pytest.raises(ValueError):
            rs.decode({0: frags[0][:-1], 1: frags[1], 2: frags[2]}, 100)

    def test_out_of_range_index_rejected(self, payload):
        rs = ReedSolomonCode(k=2, m=1)
        frags = rs.encode(payload(10))
        with pytest.raises(ValueError):
            rs.decode({0: frags[0], 7: frags[1]}, 10)


class TestReconstruction:
    def test_rebuild_each_fragment(self, payload):
        data = payload(333)
        rs = ReedSolomonCode(k=3, m=2)
        frags = rs.encode(data)
        for lost in range(5):
            available = {i: f for i, f in enumerate(frags) if i != lost}
            assert rs.reconstruct_fragment(available, lost, 333) == frags[lost]

    def test_rebuild_from_minimum(self, payload):
        data = payload(64)
        rs = ReedSolomonCode(k=2, m=2)
        frags = rs.encode(data)
        rebuilt = rs.reconstruct_fragment({1: frags[1], 3: frags[3]}, 0, 64)
        assert rebuilt == frags[0]

    def test_rebuild_empty(self):
        rs = ReedSolomonCode(k=2, m=1)
        frags = rs.encode(b"")
        assert rs.reconstruct_fragment({0: frags[0], 1: frags[1]}, 2, 0) == b""

    def test_decode_cache_reused(self, payload):
        rs = ReedSolomonCode(k=2, m=2)
        data = payload(100)
        frags = rs.encode(data)
        subset = {0: frags[0], 3: frags[3]}
        assert rs.decode(subset, 100) == data
        assert rs.decode(subset, 100) == data  # second call hits the cache
        assert len(rs._decode_cache) == 1


class TestDecodeCacheBound:
    def test_degraded_sweep_does_not_grow_cache_past_cap(self, payload):
        """Arbitrary index subsets must not grow the decode cache unboundedly."""
        rs = ReedSolomonCode(k=4, m=4)
        data = payload(257)
        frags = rs.encode(data)
        subsets = list(combinations(range(rs.n), rs.k))
        assert len(subsets) > rs._DECODE_CACHE_MAX
        for subset in subsets:
            assert rs.decode({i: frags[i] for i in subset}, len(data)) == data
        assert len(rs._decode_cache) <= rs._DECODE_CACHE_MAX

    def test_eviction_is_lru(self, payload):
        rs = ReedSolomonCode(k=4, m=4)
        data = payload(64)
        frags = rs.encode(data)
        subsets = [
            s
            for s in combinations(range(rs.n), rs.k)
            if s != tuple(range(rs.k))  # systematic path never touches the cache
        ]
        first = subsets[0]
        for subset in subsets:
            rs.decode({i: frags[i] for i in subset}, len(data))
            # Keep the first subset hot so eviction drops others, not it.
            rs.decode({i: frags[i] for i in first}, len(data))
        assert first in rs._decode_cache
        assert len(rs._decode_cache) <= rs._DECODE_CACHE_MAX
