"""Tests for re-evaluation, migration and vendor decommissioning."""


import pytest

from repro.cloud.latency import LatencyModel
from repro.core.config import MB
from repro.core.hyrd import HyRDClient


@pytest.fixture
def hyrd(providers, clock):
    return HyRDClient(list(providers.values()), clock)


class TestReevaluation:
    def test_reevaluate_tracks_provider_drift(self, hyrd, providers):
        assert hyrd.evaluator.performance_oriented() == ["aliyun", "azure"]
        # Aliyun's WAN path degrades badly overnight.
        providers["aliyun"].latency = LatencyModel(
            rtt=0.8, upload_bw=0.5e6, download_bw=0.5e6
        )
        hyrd.reevaluate()
        perf = hyrd.evaluator.performance_oriented()
        assert "aliyun" not in perf
        assert perf[0] == "azure"

    def test_new_writes_follow_new_classification(self, hyrd, providers, payload):
        providers["aliyun"].latency = LatencyModel(
            rtt=0.8, upload_bw=0.5e6, download_bw=0.5e6
        )
        hyrd.reevaluate()
        hyrd.put("/d/s", payload(4096))
        entry = hyrd.namespace.get("/d/s")
        assert "aliyun" not in entry.providers

    def test_old_files_still_readable_after_reevaluation(
        self, hyrd, providers, payload
    ):
        small, large = payload(4096), payload(2 * MB)
        hyrd.put("/d/s", small)
        hyrd.put("/d/l", large)
        providers["aliyun"].latency = LatencyModel(
            rtt=0.8, upload_bw=0.5e6, download_bw=0.5e6
        )
        hyrd.reevaluate()
        assert hyrd.get("/d/s")[0] == small
        assert hyrd.get("/d/l")[0] == large


class TestMisplacement:
    def test_fresh_files_not_misplaced(self, hyrd, payload):
        hyrd.put("/d/s", payload(4096))
        hyrd.put("/d/l", payload(2 * MB))
        assert hyrd.misplaced_paths() == []

    def test_drift_marks_files_misplaced(self, hyrd, providers, payload):
        hyrd.put("/d/s", payload(4096))
        providers["aliyun"].latency = LatencyModel(
            rtt=0.8, upload_bw=0.5e6, download_bw=0.5e6
        )
        hyrd.reevaluate()
        assert "/d/s" in hyrd.misplaced_paths()

    def test_migrate_realigns(self, hyrd, providers, payload):
        data = payload(4096)
        hyrd.put("/d/s", data)
        providers["aliyun"].latency = LatencyModel(
            rtt=0.8, upload_bw=0.5e6, download_bw=0.5e6
        )
        hyrd.reevaluate()
        report = hyrd.migrate("/d/s")
        assert report.op == "migrate"
        assert hyrd.misplaced_paths() == []
        assert "aliyun" not in hyrd.namespace.get("/d/s").providers
        assert hyrd.get("/d/s")[0] == data

    def test_migrate_gcs_old_objects(self, hyrd, providers, payload):
        hyrd.put("/d/s", payload(4096))
        providers["aliyun"].latency = LatencyModel(
            rtt=0.8, upload_bw=0.5e6, download_bw=0.5e6
        )
        hyrd.reevaluate()
        hyrd.migrate("/d/s")
        keys = providers["aliyun"].store.list(hyrd.container)
        assert not any(k.startswith("/d/s#") for k in keys)


class TestDecommission:
    def test_full_evacuation(self, hyrd, providers, payload):
        contents = {}
        for i in range(4):
            path = f"/d/s{i}"
            contents[path] = payload(4096)
            hyrd.put(path, contents[path])
        big = "/d/big"
        contents[big] = payload(2 * MB)
        hyrd.put(big, contents[big])

        assert hyrd.placements_on("aliyun")  # aliyun holds replicas + fragments
        reports = hyrd.decommission("aliyun")
        assert len(reports) == len(hyrd.namespace.paths())
        assert hyrd.placements_on("aliyun") == []
        for path, data in contents.items():
            assert hyrd.get(path)[0] == data
            assert "aliyun" not in hyrd.namespace.get(path).providers

    def test_decommissioned_provider_gets_no_new_writes(self, hyrd, payload):
        hyrd.decommission("rackspace")
        hyrd.put("/d/l", payload(2 * MB))
        assert "rackspace" not in hyrd.namespace.get("/d/l").providers

    def test_stripe_geometry_shrinks_after_exclusion(self, hyrd, payload):
        """Three usable providers left -> the large stripe re-sizes."""
        hyrd.decommission("rackspace")
        hyrd.put("/d/l", payload(2 * MB))
        entry = hyrd.namespace.get("/d/l")
        # Erasure set falls back to 3 providers (filled from the fastest).
        assert len(entry.providers) == 3

    def test_readmit(self, hyrd, payload):
        hyrd.evaluator.exclude("aliyun")
        hyrd.dispatcher.refresh()
        hyrd.evaluator.readmit("aliyun")
        hyrd.dispatcher.refresh()
        hyrd.put("/d/s", payload(1024))
        assert "aliyun" in hyrd.namespace.get("/d/s").providers

    def test_cannot_exclude_everything(self, hyrd):
        for name in ("amazon_s3", "azure", "aliyun"):
            hyrd.evaluator.exclude(name)
        with pytest.raises(ValueError):
            hyrd.evaluator.exclude("rackspace")

    def test_exclude_unknown(self, hyrd):
        with pytest.raises(KeyError):
            hyrd.evaluator.exclude("nonexistent")
