"""Unit tests for the scripted fault-injection layer (repro.faults)."""

import pytest

from repro.cloud.latency import LatencyModel
from repro.cloud.pricing import PRICE_PLANS
from repro.cloud.provider import SimulatedProvider, make_table2_cloud_of_clouds
from repro.faults import (
    FaultProfile,
    FaultScenario,
    FlappingOutage,
    LatencyBrownout,
    SilentCorruption,
    Throttling,
    TransientErrorBurst,
    make_fault_storm,
)
from repro.sim.clock import SimClock


def _provider(clock, faults=None, fault_rate=0.0):
    return SimulatedProvider(
        name="p1",
        clock=clock,
        latency=LatencyModel(rtt=0.05, upload_bw=5e6, download_bw=5e6),
        pricing=PRICE_PLANS["aliyun"],
        fault_rate=fault_rate,
        faults=faults,
    )


class TestEffectWindows:
    def test_window_validation(self):
        with pytest.raises(ValueError):
            TransientErrorBurst(-1.0, 10.0, rate=0.1)
        with pytest.raises(ValueError):
            TransientErrorBurst(5.0, 5.0, rate=0.1)
        with pytest.raises(ValueError):
            TransientErrorBurst(0.0, 10.0, rate=1.0)

    def test_burst_active_only_inside_window(self):
        burst = TransientErrorBurst(10.0, 20.0, rate=0.5)
        assert burst.extra_fault_rate(9.9) == 0.0
        assert burst.extra_fault_rate(10.0) == 0.5
        assert burst.extra_fault_rate(19.9) == 0.5
        assert burst.extra_fault_rate(20.0) == 0.0

    def test_throttling_is_a_burst(self):
        t = Throttling(0.0, 5.0, rate=0.2)
        assert t.extra_fault_rate(1.0) == 0.2

    def test_brownout_validation_and_factors(self):
        with pytest.raises(ValueError):
            LatencyBrownout(0.0, 1.0, rtt_factor=0.5)
        with pytest.raises(ValueError):
            LatencyBrownout(0.0, 1.0, bw_factor=0.0)
        b = LatencyBrownout(0.0, 10.0, rtt_factor=4.0, bw_factor=0.25)
        assert b.latency_factors(5.0) == (4.0, 0.25)
        assert b.latency_factors(10.0) == (1.0, 1.0)

    def test_flapping_duty_cycle(self):
        f = FlappingOutage(100.0, 400.0, period=60.0, downtime=20.0)
        assert not f.is_out(99.0)  # before the window
        assert f.is_out(100.0)  # first downtime
        assert f.is_out(119.9)
        assert not f.is_out(120.0)  # up for the rest of the cycle
        assert f.is_out(160.0)  # next cycle's downtime
        assert not f.is_out(400.0)  # window over

    def test_flapping_next_up(self):
        f = FlappingOutage(0.0, 600.0, period=60.0, downtime=20.0)
        assert f.next_up(5.0) == pytest.approx(20.0)
        assert f.next_up(30.0) == 30.0  # already up
        assert f.next_up(65.0) == pytest.approx(80.0)

    def test_flapping_validation(self):
        with pytest.raises(ValueError):
            FlappingOutage(0.0, 10.0, period=0.0, downtime=1.0)
        with pytest.raises(ValueError):
            FlappingOutage(0.0, 10.0, period=10.0, downtime=10.0)


class TestFaultProfile:
    def test_rates_compose_independently(self):
        profile = FaultProfile(
            [
                TransientErrorBurst(0.0, 10.0, rate=0.5),
                Throttling(0.0, 10.0, rate=0.5),
            ]
        )
        assert profile.extra_fault_rate(5.0) == pytest.approx(0.75)
        assert profile.extra_fault_rate(15.0) == 0.0

    def test_latency_factors_compound(self):
        profile = FaultProfile(
            [
                LatencyBrownout(0.0, 10.0, rtt_factor=2.0, bw_factor=0.5),
                LatencyBrownout(0.0, 10.0, rtt_factor=3.0, bw_factor=0.5),
            ]
        )
        assert profile.latency_factors(5.0) == (6.0, 0.25)

    def test_is_out_any_effect(self):
        profile = FaultProfile(
            [FlappingOutage(0.0, 100.0, period=50.0, downtime=10.0)]
        )
        assert profile.is_out(5.0)
        assert not profile.is_out(20.0)

    def test_empty_profile_is_falsy(self):
        assert not FaultProfile()
        assert FaultProfile([TransientErrorBurst(0.0, 1.0, rate=0.1)])

    def test_corruption_flips_exactly_one_byte(self):
        profile = FaultProfile(
            [SilentCorruption(0.0, 10.0, rate=1.0)], seed=3
        ).bind("p1")
        data = bytes(range(256))
        corrupted = profile.maybe_corrupt(data, 5.0)
        assert corrupted != data
        assert len(corrupted) == len(data)
        diffs = [i for i in range(len(data)) if corrupted[i] != data[i]]
        assert len(diffs) == 1

    def test_corruption_outside_window_is_identity(self):
        profile = FaultProfile(
            [SilentCorruption(0.0, 10.0, rate=1.0)], seed=3
        ).bind("p1")
        data = b"hello"
        assert profile.maybe_corrupt(data, 20.0) == data

    def test_corruption_deterministic_per_seed(self):
        data = bytes(64)
        outs = []
        for _ in range(2):
            profile = FaultProfile(
                [SilentCorruption(0.0, 10.0, rate=1.0)], seed=9
            ).bind("p1")
            outs.append(profile.maybe_corrupt(data, 1.0))
        assert outs[0] == outs[1]

    def test_bind_gives_independent_streams_per_provider(self):
        data = bytes(4096)
        a = FaultProfile([SilentCorruption(0.0, 10.0, rate=1.0)], seed=9).bind("a")
        b = FaultProfile([SilentCorruption(0.0, 10.0, rate=1.0)], seed=9).bind("b")
        assert a.maybe_corrupt(data, 1.0) != b.maybe_corrupt(data, 1.0)


class TestProviderIntegration:
    def test_flapping_outage_gates_availability(self):
        clock = SimClock()
        provider = _provider(
            clock,
            faults=FaultProfile(
                [FlappingOutage(0.0, 300.0, period=60.0, downtime=20.0)]
            ),
        )
        assert not provider.is_available()
        clock.advance(25.0)
        assert provider.is_available()

    def test_burst_layers_onto_base_fault_rate(self):
        clock = SimClock()
        provider = _provider(
            clock,
            faults=FaultProfile([TransientErrorBurst(0.0, 100.0, rate=0.5)]),
            fault_rate=0.2,
        )
        assert provider._effective_fault_rate(50.0) == pytest.approx(0.6)
        assert provider._effective_fault_rate(150.0) == pytest.approx(0.2)

    def test_brownout_degrades_effective_latency(self):
        clock = SimClock()
        provider = _provider(
            clock,
            faults=FaultProfile(
                [LatencyBrownout(0.0, 100.0, rtt_factor=4.0, bw_factor=0.5)]
            ),
        )
        lat = provider.effective_latency()
        assert lat.rtt == pytest.approx(provider.latency.rtt * 4.0)
        assert lat.download_bw == pytest.approx(provider.latency.download_bw * 0.5)
        clock.advance(200.0)
        assert provider.effective_latency() is provider.latency

    def test_silent_corruption_garbles_get_not_store(self):
        clock = SimClock()
        provider = _provider(
            clock,
            faults=FaultProfile([SilentCorruption(0.0, 100.0, rate=1.0)], seed=1),
        )
        provider.create("c", exist_ok=True)
        provider.put("c", "k", b"payload-bytes")
        got = provider.get("c", "k")
        assert got != b"payload-bytes"  # returned copy corrupted
        assert provider.store.get("c", "k").data == b"payload-bytes"  # at rest intact


class TestScenario:
    def test_apply_and_clear(self):
        clock = SimClock()
        fleet = make_table2_cloud_of_clouds(clock)
        storm = make_fault_storm(t0=0.0, duration=600.0, seed=4)
        storm.apply(fleet)
        assert fleet["aliyun"].faults is not None  # brownout
        assert fleet["azure"].faults is not None  # burst + throttle
        assert not fleet["rackspace"].is_available()  # flapper starts down
        storm.clear(fleet)
        assert fleet["aliyun"].faults is None
        assert fleet["rackspace"].is_available()

    def test_apply_unknown_provider_raises(self):
        clock = SimClock()
        fleet = make_table2_cloud_of_clouds(clock)
        scenario = FaultScenario(
            "bad", {"nonesuch": FaultProfile([TransientErrorBurst(0.0, 1.0, rate=0.1)])}
        )
        with pytest.raises(KeyError):
            scenario.apply(fleet)

    def test_storm_with_corruption_provider(self):
        storm = make_fault_storm(corruption_provider="amazon_s3")
        assert "amazon_s3" in storm.profiles
        assert storm.profiles["amazon_s3"].corruption_rate(1.0) == pytest.approx(0.2)


class TestDowntimeWindows:
    """``downtime_windows`` is the SLO tracker's ground truth: the union of
    every down-taking effect's sub-intervals, clipped and coalesced."""

    def test_partition_is_down_for_its_whole_window(self):
        from repro.faults import NetworkPartition

        cut = NetworkPartition(10.0, 50.0)
        assert cut.is_out(10.0) and cut.is_out(49.9)
        assert not cut.is_out(9.9) and not cut.is_out(50.0)
        assert cut.downtime_windows(0.0, 100.0) == [(10.0, 50.0)]
        assert cut.downtime_windows(20.0, 30.0) == [(20.0, 30.0)]  # clipped
        assert cut.downtime_windows(60.0, 100.0) == []

    def test_non_down_effects_contribute_nothing(self):
        burst = TransientErrorBurst(0.0, 100.0, rate=0.5)
        brownout = LatencyBrownout(0.0, 100.0, rtt_factor=4.0)
        profile = FaultProfile([burst, brownout])
        assert burst.downtime_windows(0.0, 100.0) == []
        assert profile.downtime_windows(0.0, 100.0) == []

    def test_overlapping_flap_and_partition_merge(self):
        from repro.faults import NetworkPartition

        # flap down-phases: [0,5) [20,25) [40,45) [60,65) [80,85)
        flap = FlappingOutage(0.0, 100.0, period=20.0, downtime=5.0)
        cut = NetworkPartition(22.0, 62.0)
        profile = FaultProfile([flap, cut])
        # the partition swallows three flap phases and glues onto a fourth
        assert profile.downtime_windows(0.0, 100.0) == [
            (0.0, 5.0),
            (20.0, 65.0),
            (80.0, 85.0),
        ]
        # consistency: every merged instant reports is_out
        for t in (0.0, 4.9, 20.0, 23.0, 50.0, 61.9, 64.9, 80.0):
            assert profile.is_out(t)
        for t in (5.0, 19.9, 65.0, 79.9, 85.0):
            assert not profile.is_out(t)

    def test_partition_reaches_provider_scheduled_downtime(self):
        from repro.faults import NetworkPartition

        clock = SimClock()
        profile = FaultProfile([NetworkPartition(5.0, 15.0)]).bind("p1")
        provider = _provider(clock, faults=profile)
        assert provider.scheduled_downtime(0.0, 100.0) == [(5.0, 15.0)]
        clock.advance(6.0)
        assert not provider.is_available()
        clock.advance(10.0)
        assert provider.is_available()
