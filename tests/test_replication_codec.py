"""Unit tests for the replication pseudo-codec."""

import pytest

from repro.erasure.replication import ReplicationCode


class TestReplication:
    def test_properties(self):
        c = ReplicationCode(3)
        assert c.n == 3
        assert c.k == 1
        assert c.fault_tolerance == 2
        assert c.storage_overhead == pytest.approx(3.0)

    def test_invalid(self):
        with pytest.raises(ValueError):
            ReplicationCode(0)

    def test_encode_copies(self, payload):
        data = payload(100)
        assert ReplicationCode(2).encode(data) == [data, data]

    def test_decode_any_single(self, payload):
        data = payload(64)
        c = ReplicationCode(3)
        frags = c.encode(data)
        for i in range(3):
            assert c.decode({i: frags[i]}, 64) == data

    def test_decode_empty_rejected(self):
        with pytest.raises(ValueError):
            ReplicationCode(2).decode({}, 0)

    def test_size_mismatch_rejected(self, payload):
        c = ReplicationCode(2)
        frags = c.encode(payload(10))
        with pytest.raises(ValueError):
            c.decode({0: frags[0]}, 11)

    def test_fragment_size_is_full(self):
        assert ReplicationCode(2).fragment_size(1234) == 1234

    def test_reconstruct(self, payload):
        data = payload(32)
        c = ReplicationCode(3)
        frags = c.encode(data)
        assert c.reconstruct_fragment({1: frags[1]}, 0, 32) == data
        with pytest.raises(ValueError):
            c.reconstruct_fragment({1: frags[1]}, 5, 32)
