"""Property-based tests: the REST layer agrees with direct provider calls."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cloud.latency import LatencyModel
from repro.cloud.pricing import PRICE_PLANS
from repro.cloud.provider import SimulatedProvider
from repro.cloud.rest import RestAdapter, RestRequest
from repro.sim.clock import SimClock

key_strategy = st.text(
    alphabet=st.sampled_from("abcdef012-_."), min_size=1, max_size=12
).filter(lambda s: s not in (".", ".."))


@st.composite
def rest_script(draw):
    n = draw(st.integers(1, 25))
    ops = []
    for _ in range(n):
        kind = draw(st.sampled_from(["put", "get", "delete", "list"]))
        key = draw(key_strategy)
        body = draw(st.binary(max_size=200))
        ops.append((kind, key, body))
    return ops


def _fresh_adapter() -> RestAdapter:
    provider = SimulatedProvider(
        name="p",
        clock=SimClock(),
        latency=LatencyModel(rtt=0.01, upload_bw=1e6, download_bw=1e6),
        pricing=PRICE_PLANS["aliyun"],
    )
    return RestAdapter(provider)


class TestRestAgainstModel:
    @given(script=rest_script())
    @settings(max_examples=60, deadline=None)
    def test_matches_dict_model(self, script):
        adapter = _fresh_adapter()
        assert adapter.execute(RestRequest("PUT", "/c")).status == 201
        model: dict[str, bytes] = {}
        for kind, key, body in script:
            if kind == "put":
                resp = adapter.execute(RestRequest("PUT", f"/c/{key}", body))
                assert resp.status == 200
                model[key] = body
            elif kind == "get":
                resp = adapter.execute(RestRequest("GET", f"/c/{key}"))
                if key in model:
                    assert resp.status == 200
                    assert resp.body == model[key]
                else:
                    assert resp.status == 404
            elif kind == "delete":
                resp = adapter.execute(RestRequest("DELETE", f"/c/{key}"))
                if key in model:
                    assert resp.status == 204
                    del model[key]
                else:
                    assert resp.status == 404
            elif kind == "list":
                resp = adapter.execute(RestRequest("GET", "/c"))
                assert resp.status == 200
                listed = resp.body.decode().split("\n") if resp.body else []
                assert listed == sorted(model)

    @given(script=rest_script())
    @settings(max_examples=30, deadline=None)
    def test_version_header_tracks_object_lifetime(self, script):
        """Versions count puts since the object's creation; deletion resets."""
        adapter = _fresh_adapter()
        adapter.execute(RestRequest("PUT", "/c"))
        versions: dict[str, int] = {}
        for kind, key, body in script:
            if kind == "put":
                resp = adapter.execute(RestRequest("PUT", f"/c/{key}", body))
                versions[key] = versions.get(key, 0) + 1
                assert resp.headers["x-version"] == str(versions[key])
            elif kind == "delete":
                resp = adapter.execute(RestRequest("DELETE", f"/c/{key}"))
                if resp.status == 204:
                    versions.pop(key, None)
