"""Critical-path attribution: taxonomy, exact coverage, exemplars, observatory.

Scripted span trees pin the sweep's classification rules one case at a time
(queueing before the first cloud interval, retry sleeps over their request,
maintenance over everything, losing hedge legs as hedge_wait); real traced
runs then machine-check the exact-coverage invariant at fig3 scale — the
acceptance criterion: attributed phase durations sum to each op's span
duration for every op in the deterministic replay.
"""

from types import SimpleNamespace

import pytest

from repro.metrics.registry import MetricsRegistry
from repro.obs.attribution import (
    PHASES,
    AttributionReport,
    ExemplarStore,
    OpAttribution,
    ProviderLoadObservatory,
    attribute_trace,
    attributions_to_jsonl,
    parse_attribution_jsonl,
    render_attribution,
)

KB, MB = 1024, 1024 * 1024


def span(id, parent, name, start, end, **attrs):
    return {
        "t": "span", "id": id, "parent": parent, "name": name,
        "start": start, "end": end, "attrs": attrs,
    }


def event(name, time, **attrs):
    return {"t": "event", "name": name, "time": time, "attrs": attrs}


def root(id, start, end, op="get", path="/f", **attrs):
    base = {"op": op, "path": path, "elapsed": end - start, "hedged": False,
            "degraded": False}
    base.update(attrs)
    return span(id, None, f"op.{op}", start, end, **base)


def one(records):
    report = attribute_trace(records)
    assert len(report.ops) == 1
    return report.ops[0]


class TestSweepClassification:
    def test_plain_request_with_lead_in_and_tail(self):
        o = one([
            span(2, 1, "request", 12.0, 18.0, provider="s3", kind="get", ok=True),
            root(1, 10.0, 20.0),
        ])
        assert o.phases["queueing"] == pytest.approx(2.0)
        assert o.phases["transfer"] == pytest.approx(6.0)
        # Uncovered time *after* the first cloud interval is client-side
        # serialization, not queueing.
        assert o.phases["other"] == pytest.approx(2.0)
        assert o.providers == {"s3": pytest.approx(6.0)}
        assert o.coverage_error == pytest.approx(0.0, abs=1e-12)

    def test_retry_sleep_outranks_its_request(self):
        o = one([
            span(2, 1, "retry.wait", 3.0, 5.0, provider="s3", attempt=0),
            span(3, 1, "request", 0.0, 10.0, provider="s3", kind="put",
                 ok=True, attempts=2),
            root(1, 0.0, 10.0, op="put"),
        ])
        assert o.phases["retry_backoff"] == pytest.approx(2.0)
        assert o.phases["transfer"] == pytest.approx(8.0)
        assert o.retries == 1

    def test_maintenance_outranks_everything(self):
        o = one([
            span(3, 2, "request", 1.0, 4.0, provider="s3", kind="put", ok=True),
            span(2, 1, "heal.replay", 0.0, 5.0, provider="s3"),
            span(4, 1, "request", 5.0, 9.0, provider="azure", kind="get", ok=True),
            root(1, 0.0, 9.0),
        ])
        assert o.phases["maintenance"] == pytest.approx(5.0)
        assert o.phases["transfer"] == pytest.approx(4.0)
        assert o.providers == {"azure": pytest.approx(4.0)}

    def test_concurrent_requests_attribute_to_the_latest_finisher(self):
        # Both legs of a striped phase overlap; the one that gates the phase
        # (latest finish) owns the shared segment.
        o = one([
            span(2, 1, "request", 0.0, 3.0, provider="fast", kind="put", ok=True),
            span(3, 1, "request", 0.0, 8.0, provider="slow", kind="put", ok=True),
            root(1, 0.0, 8.0, op="put"),
        ])
        assert o.phases["transfer"] == pytest.approx(8.0)
        assert o.providers == {"slow": pytest.approx(8.0)}

    def test_zero_duration_markers_are_counted_not_timed(self):
        o = one([
            span(2, 1, "dispatch.decide", 0.0, 0.0, size=4096),
            span(3, 1, "codec.encode", 0.0, 0.0, codec="RSCodec", size=4096),
            span(4, 1, "breaker.fast_fail", 0.0, 0.0, provider="s3", kind="put"),
            span(5, 1, "request", 0.0, 4.0, provider="azure", kind="put", ok=True),
            root(1, 0.0, 4.0, op="put"),
        ])
        assert o.fast_fails == 1
        assert o.phases["codec_cpu"] == 0.0
        assert o.phases["transfer"] == pytest.approx(4.0)

    def test_spans_clip_to_the_op_window(self):
        # A request recorded past the root's close (clock quirks in quorum
        # schemes) must not create negative "other" time.
        o = one([
            span(2, 1, "request", 8.0, 14.0, provider="s3", kind="get", ok=True),
            root(1, 10.0, 12.0),
        ])
        assert o.phases["transfer"] == pytest.approx(2.0)
        assert sum(o.phases.values()) == pytest.approx(o.duration)

    def test_op_error_roots_are_skipped(self):
        report = attribute_trace([
            span(1, None, "op.error", 0.0, 5.0, outcome="error"),
            root(2, 5.0, 6.0),
        ])
        assert len(report.ops) == 1
        assert report.ops[0].trace_id == 2

    def test_rejects_span_ending_before_start(self):
        with pytest.raises(ValueError, match="ends before it starts"):
            attribute_trace([span(1, None, "op.get", 5.0, 4.0)])


class TestHedgeClassification:
    def _hedged(self, *, backup_wins):
        # Primary fired at t=0, hedge at t=2; backup span is recorded at its
        # true offset.  Winner decides which leg the sweep calls hedge_wait.
        recs = [
            span(2, 1, "request", 0.0, 6.0 if backup_wins else 3.0,
                 provider="p", kind="get", ok=True),
            event("hedge.fired", 0.0, primary="p", backup="b", delay=2.0),
            span(3, 1, "request", 2.0, 5.0 if backup_wins else 7.0,
                 provider="b", kind="get", ok=True),
        ]
        if backup_wins:
            recs.append(event("hedge.win", 5.0, provider="b"))
            recs.append(event("hedge.wasted", 5.0, provider="p", wasted=5.0))
            recs.append(root(1, 0.0, 5.0, hedged=True))
        else:
            recs.append(event("hedge.wasted", 3.0, provider="b", wasted=1.0))
            recs.append(root(1, 0.0, 3.0, hedged=True))
        return one(recs)

    def test_backup_wins_primary_leg_is_hedge_wait(self):
        o = self._hedged(backup_wins=True)
        # [0,2] covered only by the losing primary; [2,5] the winner overrides.
        assert o.phases["hedge_wait"] == pytest.approx(2.0)
        assert o.phases["transfer"] == pytest.approx(3.0)
        assert o.providers == {"b": pytest.approx(3.0)}
        assert o.hedge_wasted == {"p": pytest.approx(5.0)}
        assert o.hedged

    def test_primary_wins_backup_leg_is_hedge_wait(self):
        o = self._hedged(backup_wins=False)
        # The backup (no hedge.win) is the loser; it only covers beyond the
        # primary inside [2,3], where the winning primary still overrides.
        assert o.phases["hedge_wait"] == pytest.approx(0.0)
        assert o.phases["transfer"] == pytest.approx(3.0)
        assert o.providers == {"p": pytest.approx(3.0)}
        assert o.hedge_wasted == {"b": pytest.approx(1.0)}

    def test_wasted_time_is_off_path(self):
        o = self._hedged(backup_wins=True)
        # hedge_wasted is NOT part of the coverage partition.
        assert sum(o.phases.values()) == pytest.approx(o.duration)
        assert o.hedge_wasted_total == pytest.approx(5.0)


class TestRecordsRoundTrip:
    def _ops(self):
        recs = [
            span(2, 1, "request", 0.25, 1.75, provider="s3", kind="get", ok=True),
            root(1, 0.0, 2.0),
            span(4, 3, "request", 2.0, 2.125, provider="azure", kind="put", ok=True),
            root(3, 2.0, 2.5, op="put", path="/g"),
        ]
        return attribute_trace(recs).ops

    def test_jsonl_round_trip_is_byte_identical(self, tmp_path):
        ops = self._ops()
        text = attributions_to_jsonl(ops)
        reloaded = parse_attribution_jsonl(text.splitlines())
        assert reloaded == ops
        assert attributions_to_jsonl(reloaded) == text
        p = tmp_path / "attr.jsonl"
        p.write_text(text + "\n", encoding="utf-8")
        from repro.obs.attribution import read_attribution_jsonl

        assert read_attribution_jsonl(p) == ops

    def test_parse_rejects_foreign_records(self):
        with pytest.raises(ValueError, match="not an attribution record"):
            parse_attribution_jsonl(['{"t":"span","id":1}'])

    def test_dominant_phase(self):
        get_op, put_op = self._ops()
        assert get_op.dominant_phase() == "transfer"  # 1.5s of a 2.0s window
        assert put_op.dominant_phase() == "other"     # 0.375s tail beats 0.125s wire


class TestReportAggregates:
    def test_totals_shares_and_digest(self):
        a = OpAttribution(
            trace_id=1, op="get", path="/a", start=0.0, duration=3.0,
            phases={**{p: 0.0 for p in PHASES}, "transfer": 3.0},
            providers={"s3": 3.0}, requests=1, retries=0, fast_fails=0,
            hedged=False, degraded=False, hedge_wasted={}, coverage_error=0.0,
        )
        b = OpAttribution(
            trace_id=2, op="put", path="/b", start=3.0, duration=1.0,
            phases={**{p: 0.0 for p in PHASES}, "transfer": 0.5,
                    "retry_backoff": 0.5},
            providers={"azure": 0.5}, requests=1, retries=1, fast_fails=0,
            hedged=False, degraded=False, hedge_wasted={"s3": 0.25},
            coverage_error=0.0,
        )
        rep = AttributionReport(ops=[a, b])
        assert rep.total_duration() == pytest.approx(4.0)
        assert rep.totals()["transfer"] == pytest.approx(3.5)
        assert rep.shares()["retry_backoff"] == pytest.approx(0.125)
        assert rep.by_op()["put"]["count"] == 1
        assert rep.hedge_wasted_totals() == {"s3": pytest.approx(0.25)}
        assert [o.trace_id for o in rep.top_slow(1)] == [1]
        text = render_attribution(rep, top=2)
        assert "Critical-path attribution" in text
        assert "retry_backoff" in text

    def test_empty_report_renders(self):
        assert "no completed ops" in render_attribution(
            AttributionReport(ops=[])
        )


class TestExemplarStore:
    def test_first_n_per_bucket_retained(self):
        store = ExemplarStore(per_bucket=2)
        lat = 0.3  # all three land in the same bucket
        assert store.record("get", lat, 1)
        assert store.record("get", lat, 2)
        assert not store.record("get", lat, 3)
        assert store.lookup("get", lat) == [1, 2]
        # Different op kind and different bucket are separate cells.
        assert store.record("put", lat, 4)
        assert store.record("get", 100.0, 5)
        ex = store.exemplars()
        assert set(ex) == {"get", "put"}
        assert store.bucket_label(1e9) == "le=+inf"

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            ExemplarStore(per_bucket=0)


def outcome(provider, finish):
    return SimpleNamespace(op=SimpleNamespace(provider=provider), finish=finish)


class TestObservatoryMath:
    def test_service_rate_and_busy(self):
        obs = ProviderLoadObservatory(alpha=1.0)  # no smoothing: exact values
        obs.on_phase(0.0, [outcome("s3", 0.5)])
        obs.on_phase(1.0, [outcome("s3", 0.25)])
        snap = obs.snapshot()["s3"]
        assert snap["service_rate"] == pytest.approx(4.0)
        assert snap["busy_s"] == pytest.approx(0.75)
        assert snap["requests"] == 2.0

    def test_littles_law_queue_depth(self):
        obs = ProviderLoadObservatory(alpha=1.0)
        # One request per second, each taking 0.5 s => L = lambda * W = 0.5.
        for t in range(5):
            obs.on_phase(float(t), [outcome("s3", 0.5)])
        assert obs.queue_depth("s3") == pytest.approx(0.5)
        assert obs.queue_depth("unknown") == 0.0

    def test_fast_fails_do_not_count_as_inflight(self):
        obs = ProviderLoadObservatory(alpha=1.0)
        obs.on_phase(0.0, [outcome("s3", 0.0), outcome("s3", 1.0)])
        assert obs.snapshot()["s3"]["peak_inflight"] == 1.0

    def test_gauges_published_into_registry(self):
        registry = MetricsRegistry()
        obs = ProviderLoadObservatory(alpha=1.0)
        obs.bind(registry, SimpleNamespace(now=0.0))
        obs.on_phase(0.0, [outcome("s3", 0.5), outcome("s3", 0.5)])
        obs.on_phase(1.0, [outcome("s3", 0.5)])
        g = registry.gauge
        assert g("provider_load_inflight", provider="s3").value == 1.0
        assert g("provider_load_busy_seconds", provider="s3").value == pytest.approx(1.5)
        assert g("provider_load_service_rate", provider="s3").value == pytest.approx(2.0)
        assert g("provider_load_queue_depth", provider="s3").value > 0.0

    def test_latency_vs_load_curve_feeds_health(self):
        from repro.core.resilience import ProviderHealth

        health = ProviderHealth("s3")
        obs = ProviderLoadObservatory(alpha=1.0)
        obs.bind(MetricsRegistry(), SimpleNamespace(now=0.0), {"s3": health})
        obs.on_phase(0.0, [outcome("s3", 0.2)])
        obs.on_phase(1.0, [outcome("s3", 0.4), outcome("s3", 0.6)])
        curve = obs.latency_vs_load("s3")
        assert [c[0] for c in curve] == [1, 2]
        assert curve[1][1] == pytest.approx(0.5)  # mean at concurrency 2
        assert health.load_curve == curve
        assert health.expected_latency_at(2) == pytest.approx(0.5)
        assert health.expected_latency_at(100) == pytest.approx(0.5)
        assert ProviderHealth("idle").expected_latency_at(1) is None

    def test_rejects_bad_alpha(self):
        with pytest.raises(ValueError):
            ProviderLoadObservatory(alpha=0.0)


class TestTracedRuns:
    """Real scheme traffic: invariants over live traces."""

    def _traced_hyrd(self):
        from repro.cloud.provider import make_table2_cloud_of_clouds
        from repro.obs import RecordingTracer
        from repro.schemes import HyrdScheme
        from repro.sim.clock import SimClock

        clock = SimClock()
        fleet = make_table2_cloud_of_clouds(clock)
        tracer = RecordingTracer(clock)
        return HyrdScheme(list(fleet.values()), clock, tracer=tracer), fleet

    def test_exact_coverage_and_dispatch_marker(self):
        import numpy as np

        scheme, _ = self._traced_hyrd()
        rng = np.random.default_rng(7)
        for i in range(6):
            size = 64 * KB if i % 2 else 2 * MB
            scheme.put(f"/d/f{i}", rng.integers(0, 256, size, dtype=np.uint8).tobytes())
            scheme.get(f"/d/f{i}")
        report = attribute_trace(scheme.tracer.records)
        assert report.ops
        for o in report.ops:
            assert sum(o.phases.values()) == pytest.approx(o.duration, abs=1e-9)
        # HyRD put roots carry the dispatcher's zero-duration decide marker.
        names = {r["name"] for r in scheme.tracer.records if r.get("t") == "span"}
        assert "dispatch.decide" in names

    def test_fig3_scale_replay_exact_coverage(self):
        """The acceptance gate: every op in the deterministic fig3-scale
        replay decomposes with phase durations summing to its span duration
        (attribute_trace raises CoverageError on any real gap)."""
        import importlib.util
        from pathlib import Path

        spec = importlib.util.spec_from_file_location(
            "profile_replay",
            Path(__file__).resolve().parent.parent / "tools" / "profile_replay.py",
        )
        mod = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(mod)

        scheme, ops, replayer = mod.build_replay(
            "hyrd", months=12, writes_per_month=12, seed=0, trace=True
        )
        replayer.run(scheme, ops)
        report = attribute_trace(scheme.tracer.records)
        assert len(report.ops) >= len(ops) // 2
        worst = max(abs(o.coverage_error) for o in report.ops)
        assert worst <= 1e-9 * max(
            1.0, max(o.duration for o in report.ops)
        )
        # Attributed transfer must dominate a clean (fault-free) replay.
        assert report.shares()["transfer"] > 0.9

    def test_run_report_renders_attribution_section(self):
        import numpy as np

        from repro.obs import RunReport

        scheme, _ = self._traced_hyrd()
        rng = np.random.default_rng(3)
        scheme.put("/d/a", rng.integers(0, 256, 128 * KB, dtype=np.uint8).tobytes())
        scheme.get("/d/a")
        text = RunReport.from_scheme(scheme).render()
        assert "Critical-path attribution" in text
