"""Unit tests for shard framing."""

import numpy as np
import pytest

from repro.erasure.striping import join_shards, shard_length, split_shards


class TestShardLength:
    @pytest.mark.parametrize(
        "size,k,expected",
        [(0, 3, 0), (1, 3, 1), (3, 3, 1), (4, 3, 2), (100, 7, 15), (100, 1, 100)],
    )
    def test_ceil_division(self, size, k, expected):
        assert shard_length(size, k) == expected

    def test_invalid(self):
        with pytest.raises(ValueError):
            shard_length(-1, 3)
        with pytest.raises(ValueError):
            shard_length(10, 0)


class TestSplitJoin:
    def test_roundtrip(self, payload):
        data = payload(1000)
        shards = split_shards(data, 3)
        assert shards.shape == (3, 334)
        assert join_shards(shards, 1000) == data

    def test_exact_multiple(self, payload):
        data = payload(300)
        shards = split_shards(data, 3)
        assert shards.shape == (3, 100)
        assert join_shards(shards, 300) == data

    def test_empty_payload(self):
        shards = split_shards(b"", 4)
        assert shards.shape == (4, 0)
        assert join_shards(shards, 0) == b""

    def test_padding_is_zero(self):
        shards = split_shards(b"\xff", 2)
        assert shards[0, 0] == 0xFF
        assert shards[1, 0] == 0x00

    def test_join_rejects_oversized_claim(self):
        shards = split_shards(b"abc", 2)
        with pytest.raises(ValueError):
            join_shards(shards, 100)

    def test_join_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            join_shards(np.zeros(4, dtype=np.uint8), 4)

    def test_single_shard(self, payload):
        data = payload(57)
        shards = split_shards(data, 1)
        assert shards.shape == (1, 57)
        assert join_shards(shards, 57) == data
