"""Property-based tests: scheme round-trips under random op sequences and
outage patterns.

Every scheme must preserve content through arbitrary interleavings of
put/get/update/remove, with providers dropping in and out of availability —
the simulator-level statement of the paper's availability guarantee
(as long as concurrent outages stay within each scheme's fault tolerance).
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cloud.outage import OutageWindow
from repro.cloud.provider import make_table2_cloud_of_clouds
from repro.schemes import (
    DepSkyCAScheme,
    DepSkyScheme,
    DuraCloudScheme,
    HyrdScheme,
    NCCloudScheme,
    RacsScheme,
)
from repro.sim.clock import SimClock

SCHEME_BUILDERS = {
    "duracloud": lambda p, c: DuraCloudScheme(
        [p["amazon_s3"], p["azure"]], c
    ),
    "racs": lambda p, c: RacsScheme(list(p.values()), c),
    "depsky": lambda p, c: DepSkyScheme(list(p.values()), c),
    "depsky-ca": lambda p, c: DepSkyCAScheme(list(p.values()), c),
    "nccloud": lambda p, c: NCCloudScheme(list(p.values()), c),
    "hyrd": lambda p, c: HyrdScheme(list(p.values()), c),
}

# The provider each scheme can afford to lose (within fault tolerance).
TOLERABLE_LOSS = {
    "duracloud": "azure",
    "racs": "aliyun",
    "depsky": "aliyun",
    "depsky-ca": "aliyun",
    "nccloud": "aliyun",
    "hyrd": "azure",
}

op_kinds = st.sampled_from(["put", "get", "update", "remove"])


@st.composite
def op_sequence(draw):
    n = draw(st.integers(2, 10))
    ops = []
    for _ in range(n):
        ops.append(
            (
                draw(op_kinds),
                draw(st.integers(0, 2)),  # file slot
                draw(st.integers(0, 40_000)),  # size / patch size
                draw(st.integers(0, 10_000)),  # offset
            )
        )
    return ops


def _run_model(scheme_name, ops, outage_slots):
    """Run ops against the scheme and a dict model; compare at every get."""
    clock = SimClock()
    providers = make_table2_cloud_of_clouds(clock)
    scheme = SCHEME_BUILDERS[scheme_name](providers, clock)
    lost = TOLERABLE_LOSS[scheme_name]
    rng = np.random.default_rng(0)
    model: dict[str, bytes] = {}

    for step, (kind, slot, size, offset) in enumerate(ops):
        if step in outage_slots:
            if providers[lost].is_available():
                providers[lost].outages.add(
                    OutageWindow(clock.now, clock.now + 120.0)
                )
        path = f"/p/f{slot}"
        if kind == "put":
            data = rng.integers(0, 256, size, dtype=np.uint8).tobytes()
            scheme.put(path, data)
            model[path] = data
        elif kind == "get":
            if path in model:
                got, _ = scheme.get(path)
                assert got == model[path]
        elif kind == "update":
            if path in model:
                patch = rng.integers(0, 256, size % 4096, dtype=np.uint8).tobytes()
                off = offset % (len(model[path]) + 1)
                scheme.update(path, off, patch)
                old = model[path]
                buf = bytearray(max(len(old), off + len(patch)))
                buf[: len(old)] = old
                buf[off : off + len(patch)] = patch
                model[path] = bytes(buf)
        elif kind == "remove":
            if path in model:
                scheme.remove(path)
                del model[path]

    # Let the lost provider return, heal, and verify the final state.
    clock.advance(7200.0)
    scheme.heal_returned()
    for path, data in model.items():
        got, report = scheme.get(path)
        assert got == data
        assert not report.degraded
    assert len(scheme.pending_log(lost)) == 0


class TestSchemeRoundTripProperties:
    @given(ops=op_sequence(), outages=st.sets(st.integers(0, 9), max_size=2))
    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_duracloud(self, ops, outages):
        _run_model("duracloud", ops, outages)

    @given(ops=op_sequence(), outages=st.sets(st.integers(0, 9), max_size=2))
    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_racs(self, ops, outages):
        _run_model("racs", ops, outages)

    @given(ops=op_sequence(), outages=st.sets(st.integers(0, 9), max_size=2))
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_hyrd(self, ops, outages):
        _run_model("hyrd", ops, outages)

    @given(ops=op_sequence(), outages=st.sets(st.integers(0, 9), max_size=2))
    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_depsky(self, ops, outages):
        _run_model("depsky", ops, outages)

    @given(ops=op_sequence(), outages=st.sets(st.integers(0, 9), max_size=2))
    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_nccloud(self, ops, outages):
        _run_model("nccloud", ops, outages)

    @given(ops=op_sequence(), outages=st.sets(st.integers(0, 9), max_size=2))
    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_depsky_ca(self, ops, outages):
        _run_model("depsky-ca", ops, outages)


def _run_scheduled(scheme_name, ops, slow_factor):
    """One scheduled run under a brownout; returns its full observable trail.

    The trail is every op report (timings, byte counts, provider subsets)
    plus the final clock reading and the scheduler's decision counter —
    everything an identical rerun must reproduce bit-for-bit.
    """
    from repro.core.scheduling import FragmentScheduler
    from repro.faults.profile import FaultProfile, LatencyBrownout
    from repro.obs import ProviderLoadObservatory

    clock = SimClock()
    providers = make_table2_cloud_of_clouds(clock)
    scheme = SCHEME_BUILDERS[scheme_name](providers, clock)
    scheme.attach_observatory(ProviderLoadObservatory())
    scheme.attach_scheduler(FragmentScheduler())
    slow = TOLERABLE_LOSS[scheme_name]
    providers[slow].faults = FaultProfile(
        [
            LatencyBrownout(
                clock.now,
                clock.now + 1e9,
                rtt_factor=slow_factor,
                bw_factor=1.0 / slow_factor,
            )
        ]
    ).bind(slow)
    rng = np.random.default_rng(0)
    model: dict[str, bytes] = {}

    for kind, slot, size, offset in ops:
        path = f"/p/f{slot}"
        if kind == "put":
            data = rng.integers(0, 256, size, dtype=np.uint8).tobytes()
            scheme.put(path, data)
            model[path] = data
        elif kind == "get":
            if path in model:
                got, _ = scheme.get(path)
                assert got == model[path], "scheduled read corrupted payload"
        elif kind == "update":
            if path in model:
                patch = rng.integers(0, 256, size % 4096, dtype=np.uint8).tobytes()
                off = offset % (len(model[path]) + 1)
                scheme.update(path, off, patch)
                old = model[path]
                buf = bytearray(max(len(old), off + len(patch)))
                buf[: len(old)] = old
                buf[off : off + len(patch)] = patch
                model[path] = bytes(buf)
        elif kind == "remove":
            if path in model:
                scheme.remove(path)
                del model[path]

    trail = [
        (
            r.op,
            r.path,
            r.elapsed,
            r.bytes_up,
            r.bytes_down,
            r.cloud_ops,
            tuple(sorted(r.providers)),
        )
        for r in scheme.collector.reports
    ]
    return trail, clock.now, scheme.registry.counter_value("sched_decisions_total")


class TestSchedulerDeterminism:
    """Same seed + same health evolution => the scheduler picks identical
    fragment subsets and every payload round-trips byte-identically, for
    every scheme.  No RNG hides in the decision path: the rotation counter,
    the health EWMAs and the observatory queue estimates all evolve
    deterministically from the op sequence."""

    @pytest.mark.parametrize("scheme_name", sorted(SCHEME_BUILDERS))
    @given(ops=op_sequence(), slow_factor=st.sampled_from([2.0, 8.0]))
    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_scheduled_runs_replay_identically(self, scheme_name, ops, slow_factor):
        first = _run_scheduled(scheme_name, ops, slow_factor)
        second = _run_scheduled(scheme_name, ops, slow_factor)
        assert first == second
