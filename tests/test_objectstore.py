"""Unit tests for the in-memory object store."""

import pytest

from repro.cloud.errors import ContainerExists, NoSuchContainer, NoSuchObject
from repro.cloud.objectstore import ObjectStore


@pytest.fixture
def store():
    s = ObjectStore()
    s.create_container("c")
    return s


class TestContainers:
    def test_create_and_has(self, store):
        assert store.has_container("c")
        assert not store.has_container("other")

    def test_duplicate_create_rejected(self, store):
        with pytest.raises(ContainerExists):
            store.create_container("c")

    def test_exist_ok(self, store):
        store.create_container("c", exist_ok=True)

    def test_containers_sorted(self, store):
        store.create_container("b")
        store.create_container("a")
        assert store.containers() == ["a", "b", "c"]

    def test_missing_container_raises(self, store):
        with pytest.raises(NoSuchContainer):
            store.list("nope")
        with pytest.raises(NoSuchContainer):
            store.put("nope", "k", b"", 0.0)


class TestObjects:
    def test_put_get_roundtrip(self, store):
        store.put("c", "k", b"hello", 1.0)
        obj = store.get("c", "k")
        assert obj.data == b"hello"
        assert obj.version == 1
        assert obj.created == 1.0
        assert obj.modified == 1.0

    def test_overwrite_bumps_version_keeps_created(self, store):
        store.put("c", "k", b"v1", 1.0)
        obj = store.put("c", "k", b"v2", 2.0)
        assert obj.version == 2
        assert obj.created == 1.0
        assert obj.modified == 2.0
        assert store.get("c", "k").data == b"v2"

    def test_get_missing(self, store):
        with pytest.raises(NoSuchObject):
            store.get("c", "nope")

    def test_remove(self, store):
        store.put("c", "k", b"x", 0.0)
        removed = store.remove("c", "k")
        assert removed.data == b"x"
        assert not store.has("c", "k")
        with pytest.raises(NoSuchObject):
            store.remove("c", "k")

    def test_list_sorted(self, store):
        for key in ("z", "a", "m"):
            store.put("c", key, b"", 0.0)
        assert store.list("c") == ["a", "m", "z"]

    def test_put_copies_input(self, store):
        data = bytearray(b"abc")
        store.put("c", "k", bytes(data), 0.0)
        data[0] = 0
        assert store.get("c", "k").data == b"abc"


class TestInventory:
    def test_total_bytes_and_count(self, store):
        store.create_container("d")
        store.put("c", "a", b"12345", 0.0)
        store.put("d", "b", b"123", 0.0)
        assert store.total_bytes() == 8
        assert store.object_count() == 2
        store.remove("c", "a")
        assert store.total_bytes() == 3

    def test_overwrite_counts_once(self, store):
        store.put("c", "k", b"12345678", 0.0)
        store.put("c", "k", b"12", 1.0)
        assert store.total_bytes() == 2
        assert store.object_count() == 1
