"""Integration tests: the full §III-C recovery story, end to end.

A provider goes dark mid-workload; reads degrade gracefully, writes are
logged; the provider returns; the consistency update replays the log; the
system is verifiably consistent and no longer degraded.
"""

import numpy as np
import pytest

from repro.analysis.experiments import run_recovery_drill
from repro.cloud.outage import OutageWindow
from repro.cloud.provider import make_table2_cloud_of_clouds
from repro.schemes import DuraCloudScheme, HyrdScheme, RacsScheme
from repro.sim.clock import SimClock
from repro.workloads.postmark import PostMarkConfig, generate_postmark
from repro.workloads.trace import TraceReplayer

KB, MB = 1024, 1024 * 1024


def _postmark_run(scheme_builder, outage_provider, seed=3):
    clock = SimClock()
    providers = make_table2_cloud_of_clouds(clock)
    scheme = scheme_builder(providers, clock)
    config = PostMarkConfig(file_pool=12, transactions=50, size_hi=4 * MB)
    ops = generate_postmark(config, np.random.default_rng(seed))
    replayer = TraceReplayer(seed=seed)
    replayer.run(scheme, ops[: config.file_pool])

    window = OutageWindow(clock.now, clock.now + 4 * 3600.0)
    providers[outage_provider].outages.add(window)
    during = replayer.run(scheme, ops[config.file_pool :])

    clock.advance_to(window.end)
    heal = scheme.heal_returned()
    return scheme, providers, during, heal


@pytest.mark.parametrize(
    "builder,outage",
    [
        (lambda p, c: HyrdScheme(list(p.values()), c), "azure"),
        (lambda p, c: RacsScheme(list(p.values()), c), "azure"),
        (lambda p, c: DuraCloudScheme([p["amazon_s3"], p["azure"]], c), "azure"),
    ],
    ids=["hyrd", "racs", "duracloud"],
)
class TestOutageRecoveryLifecycle:
    def test_service_continuous_through_outage(self, builder, outage):
        scheme, _, during, _ = _postmark_run(builder, outage)
        # Every op during the outage completed (replayer verifies content).
        assert len(during) > 0

    def test_log_drains_on_heal(self, builder, outage):
        scheme, _, _, heal = _postmark_run(builder, outage)
        assert len(scheme.pending_log(outage)) == 0
        if heal:  # schemes that buffered writes actually replayed them
            assert all(r.op == "heal" for r in heal)

    def test_no_degradation_after_recovery(self, builder, outage):
        scheme, _, _, _ = _postmark_run(builder, outage)
        for path in scheme.namespace.paths():
            _, report = scheme.get(path)
            assert not report.degraded

    def test_returned_provider_fully_consistent(self, builder, outage):
        """Spot-check: every fragment the placement says the healed provider
        holds must exist there with current-version content."""
        scheme, providers, _, _ = _postmark_run(builder, outage)
        store = providers[outage].store
        for path in scheme.namespace.paths():
            entry = scheme.namespace.get(path)
            if outage not in entry.providers:
                continue
            codec = scheme._codec_for(entry)
            idx = entry.fragment_index(outage)
            key = (
                f"{path}#v{entry.version}"
                if codec is None
                else scheme._fragment_key(path, idx, entry.version)
            )
            assert store.has(scheme.container, key), (path, key)


class TestRecoveryDrillExperiment:
    def test_drill_end_to_end(self):
        result = run_recovery_drill(seed=1)
        assert result["logged_writes"] >= 0
        assert result["log_after_heal"] == 0
        assert result["post_degraded_fraction"] == 0.0
        # Post-recovery latency should not be catastrophically worse.
        assert result["post_mean_latency"] < 10.0
