"""Unit tests for the fair-share bandwidth model."""

import math

import pytest

from repro.sim.bandwidth import (
    TransferSpec,
    _waterfill_rates,
    simulate_transfers,
    total_elapsed,
)


class TestTransferSpec:
    def test_valid(self):
        spec = TransferSpec(0.1, 100.0, 10.0)
        assert spec.start_delay == 0.1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"start_delay": -0.1, "size_bytes": 1, "remote_cap": 1},
            {"start_delay": 0, "size_bytes": -1, "remote_cap": 1},
            {"start_delay": 0, "size_bytes": 1, "remote_cap": 0},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            TransferSpec(**kwargs)


class TestWaterfill:
    def test_uncapped_equal_shares(self):
        rates = _waterfill_rates([math.inf, math.inf], 10.0)
        assert rates == [5.0, 5.0]

    def test_capped_transfer_returns_surplus(self):
        rates = _waterfill_rates([2.0, math.inf], 10.0)
        assert rates == [2.0, 8.0]

    def test_all_capped_below_share(self):
        rates = _waterfill_rates([1.0, 2.0, 3.0], 100.0)
        assert rates == [1.0, 2.0, 3.0]

    def test_conservation(self):
        caps = [3.0, 5.0, 7.0, math.inf]
        rates = _waterfill_rates(caps, 12.0)
        assert sum(rates) == pytest.approx(12.0)
        for rate, cap in zip(rates, caps):
            assert rate <= cap + 1e-12


class TestSimulateTransfers:
    def test_empty(self):
        assert simulate_transfers([], 10.0) == []

    def test_single_transfer(self):
        (res,) = simulate_transfers([TransferSpec(0.5, 100.0, 20.0)], 100.0)
        assert res.start_time == 0.5
        assert res.finish_time == pytest.approx(0.5 + 100.0 / 20.0)

    def test_link_is_bottleneck(self):
        (res,) = simulate_transfers([TransferSpec(0.0, 100.0, math.inf)], 10.0)
        assert res.finish_time == pytest.approx(10.0)

    def test_zero_byte_finishes_at_rtt(self):
        (res,) = simulate_transfers([TransferSpec(0.25, 0.0)], 10.0)
        assert res.finish_time == 0.25
        assert res.duration == 0.0

    def test_two_equal_transfers_share_link(self):
        specs = [TransferSpec(0.0, 100.0), TransferSpec(0.0, 100.0)]
        results = simulate_transfers(specs, 10.0)
        # Each gets 5 B/s while both active: both finish at t=20.
        assert all(r.finish_time == pytest.approx(20.0) for r in results)

    def test_late_start_redistribution(self):
        # B runs alone during A's RTT, then they share.
        results = simulate_transfers(
            [TransferSpec(0.1, 1000.0, 100.0), TransferSpec(0.0, 500.0, 1000.0)],
            200.0,
        )
        a, b = results
        # B alone: 0.1s at 200 B/s = 20 bytes; then shares: A capped at 100,
        # B gets 100 -> 480 remaining / 100 = 4.8s -> 4.9 total.
        assert b.finish_time == pytest.approx(4.9)
        assert a.finish_time == pytest.approx(10.1)

    def test_finish_frees_bandwidth(self):
        # Small transfer drains, big one then gets the whole link.
        results = simulate_transfers(
            [TransferSpec(0.0, 10.0), TransferSpec(0.0, 90.0)], 10.0
        )
        small, big = results
        assert small.finish_time == pytest.approx(2.0)  # 10B at 5 B/s
        # big: 10B in first 2s, remaining 80 at 10 B/s -> t=10.
        assert big.finish_time == pytest.approx(10.0)

    def test_results_positionally_aligned(self):
        specs = [TransferSpec(0.0, 10.0, 1.0), TransferSpec(0.0, 1.0, 100.0)]
        results = simulate_transfers(specs, 1000.0)
        assert results[0].finish_time > results[1].finish_time

    def test_invalid_link(self):
        with pytest.raises(ValueError):
            simulate_transfers([TransferSpec(0, 1)], 0.0)

    def test_serialized_by_rtt_gaps(self):
        # Non-overlapping windows: each transfer runs alone.
        results = simulate_transfers(
            [TransferSpec(0.0, 10.0, math.inf), TransferSpec(100.0, 10.0, math.inf)],
            10.0,
        )
        assert results[0].finish_time == pytest.approx(1.0)
        assert results[1].finish_time == pytest.approx(101.0)


class TestTotalElapsed:
    def test_empty(self):
        assert total_elapsed([], 5.0) == 0.0

    def test_is_max_finish(self):
        specs = [TransferSpec(0.0, 10.0), TransferSpec(2.0, 0.0)]
        assert total_elapsed(specs, 10.0) == pytest.approx(2.0)


class TestEdgeCases:
    """Timings locked before the data-plane optimisation work (exact values)."""

    def test_simultaneous_nonzero_start_delays(self):
        # Both activate together at t=0.3 and split the link evenly.
        results = simulate_transfers(
            [TransferSpec(0.3, 50.0, math.inf), TransferSpec(0.3, 50.0, math.inf)],
            10.0,
        )
        for r in results:
            assert r.start_time == 0.3
            assert r.finish_time == pytest.approx(10.3)  # 50 B at 5 B/s

    def test_near_simultaneous_starts_within_tick(self):
        # Starts inside the same 1e-12 activation tolerance join one batch.
        results = simulate_transfers(
            [TransferSpec(0.1, 10.0, math.inf), TransferSpec(0.1 + 1e-13, 10.0, math.inf)],
            10.0,
        )
        assert results[0].finish_time == pytest.approx(results[1].finish_time)
        assert results[0].finish_time == pytest.approx(2.1)

    def test_remote_cap_above_link_capacity(self):
        # The remote could serve 1000 B/s but the access link is 10 B/s:
        # the link is the binding constraint, exactly.
        (res,) = simulate_transfers([TransferSpec(0.0, 100.0, 1000.0)], 10.0)
        assert res.finish_time == pytest.approx(10.0)

    def test_remote_cap_above_link_shares_like_uncapped(self):
        # Caps above the fair share are inert: same timing as math.inf caps.
        capped = simulate_transfers(
            [TransferSpec(0.0, 60.0, 99.0), TransferSpec(0.0, 60.0, 250.0)], 12.0
        )
        uncapped = simulate_transfers(
            [TransferSpec(0.0, 60.0), TransferSpec(0.0, 60.0)], 12.0
        )
        for a, b in zip(capped, uncapped):
            assert a.finish_time == pytest.approx(b.finish_time)
            assert a.finish_time == pytest.approx(10.0)  # 60 B at 6 B/s

    def test_many_tiny_transfers_waterfill_fairness(self):
        # 40 identical 1-byte transfers: each gets link/40, all drain together.
        n, link = 40, 10.0
        results = simulate_transfers([TransferSpec(0.0, 1.0) for _ in range(n)], link)
        expected = n * 1.0 / link  # total bytes / link capacity
        for r in results:
            assert r.finish_time == pytest.approx(expected)

    def test_many_tiny_transfers_with_one_elephant(self):
        # Tiny flows finish first at the fair share; the elephant then takes
        # the whole link.  Exact piecewise arithmetic locked in.
        tiny = [TransferSpec(0.0, 1.0) for _ in range(9)]
        elephant = TransferSpec(0.0, 91.0)
        results = simulate_transfers(tiny + [elephant], 10.0)
        # Phase 1: 10 flows at 1 B/s each; tinies drain at t=1 (9 bytes moved,
        # elephant has 90 left).  Phase 2: elephant alone at 10 B/s -> t=10.
        for r in results[:-1]:
            assert r.finish_time == pytest.approx(1.0)
        assert results[-1].finish_time == pytest.approx(10.0)

    def test_tiny_transfers_capped_below_fair_share(self):
        # Capped tinies leave surplus that uncapped peers absorb.
        specs = [
            TransferSpec(0.0, 2.0, 1.0),   # capped at 1 B/s -> drains at t=2
            TransferSpec(0.0, 18.0, math.inf),  # gets 9 B/s while tiny active
        ]
        capped, big = simulate_transfers(specs, 10.0)
        assert capped.finish_time == pytest.approx(2.0)
        assert big.finish_time == pytest.approx(2.0)  # 18 B at 9 B/s
