"""Unit tests for the NCCloud baseline (FMSR regenerating codes)."""

import pytest

from repro.cloud.outage import OutageWindow
from repro.schemes import NCCloudScheme


@pytest.fixture
def nc(providers, clock):
    return NCCloudScheme(list(providers.values()), clock)


class TestPlacement:
    def test_parameters(self, nc):
        assert nc.n == 4
        assert nc.k == 2

    def test_roundtrip(self, nc, payload):
        data = payload(8192)
        nc.put("/d/a", data)
        got, _ = nc.get("/d/a")
        assert got == data

    def test_space_overhead_is_2x(self, nc, payload):
        nc.put("/d/a", payload(40_000))
        # FMSR(4,2): n/k = 2.0 overhead.
        assert nc.space_overhead() == pytest.approx(2.0, abs=0.1)

    def test_per_object_codecs_differ(self, nc, payload):
        import numpy as np

        nc.put("/d/a", payload(100))
        nc.put("/d/b", payload(100))
        assert not np.array_equal(nc._codecs["/d/a"].ecm, nc._codecs["/d/b"].ecm)

    def test_degraded_read(self, nc, providers, clock, payload):
        data = payload(4096)
        nc.put("/d/a", data)
        providers["aliyun"].outages.add(OutageWindow(clock.now, clock.now + 60))
        got, _ = nc.get("/d/a")
        assert got == data

    def test_update_is_full_reencode(self, nc, payload):
        data = payload(4096)
        nc.put("/d/a", data)
        v1 = nc.namespace.get("/d/a").version
        nc.update("/d/a", 10, b"XY")
        entry = nc.namespace.get("/d/a")
        assert entry.version == v1 + 1
        got, _ = nc.get("/d/a")
        assert got[10:12] == b"XY"

    def test_remove_drops_codec(self, nc, payload):
        nc.put("/d/a", payload(100))
        nc.remove("/d/a")
        assert "/d/a" not in nc._codecs


class TestFunctionalRepair:
    def test_repair_traffic_is_three_quarters(self, nc, payload):
        for i in range(3):
            nc.put(f"/d/obj{i}", payload(8000))
        stats = nc.repair_provider("rackspace")
        assert stats["objects"] == 3
        ratio = stats["bytes_downloaded"] / stats["conventional_bytes"]
        assert ratio == pytest.approx(0.75, abs=0.01)

    def test_data_readable_after_repair(self, nc, providers, clock, payload):
        data = payload(8000)
        nc.put("/d/a", data)
        nc.repair_provider("aliyun")
        got, _ = nc.get("/d/a")
        assert got == data

    def test_repair_then_outage_of_another_provider(
        self, nc, providers, clock, payload
    ):
        data = payload(8000)
        nc.put("/d/a", data)
        nc.repair_provider("azure")
        providers["amazon_s3"].outages.add(OutageWindow(clock.now, clock.now + 60))
        got, _ = nc.get("/d/a")
        assert got == data  # repaired fragment participates in the decode

    def test_repair_to_replacement_provider(self, providers, clock, payload):
        nc = NCCloudScheme(
            [providers[n] for n in ("amazon_s3", "azure", "aliyun")], clock
        )
        data = payload(6000)
        nc.put("/d/a", data)
        stats = nc.repair_provider("azure", replacement="amazon_s3")
        assert stats["objects"] == 1
        entry = nc.namespace.get("/d/a")
        assert "azure" not in entry.providers

    def test_repair_unknown_provider_rejected(self, nc):
        with pytest.raises(ValueError):
            nc.repair_provider("nonexistent")
