"""Unit tests for the RACS baseline (RAID5 striping)."""

import pytest

from repro.cloud.outage import OutageWindow
from repro.schemes import RacsScheme


@pytest.fixture
def racs(providers, clock):
    return RacsScheme(list(providers.values()), clock)


class TestPlacement:
    def test_needs_three_providers(self, providers, clock):
        with pytest.raises(ValueError):
            RacsScheme([providers["aliyun"], providers["azure"]], clock)

    def test_codec_is_raid5_k_nminus1(self, racs):
        assert racs.codec.k == 3
        assert racs.codec.n == 4

    def test_one_fragment_per_provider(self, racs, providers, payload):
        racs.put("/d/a", payload(3000))
        for name in providers:
            store = providers[name].store
            frags = [
                k
                for k in store.list(racs.container)
                if k.startswith("/d/a#") and not k.startswith("__meta__")
            ]
            assert len(frags) == 1

    def test_everything_striped_even_tiny_files(self, racs, providers, payload):
        racs.put("/d/tiny", payload(10))
        entry = racs.namespace.get("/d/tiny")
        assert entry.codec == "raid5"
        assert len(entry.placements) == 4


class TestSmallUpdatePenalty:
    def test_in_place_update_is_4_accesses(self, racs, payload):
        """The paper's headline: 2 reads + 2 writes for a small update."""
        racs.put("/d/a", payload(9000))
        report = racs.update("/d/a", 100, b"X" * 50)
        # 2 reads (affected data fragment + parity) + 2 writes (same) +
        # the metadata-group restripe.
        data_ops = report.cloud_ops - 4  # meta stripe = 4 fragment puts
        assert data_ops == 4

    def test_update_spanning_fragments_touches_more(self, racs, payload):
        racs.put("/d/a", payload(9000))  # fragments of 3000
        report = racs.update("/d/a", 2990, b"Y" * 100)  # spans fragments 0-1
        data_ops = report.cloud_ops - 4
        assert data_ops == 6  # 3 reads + 3 writes

    def test_update_correctness(self, racs, payload):
        data = payload(9000)
        racs.put("/d/a", data)
        racs.update("/d/a", 2990, b"Y" * 100)
        got, _ = racs.get("/d/a")
        assert got[2990:3090] == b"Y" * 100
        assert got[:2990] == data[:2990]
        assert got[3090:] == data[3090:]

    def test_growing_update_restripes(self, racs, payload):
        racs.put("/d/a", payload(1000))
        v1 = racs.namespace.get("/d/a").version
        racs.update("/d/a", 900, b"Z" * 500)
        entry = racs.namespace.get("/d/a")
        assert entry.size == 1400
        assert entry.version == v1 + 1  # full restripe = new version


class TestDegradedReads:
    def test_reconstruction_via_parity(self, racs, providers, clock, payload):
        data = payload(12_000)
        racs.put("/d/a", data)
        # Knock out a provider holding a *data* fragment.
        entry = racs.namespace.get("/d/a")
        data_provider = [p for p, i in entry.placements if i == 0][0]
        providers[data_provider].outages.add(OutageWindow(clock.now, clock.now + 60))
        got, report = racs.get("/d/a")
        assert got == data
        assert report.degraded
        # Reconstruction pulled the parity fragment's provider in.
        parity_provider = [p for p, i in entry.placements if i == 3][0]
        assert parity_provider in report.providers

    def test_parity_loss_is_invisible(self, racs, providers, clock, payload):
        data = payload(12_000)
        racs.put("/d/a", data)
        entry = racs.namespace.get("/d/a")
        parity_provider = [p for p, i in entry.placements if i == 3][0]
        providers[parity_provider].outages.add(OutageWindow(clock.now, clock.now + 60))
        got, report = racs.get("/d/a")
        assert got == data
        assert not report.degraded  # systematic read never needed the parity


class TestMetadataStriping:
    def test_metadata_groups_striped(self, racs, providers, payload):
        racs.put("/docs/a", payload(100))
        counts = sum(
            1
            for name in providers
            for key in providers[name].store.list(racs.container)
            if key.startswith("__meta__/docs.")
        )
        assert counts == 4  # one metadata fragment per provider
