"""Property-based tests: namespace vs a dict model, metadata round-trips."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fs.metadata import decode_group, encode_group
from repro.fs.namespace import FileEntry, Namespace, dirname, normalize_path

# Path components: non-empty, no '/', no '.'/'..' semantics.
component = st.text(
    alphabet=st.sampled_from("abcdefgh0123_-"), min_size=1, max_size=6
)
path_strategy = st.builds(
    lambda parts: "/" + "/".join(parts),
    st.lists(component, min_size=1, max_size=4),
)


@st.composite
def namespace_ops(draw):
    n = draw(st.integers(1, 30))
    ops = []
    for _ in range(n):
        kind = draw(st.sampled_from(["upsert", "remove"]))
        path = draw(path_strategy)
        size = draw(st.integers(0, 10**6))
        ops.append((kind, path, size))
    return ops


class TestNamespaceModel:
    @given(ops=namespace_ops())
    def test_matches_dict_model(self, ops):
        ns = Namespace()
        model: dict[str, int] = {}
        for kind, path, size in ops:
            norm = normalize_path(path)
            if kind == "upsert":
                ns.upsert(FileEntry(path=norm, size=size))
                model[norm] = size
            else:
                if norm in model:
                    removed = ns.remove(norm)
                    assert removed.size == model.pop(norm)
                else:
                    try:
                        ns.remove(norm)
                        raise AssertionError("remove of missing path succeeded")
                    except FileNotFoundError:
                        pass
        assert ns.paths() == sorted(model)
        assert ns.total_bytes() == sum(model.values())
        # Directory listings partition the path set exactly.
        listed = [p for d in ns.directories() for p in ns.list_dir(d)]
        assert sorted(listed) == sorted(model)

    @given(ops=namespace_ops())
    def test_dirname_consistency(self, ops):
        ns = Namespace()
        for kind, path, size in ops:
            if kind == "upsert":
                ns.upsert(FileEntry(path=normalize_path(path), size=size))
        for d in ns.directories():
            for p in ns.list_dir(d):
                assert dirname(p) == d


class TestMetadataGroupProperties:
    @given(
        entries=st.lists(
            st.builds(
                FileEntry,
                path=path_strategy,
                size=st.integers(0, 10**9),
                version=st.integers(1, 100),
                codec=st.sampled_from(["replication", "raid5", "rs", "fmsr"]),
                klass=st.sampled_from(["small", "large", "metadata"]),
                created=st.floats(0, 1e9, allow_nan=False),
                modified=st.floats(0, 1e9, allow_nan=False),
                access_count=st.integers(0, 1000),
            ),
            max_size=10,
            unique_by=lambda e: e.path,
        )
    )
    @settings(max_examples=60)
    def test_group_roundtrip(self, entries):
        assert decode_group(encode_group(entries)) == sorted(
            entries, key=lambda e: e.path
        )
