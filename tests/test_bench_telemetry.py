"""The BENCH_*.json telemetry pipeline: schema, comparison, baseline honesty.

``tools/`` is not a package, so the module is loaded straight from its file.
"""

import copy
import importlib.util
import json
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent

_spec = importlib.util.spec_from_file_location(
    "bench_telemetry", ROOT / "tools" / "bench_telemetry.py"
)
bench = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(bench)


@pytest.fixture(scope="module")
def baseline():
    path = bench.find_baseline()
    assert path is not None, "no committed BENCH_*.json baseline at repo root"
    return path, json.loads(path.read_text(encoding="utf-8"))


class TestBaselineFile:
    def test_committed_baseline_passes_schema_check(self, baseline):
        path, payload = baseline
        assert bench.schema_check(payload, path) == []

    def test_baseline_covers_all_three_schemes(self, baseline):
        _, payload = baseline
        clean = payload["deterministic"]["latency"]["clean"]
        assert sorted(clean) == ["duracloud", "hyrd", "racs"]

    def test_schema_check_flags_damage(self, baseline):
        path, payload = baseline
        broken = copy.deepcopy(payload)
        broken["schema"] = "repro-bench-telemetry/999"
        assert any("schema" in e for e in bench.schema_check(broken, path))
        broken = copy.deepcopy(payload)
        del broken["deterministic"]["latency"]
        assert bench.schema_check(broken, path) != []


class TestNumericLeaves:
    def test_flattens_nested_paths(self):
        leaves = dict(
            bench.numeric_leaves({"a": {"b": 1.5, "c": {"d": 2}}, "e": 3})
        )
        assert leaves == {"a.b": 1.5, "a.c.d": 2, "e": 3}

    def test_skips_non_numbers_and_bools(self):
        leaves = bench.numeric_leaves({"s": "x", "flag": True, "n": 4})
        assert leaves == [("n", 4)]


def _compare_payload(p95):
    return {
        "deterministic": {
            "latency": {"clean": {"hyrd": {"ops": {"get": {"p95": p95}}}}}
        }
    }


class TestCompare:
    BASE = _compare_payload(0.100)

    def fresh(self, p95):
        return _compare_payload(p95)

    def test_identical_is_clean(self):
        assert bench.compare(self.BASE, self.fresh(0.100), 0.10) == []

    def test_within_tolerance_is_clean(self):
        assert bench.compare(self.BASE, self.fresh(0.109), 0.10) == []

    def test_drift_beyond_tolerance_flagged(self):
        lines = bench.compare(self.BASE, self.fresh(0.120), 0.10)
        assert len(lines) == 1
        assert "DRIFT" in lines[0]

    def test_missing_and_new_leaves_flagged(self):
        gone = bench.compare(self.BASE, {"deterministic": {}}, 0.10)
        assert any("GONE" in line for line in gone)
        extra = copy.deepcopy(self.BASE)
        ops = extra["deterministic"]["latency"]["clean"]["hyrd"]["ops"]
        ops["get"]["p50"] = 0.05
        new = bench.compare(self.BASE, extra, 0.10)
        assert any("NEW" in line for line in new)

    def test_informational_section_never_gated(self):
        base = {"informational": {"codec_throughput": {"rs_k2_m2": {"encode_mb_s": 100.0}}}}
        fresh = {"informational": {"codec_throughput": {"rs_k2_m2": {"encode_mb_s": 10.0}}}}
        assert bench.compare(base, fresh, 0.10) == []

    def test_near_zero_baseline_guarded(self):
        base = {"deterministic": {"x": 0.0}}
        fresh = {"deterministic": {"x": 1e-12}}
        assert bench.compare(base, fresh, 0.10) == []


class TestReproducibility:
    def test_fresh_build_matches_committed_baseline(self, baseline):
        """The committed BENCH file must be regenerable from the current code
        at its own seed — this is the same gate CI's --check applies."""
        _, payload = baseline
        fresh = bench.build_payload(seed=payload["seed"], date=payload["date"])
        assert bench.compare(payload, fresh, bench.DEFAULT_TOLERANCE) == []

    def test_deterministic_sections_are_bit_identical(self, baseline):
        _, payload = baseline
        fresh = bench.build_payload(seed=payload["seed"], date=payload["date"])
        assert fresh["deterministic"] == payload["deterministic"]


class TestCliModes:
    def test_check_mode_passes_against_committed_baseline(self, capsys):
        assert bench.main(["--check"]) == 0
        assert "OK" in capsys.readouterr().out

    def test_schema_check_mode(self, capsys):
        assert bench.main(["--schema-check"]) == 0

    def test_out_writes_schema_valid_payload(self, tmp_path, capsys):
        out = tmp_path / "BENCH_2000-01-01.json"
        assert bench.main(["--out", str(out), "--seed", "0"]) == 0
        payload = json.loads(out.read_text(encoding="utf-8"))
        assert bench.schema_check(payload, out) == []
        assert payload["seed"] == 0
