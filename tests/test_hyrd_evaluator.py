"""Unit tests for the Cost & Performance Evaluator."""

import math

import pytest

from repro.cloud.outage import OutageWindow
from repro.core.config import HyRDConfig
from repro.core.evaluator import CostPerformanceEvaluator


@pytest.fixture
def evaluator(providers):
    return CostPerformanceEvaluator(list(providers.values()), HyRDConfig())


class TestClassification:
    def test_reproduces_table2_category_row(self, evaluator):
        profiles = evaluator.evaluate()
        assert profiles["amazon_s3"].is_cost_oriented
        assert not profiles["amazon_s3"].is_performance_oriented
        assert profiles["azure"].is_performance_oriented
        assert not profiles["azure"].is_cost_oriented
        assert profiles["aliyun"].is_cost_oriented
        assert profiles["aliyun"].is_performance_oriented  # "Both"
        assert profiles["rackspace"].is_cost_oriented
        assert not profiles["rackspace"].is_performance_oriented

    def test_performance_ranking(self, evaluator):
        assert evaluator.performance_oriented() == ["aliyun", "azure"]

    def test_cost_ranking_cheapest_first(self, evaluator):
        assert evaluator.cost_oriented() == ["aliyun", "amazon_s3", "rackspace"]

    def test_ranked_by_speed(self, evaluator):
        ranked = evaluator.ranked_by_speed()
        assert ranked[0] == "aliyun"
        assert ranked[-1] == "rackspace"

    def test_lazy_evaluation(self, evaluator):
        # Queries trigger evaluate() implicitly.
        assert evaluator.profiles == {}
        evaluator.performance_oriented()
        assert evaluator.profiles


class TestProbing:
    def test_probes_are_metered(self, providers, evaluator):
        evaluator.evaluate()
        usage = providers["aliyun"].meter.total_usage()
        assert usage.bytes_in > 0  # probe puts
        assert usage.bytes_out > 0  # probe gets

    def test_unavailable_provider_scores_inf(self, providers):
        providers["azure"].outages.add(OutageWindow(0.0))
        ev = CostPerformanceEvaluator(list(providers.values()), HyRDConfig())
        profiles = ev.evaluate()
        assert math.isinf(profiles["azure"].latency_score)
        assert "azure" not in ev.performance_oriented()

    def test_all_unavailable_raises(self, providers):
        for p in providers.values():
            p.outages.add(OutageWindow(0.0))
        ev = CostPerformanceEvaluator(list(providers.values()), HyRDConfig())
        with pytest.raises(RuntimeError):
            ev.evaluate()

    def test_validation(self, providers):
        with pytest.raises(ValueError):
            CostPerformanceEvaluator([], HyRDConfig())
        with pytest.raises(ValueError):
            CostPerformanceEvaluator(
                list(providers.values()), HyRDConfig(), probe_repeats=0
            )


class TestConfigKnobs:
    def test_perf_fraction_widens_class(self, providers):
        ev = CostPerformanceEvaluator(
            list(providers.values()), HyRDConfig(perf_fraction=0.75)
        )
        assert len(ev.performance_oriented()) == 3

    def test_cost_percentile_narrows_class(self, providers):
        ev = CostPerformanceEvaluator(
            list(providers.values()), HyRDConfig(cost_percentile=25.0)
        )
        assert ev.cost_oriented() == ["aliyun"]
