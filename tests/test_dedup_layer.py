"""Unit + integration tests for the dedup layer over real schemes."""

import pytest

from repro.dedup.chunking import ContentDefinedChunker
from repro.dedup.layer import DedupLayer
from repro.schemes import HyrdScheme, SingleCloudScheme

KB = 1024


@pytest.fixture
def layer(providers, clock):
    scheme = SingleCloudScheme(providers["aliyun"], clock)
    return DedupLayer(scheme, ContentDefinedChunker(avg_size=4 * KB))


class TestRoundTrip:
    def test_put_get(self, layer, payload):
        data = payload(100 * KB)
        layer.put("/backup/a.img", data)
        assert layer.get("/backup/a.img") == data

    def test_small_file(self, layer):
        layer.put("/f", b"x")
        assert layer.get("/f") == b"x"

    def test_empty_file(self, layer):
        layer.put("/empty", b"")
        assert layer.get("/empty") == b""

    def test_update_roundtrip(self, layer, payload):
        data = payload(50 * KB)
        layer.put("/f", data)
        layer.update("/f", 10 * KB, b"PATCHED!")
        got = layer.get("/f")
        assert got[10 * KB : 10 * KB + 8] == b"PATCHED!"
        assert len(got) == 50 * KB

    def test_paths_listing(self, layer, payload):
        layer.put("/b/x", payload(KB))
        layer.put("/a/y", payload(KB))
        assert layer.paths() == ["/a/y", "/b/x"]


class TestDeduplication:
    def test_identical_file_costs_no_transfer(self, layer, payload):
        data = payload(200 * KB)
        layer.put("/v1", data)
        before = layer.stats.transferred_bytes
        layer.put("/v2", data)
        assert layer.stats.transferred_bytes == before  # zero new chunk bytes
        assert layer.dedup_ratio() == pytest.approx(2.0, rel=0.01)

    def test_mostly_identical_backup_saves_traffic(self, layer, payload):
        data = bytearray(payload(400 * KB))
        layer.put("/mon", bytes(data))
        data[100:200] = b"\x99" * 100  # tiny edit
        before = layer.stats.transferred_bytes
        layer.put("/tue", bytes(data))
        delta = layer.stats.transferred_bytes - before
        assert delta < 100 * KB  # far less than the 400 KB logical write
        assert layer.get("/tue") == bytes(data)

    def test_stats_consistency(self, layer, payload):
        data = payload(100 * KB)
        layer.put("/a", data)
        layer.put("/b", data)
        s = layer.stats
        assert s.logical_bytes == 200 * KB
        assert s.chunks_seen == 2 * s.chunks_uploaded
        assert s.chunks_deduped == s.chunks_uploaded
        assert 0.45 < s.traffic_saved_fraction <= 0.55

    def test_overwrite_releases_old_chunks(self, layer, payload):
        layer.put("/f", payload(50 * KB))
        layer.put("/f", payload(50 * KB))  # different content
        # Old unique chunks were garbage collected from the index.
        assert layer.index.logical_bytes() == pytest.approx(50 * KB, rel=0.02)


class TestGarbageCollection:
    def test_remove_drops_unreferenced_chunks(self, layer, providers, payload):
        data = payload(60 * KB)
        layer.put("/only", data)
        stored_before = providers["aliyun"].store.total_bytes()
        layer.remove("/only")
        assert providers["aliyun"].store.total_bytes() < stored_before * 0.2
        with pytest.raises(FileNotFoundError):
            layer.get("/only")

    def test_shared_chunks_survive_removal(self, layer, payload):
        data = payload(80 * KB)
        layer.put("/a", data)
        layer.put("/b", data)
        layer.remove("/a")
        assert layer.get("/b") == data

    def test_remove_unknown(self, layer):
        with pytest.raises(FileNotFoundError):
            layer.remove("/nope")


class TestOverHyrd:
    def test_dedup_over_hyrd_with_outage(self, providers, clock, payload):
        """The layer inherits HyRD's availability: chunk reads survive an
        outage through the underlying degraded paths."""
        from repro.cloud.outage import OutageWindow

        hyrd = HyrdScheme(list(providers.values()), clock)
        layer = DedupLayer(hyrd, ContentDefinedChunker(avg_size=8 * KB))
        data = payload(120 * KB)
        layer.put("/doc", data)
        providers["azure"].outages.add(OutageWindow(clock.now, clock.now + 3600))
        assert layer.get("/doc") == data

    def test_chunks_ride_hyrd_placement(self, providers, clock, payload):
        hyrd = HyrdScheme(list(providers.values()), clock)
        layer = DedupLayer(hyrd, ContentDefinedChunker(avg_size=8 * KB))
        layer.put("/doc", payload(64 * KB))
        # 8 KB chunks are small-class objects: replicated on perf providers.
        chunk_paths = [p for p in hyrd.namespace.paths() if p.startswith("/.dedup")]
        assert chunk_paths
        for path in chunk_paths:
            assert hyrd.namespace.get(path).codec == "replication"
