"""Property-based tests: DRR admission is work-conserving and starvation-free.

These are the scheduler's two contract-level guarantees:

- **work conservation** — whenever any queue is non-empty and no tenant is
  ops/s-deferred, :meth:`AdmissionController.next_request` dispatches;
  the controller never idles while work is waiting.
- **starvation freedom** — with unit weights, every backlogged tenant is
  served within one full round of the active set: between two consecutive
  dispatches of a continuously backlogged tenant, no other tenant is
  dispatched twice.  With arbitrary weights the guarantee weakens to the
  classic DRR minimum-service bound — at least ``floor(rounds * weight)``
  dispatches (quantum 1, unit cost) over any span of complete rounds — but
  never to zero.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service.admission import AdmissionController, Request
from repro.service.tenant import Tenant

queue_depths = st.lists(st.integers(1, 12), min_size=2, max_size=6)


def _fill(ac: AdmissionController, tenant: Tenant, n: int) -> None:
    for i in range(n):
        admitted, _ = ac.submit(
            tenant,
            Request(tenant_id=tenant.tenant_id, token="tok", kind="get", path=f"/d/{i}"),
        )
        assert admitted


def _drain(ac: AdmissionController) -> list[str]:
    order = []
    while True:
        req = ac.next_request(0.0)
        if req is None:
            break
        order.append(req.tenant_id)
    return order


class TestWorkConservation:
    @given(depths=queue_depths)
    def test_drains_exactly_the_backlog(self, depths):
        ac = AdmissionController(queue_limit=32)
        tenants = [Tenant(f"t{i}", "tok") for i in range(len(depths))]
        for tenant, depth in zip(tenants, depths):
            _fill(ac, tenant, depth)
        total = sum(depths)
        for served in range(total):
            assert ac.backlog() == total - served
            assert ac.next_request(0.0) is not None
        assert ac.next_request(0.0) is None
        assert ac.backlog() == 0

    @given(
        depths=queue_depths,
        plan=st.lists(st.integers(0, 11), min_size=1, max_size=60),
    )
    def test_interleaved_arrivals_never_idle(self, depths, plan):
        """Random submit/dispatch interleavings: non-empty backlog dispatches."""
        ac = AdmissionController(queue_limit=64)
        tenants = [Tenant(f"t{i}", "tok") for i in range(len(depths))]
        submitted = dispatched = 0
        for step in plan:
            if step % 2 == 0:  # even: submit to tenant step/2 (mod fleet)
                _fill(ac, tenants[(step // 2) % len(tenants)], 1)
                submitted += 1
            else:  # odd: try to dispatch
                req = ac.next_request(0.0)
                # No rate limits here, so a dispatch succeeds exactly when
                # work is waiting.
                assert (req is not None) == (submitted > dispatched)
                if req is not None:
                    dispatched += 1
        assert dispatched == submitted - ac.backlog()
        assert len(_drain(ac)) == submitted - dispatched
        assert ac.backlog() == 0


class TestStarvationFreedom:
    @given(depths=queue_depths)
    def test_unit_weights_serve_within_one_round(self, depths):
        ac = AdmissionController(queue_limit=32)
        tenants = [Tenant(f"t{i}", "tok") for i in range(len(depths))]
        for tenant, depth in zip(tenants, depths):
            _fill(ac, tenant, depth)
        order = _drain(ac)
        for i, (tenant, depth) in enumerate(zip(tenants, depths)):
            tid = tenant.tenant_id
            hits = [k for k, served in enumerate(order) if served == tid]
            assert len(hits) == depth
            # While this tenant stays backlogged (up to its final dispatch),
            # no other tenant is served twice between its consecutive turns.
            for a, b in zip(hits, hits[1:]):
                between = order[a + 1 : b]
                assert all(between.count(other) <= 1 for other in set(between))

    @given(
        weights=st.lists(
            st.sampled_from([0.5, 1.0, 2.0, 3.0]), min_size=2, max_size=5
        ),
        steps=st.integers(20, 80),
    )
    @settings(deadline=None)
    def test_weighted_minimum_service_bound(self, weights, steps):
        """Continuously backlogged tenants get >= floor(rounds * weight) - 1."""
        ac = AdmissionController(queue_limit=64)
        tenants = [Tenant(f"t{i}", "tok", weight=w) for i, w in enumerate(weights)]
        served: dict[str, int] = {}
        for _ in range(steps):
            for tenant in tenants:  # keep everyone backlogged
                if ac.backlog(tenant.tenant_id) < 2:
                    _fill(ac, tenant, 2)
            req = ac.next_request(0.0)
            assert req is not None  # work conservation under load
            served[req.tenant_id] = served.get(req.tenant_id, 0) + 1
        for tenant, w in zip(tenants, weights):
            # Residual deficit is always < 1 unit, so over R complete rounds
            # a backlogged tenant has dispatched more than R*w - 1 times.
            floor_share = math.floor(ac.rounds * w) - 1
            assert served.get(tenant.tenant_id, 0) >= max(0, floor_share)
