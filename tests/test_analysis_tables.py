"""Unit tests for ASCII table rendering."""

import pytest

from repro.analysis.tables import format_cell, render_table


class TestFormatCell:
    def test_float_formatting(self):
        assert format_cell(1.23456) == "1.235"
        assert format_cell(1.23456, ".1f") == "1.2"

    def test_non_float_passthrough(self):
        assert format_cell("abc") == "abc"
        assert format_cell(42) == "42"


class TestRenderTable:
    def test_basic_structure(self):
        out = render_table(["a", "bb"], [[1, 2.0], [30, 4.5]])
        lines = out.splitlines()
        assert len(lines) == 4  # header, separator, 2 rows
        assert "a" in lines[0] and "bb" in lines[0]
        assert set(lines[1]) <= {"-", " "}

    def test_title(self):
        out = render_table(["x"], [[1]], title="Table I")
        assert out.splitlines()[0] == "Table I"

    def test_column_alignment(self):
        out = render_table(["col"], [["a"], ["longer"]])
        lines = out.splitlines()
        assert len(lines[2]) == len(lines[3])

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])

    def test_empty_rows(self):
        out = render_table(["a"], [])
        assert "a" in out
