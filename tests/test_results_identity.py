"""Simulated results must be byte-identical to the committed golden file.

``tests/data/results_golden.json`` snapshots the Figure 3 trace statistics
and a reduced Figure 6 run as captured *before* the replay data-plane
optimisation work.  Performance changes (zero-copy fragments, payload and
digest caches, the parallel runner) must never move a simulated number:
these tests compare ``repr`` strings of every float, so even a last-bit
drift fails.
"""

import dataclasses
import json
from pathlib import Path

import pytest

from repro.analysis.experiments import run_fig3, run_fig6
from repro.workloads.postmark import PostMarkConfig

GOLDEN = Path(__file__).parent / "data" / "results_golden.json"


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN.read_text(encoding="utf-8"))


class TestFig3Identity:
    def test_monthly_stats_byte_identical(self, golden):
        trace = run_fig3(seed=0)
        got = [dataclasses.asdict(s) for s in trace.stats]
        assert got == golden["fig3_stats"]


class TestFig6Identity:
    @pytest.fixture(scope="class")
    def fig6(self, golden):
        config = PostMarkConfig(**golden["fig6_config"])
        return run_fig6(seed=0, config=config)

    @pytest.mark.parametrize("section", ["normal", "outage", "degraded_fraction"])
    def test_section_byte_identical(self, fig6, golden, section):
        got = {k: repr(v) for k, v in getattr(fig6, section).items()}
        assert got == golden["fig6"][section]

    def test_parallel_runner_matches_golden_too(self, golden):
        config = PostMarkConfig(**golden["fig6_config"])
        fig6 = run_fig6(seed=0, config=config, parallel=True, max_workers=2)
        for section in ("normal", "outage", "degraded_fraction"):
            got = {k: repr(v) for k, v in getattr(fig6, section).items()}
            assert got == golden["fig6"][section]
