"""Unit tests for usage metering and month bucketing."""

import pytest

from repro.cloud.metering import MonthUsage, UsageMeter
from repro.sim.clock import SECONDS_PER_MONTH


class TestOps:
    def test_put_records_bytes_and_tier1(self):
        m = UsageMeter()
        m.record_put(100, 10.0)
        u = m.month_usage(0)
        assert u.bytes_in == 100
        assert u.tier1_ops == 1

    def test_get_records_bytes_and_tier2(self):
        m = UsageMeter()
        m.record_get(50, 10.0)
        u = m.month_usage(0)
        assert u.bytes_out == 50
        assert u.tier2_ops == 1

    def test_list_create_are_tier1_remove_tier2(self):
        m = UsageMeter()
        m.record_list(0.0)
        m.record_create(0.0)
        m.record_remove(0.0)
        u = m.month_usage(0)
        assert u.tier1_ops == 2
        assert u.tier2_ops == 1

    def test_ops_bucket_by_month(self):
        m = UsageMeter()
        m.record_put(1, 0.0)
        m.record_put(2, SECONDS_PER_MONTH + 1)
        assert m.month_usage(0).bytes_in == 1
        assert m.month_usage(1).bytes_in == 2
        assert m.months() == [0, 1]

    def test_empty_month_is_zero(self):
        assert UsageMeter().month_usage(7).bytes_in == 0


class TestStorageAccrual:
    def test_simple_accrual(self):
        m = UsageMeter()
        m.set_stored_bytes(1000, 0.0)
        m.accrue(SECONDS_PER_MONTH)
        assert m.month_usage(0).byte_seconds == pytest.approx(1000 * SECONDS_PER_MONTH)

    def test_gb_month_conversion(self):
        m = UsageMeter()
        m.set_stored_bytes(1024**3, 0.0)
        m.accrue(SECONDS_PER_MONTH)
        assert m.month_usage(0).gb_months == pytest.approx(1.0)

    def test_split_across_month_boundary(self):
        m = UsageMeter()
        m.set_stored_bytes(100, 0.5 * SECONDS_PER_MONTH)
        m.accrue(1.5 * SECONDS_PER_MONTH)
        assert m.month_usage(0).byte_seconds == pytest.approx(50 * SECONDS_PER_MONTH)
        assert m.month_usage(1).byte_seconds == pytest.approx(50 * SECONDS_PER_MONTH)

    def test_level_changes_integrate(self):
        m = UsageMeter()
        m.set_stored_bytes(100, 0.0)
        m.set_stored_bytes(300, 0.25 * SECONDS_PER_MONTH)
        m.accrue(SECONDS_PER_MONTH)
        expected = (100 * 0.25 + 300 * 0.75) * SECONDS_PER_MONTH
        assert m.month_usage(0).byte_seconds == pytest.approx(expected)

    def test_backwards_accrual_rejected(self):
        m = UsageMeter()
        m.accrue(10.0)
        with pytest.raises(ValueError):
            m.accrue(5.0)

    def test_negative_stored_rejected(self):
        with pytest.raises(ValueError):
            UsageMeter().set_stored_bytes(-1, 0.0)


class TestAggregation:
    def test_merge(self):
        a = MonthUsage(bytes_in=1, bytes_out=2, tier1_ops=3, tier2_ops=4, byte_seconds=5)
        b = MonthUsage(bytes_in=10, bytes_out=20, tier1_ops=30, tier2_ops=40, byte_seconds=50)
        c = a.merge(b)
        assert (c.bytes_in, c.bytes_out, c.tier1_ops, c.tier2_ops, c.byte_seconds) == (
            11,
            22,
            33,
            44,
            55,
        )

    def test_total_usage(self):
        m = UsageMeter()
        m.record_put(5, 0.0)
        m.record_put(7, SECONDS_PER_MONTH * 2)
        assert m.total_usage().bytes_in == 12
