"""Unit tests for outage windows and schedules."""

import math

import numpy as np
import pytest

from repro.cloud.outage import OutageSchedule, OutageWindow


class TestOutageWindow:
    def test_covers_half_open(self):
        w = OutageWindow(10.0, 20.0)
        assert not w.covers(9.99)
        assert w.covers(10.0)
        assert w.covers(19.99)
        assert not w.covers(20.0)

    def test_open_ended(self):
        w = OutageWindow(5.0)
        assert w.covers(1e12)
        assert math.isinf(w.duration)

    def test_validation(self):
        with pytest.raises(ValueError):
            OutageWindow(-1.0, 2.0)
        with pytest.raises(ValueError):
            OutageWindow(5.0, 5.0)


class TestOutageSchedule:
    def test_empty_schedule_always_up(self):
        s = OutageSchedule()
        assert not s.is_out(0.0)
        assert s.next_return(0.0) is None

    def test_is_out(self):
        s = OutageSchedule([OutageWindow(10, 20), OutageWindow(30, 40)])
        assert s.is_out(15)
        assert not s.is_out(25)
        assert s.is_out(30)

    def test_overlap_rejected(self):
        s = OutageSchedule([OutageWindow(10, 20)])
        with pytest.raises(ValueError):
            s.add(OutageWindow(15, 25))
        with pytest.raises(ValueError):
            s.add(OutageWindow(5, 11))

    def test_adjacent_windows_allowed(self):
        s = OutageSchedule([OutageWindow(10, 20)])
        s.add(OutageWindow(20, 30))
        assert len(s.windows) == 2

    def test_windows_sorted(self):
        s = OutageSchedule([OutageWindow(30, 40), OutageWindow(10, 20)])
        assert [w.start for w in s.windows] == [10, 30]

    def test_next_return(self):
        s = OutageSchedule([OutageWindow(10, 20)])
        assert s.next_return(15) == 20
        assert s.next_return(5) is None

    def test_next_return_open_ended_is_none(self):
        s = OutageSchedule([OutageWindow(10)])
        assert s.next_return(15) is None

    def test_next_outage_after(self):
        s = OutageSchedule([OutageWindow(10, 20), OutageWindow(50, 60)])
        assert s.next_outage_after(0) == 10
        assert s.next_outage_after(10) == 50
        assert s.next_outage_after(55) is None

    def test_total_downtime(self):
        s = OutageSchedule([OutageWindow(10, 20), OutageWindow(90, 200)])
        assert s.total_downtime(100) == pytest.approx(20.0)
        assert s.total_downtime(15) == pytest.approx(5.0)

    def test_poisson_generation(self):
        rng = np.random.default_rng(0)
        s = OutageSchedule.poisson(rng, horizon=1e6, mtbf=1e4, mttr=100)
        assert len(s.windows) > 10
        starts = [w.start for w in s.windows]
        assert starts == sorted(starts)
        # Availability should be roughly mtbf/(mtbf+mttr) ~ 99%.
        downtime = s.total_downtime(1e6)
        assert 0.001 < downtime / 1e6 < 0.05

    def test_poisson_validation(self):
        with pytest.raises(ValueError):
            OutageSchedule.poisson(np.random.default_rng(0), 10, 0, 1)
