"""Unit tests for the simulated provider (5-op surface, metering, outages)."""

import pytest

from repro.cloud.errors import NoSuchObject, ProviderUnavailable
from repro.cloud.latency import LatencyModel
from repro.cloud.outage import OutageSchedule, OutageWindow
from repro.cloud.pricing import PRICE_PLANS
from repro.cloud.provider import (
    TABLE2_LATENCY,
    SimulatedProvider,
    make_table2_cloud_of_clouds,
)


@pytest.fixture
def provider(clock):
    return SimulatedProvider(
        name="p",
        clock=clock,
        latency=LatencyModel(rtt=0.1, upload_bw=1e6, download_bw=1e6),
        pricing=PRICE_PLANS["amazon_s3"],
        outages=OutageSchedule([OutageWindow(100.0, 200.0)]),
    )


class TestFiveOps:
    def test_create_put_get_list_remove(self, provider):
        provider.create("c")
        provider.put("c", "k", b"data")
        assert provider.get("c", "k") == b"data"
        assert provider.list("c") == ["k"]
        provider.remove("c", "k")
        with pytest.raises(NoSuchObject):
            provider.get("c", "k")

    def test_head(self, provider):
        provider.create("c")
        provider.put("c", "k", b"data")
        obj = provider.head("c", "k")
        assert obj.version == 1
        # Head is metered as a zero-byte tier-2 transaction.
        assert provider.meter.month_usage(0).bytes_out == 0


class TestOutageBehaviour:
    def test_available_flag(self, provider, clock):
        assert provider.is_available()
        clock.advance_to(150.0)
        assert not provider.is_available()
        clock.advance_to(250.0)
        assert provider.is_available()

    def test_all_ops_blocked_during_outage(self, provider, clock):
        provider.create("c")
        provider.put("c", "k", b"x")
        clock.advance_to(150.0)
        for fn in (
            lambda: provider.create("c2"),
            lambda: provider.list("c"),
            lambda: provider.get("c", "k"),
            lambda: provider.put("c", "k", b"y"),
            lambda: provider.remove("c", "k"),
            lambda: provider.head("c", "k"),
        ):
            with pytest.raises(ProviderUnavailable):
                fn()
        # Data survives the outage untouched.
        clock.advance_to(250.0)
        assert provider.get("c", "k") == b"x"


class TestMetering:
    def test_put_meters_bytes_and_storage(self, provider, clock):
        provider.create("c")
        provider.put("c", "k", b"12345")
        assert provider.meter.month_usage(0).bytes_in == 5
        assert provider.meter.stored_bytes == 5
        provider.remove("c", "k")
        assert provider.meter.stored_bytes == 0

    def test_get_meters_bytes_out(self, provider):
        provider.create("c")
        provider.put("c", "k", b"12345")
        provider.get("c", "k")
        assert provider.meter.month_usage(0).bytes_out == 5


class TestTable2Fleet:
    def test_four_providers(self, clock):
        fleet = make_table2_cloud_of_clouds(clock)
        assert set(fleet) == {"amazon_s3", "azure", "aliyun", "rackspace"}
        for name, p in fleet.items():
            assert p.latency is TABLE2_LATENCY[name]
            assert p.pricing is PRICE_PLANS[name]

    def test_outage_injection(self, clock):
        fleet = make_table2_cloud_of_clouds(
            clock, outages={"azure": OutageSchedule([OutageWindow(0.0)])}
        )
        assert not fleet["azure"].is_available()
        assert fleet["aliyun"].is_available()

    def test_latency_ordering_matches_fig5(self):
        # Aliyun fastest, then Azure, Amazon, Rackspace (Figure 5).
        rtts = {n: m.rtt for n, m in TABLE2_LATENCY.items()}
        assert rtts["aliyun"] < rtts["azure"] < rtts["amazon_s3"] < rtts["rackspace"]
        bws = {n: m.download_bw for n, m in TABLE2_LATENCY.items()}
        assert bws["aliyun"] > bws["azure"] > bws["amazon_s3"] > bws["rackspace"]
