"""Integration test: rolling outages across the whole fleet.

Providers fail and return one after another while a workload keeps running,
with the healer active between operations.  At no point do concurrent
outages exceed single-fault tolerance, so every scheme must maintain full
service and converge to a consistent, non-degraded state.
"""

import numpy as np

from repro.cloud.outage import OutageWindow
from repro.cloud.provider import make_table2_cloud_of_clouds
from repro.schemes import DuraCloudScheme, HyrdScheme, NCCloudScheme, RacsScheme
from repro.sim.clock import SimClock

KB, MB = 1024, 1024 * 1024


def _rolling_storm(scheme_builder, seed=5):
    clock = SimClock()
    providers = make_table2_cloud_of_clouds(clock)
    scheme = scheme_builder(providers, clock)
    rng = np.random.default_rng(seed)
    model: dict[str, bytes] = {}

    def write(path, size):
        data = rng.integers(0, 256, size, dtype=np.uint8).tobytes()
        scheme.put(path, data)
        model[path] = data

    # Seed with a mix of small and large files.
    for i in range(5):
        write(f"/storm/s{i}", 8 * KB)
    write("/storm/big0", 2 * MB)

    # One provider at a time fails for an hour, with mutations during each
    # window; the healer runs when the next window starts (provider is back).
    fleet = scheme.provider_names
    for round_no, victim in enumerate(fleet):
        start = clock.now
        providers[victim].outages.add(OutageWindow(start, start + 3600.0))
        # Ops during the outage: overwrite one file, create one, read two.
        write(f"/storm/s{round_no % 5}", 8 * KB)
        write(f"/storm/new{round_no}", 16 * KB)
        for path in list(model)[:2]:
            got, _ = scheme.get(path)
            assert got == model[path], f"{path} corrupted during {victim} outage"
        clock.advance_to(start + 3600.0 + 1.0)
        scheme.heal_returned()

    # Storm over: everything consistent, nothing degraded, logs empty.
    for path, data in model.items():
        got, report = scheme.get(path)
        assert got == data
        assert not report.degraded
    for name in fleet:
        assert len(scheme.pending_log(name)) == 0
    return scheme


class TestRollingFailureStorm:
    def test_hyrd(self):
        scheme = _rolling_storm(lambda p, c: HyrdScheme(list(p.values()), c))
        assert scheme.collector.degraded_fraction() < 0.5

    def test_racs(self):
        _rolling_storm(lambda p, c: RacsScheme(list(p.values()), c))

    def test_duracloud(self):
        # DuraCloud only spans S3+Azure; roll the storm over its own fleet.
        def build(p, c):
            return DuraCloudScheme([p["amazon_s3"], p["azure"]], c)

        _rolling_storm(build)

    def test_nccloud(self):
        _rolling_storm(lambda p, c: NCCloudScheme(list(p.values()), c))


class TestBackToBackOutages:
    def test_same_provider_fails_twice(self, providers, clock, payload):
        """A provider that fails again mid-recovery keeps a correct log."""
        hyrd = HyrdScheme(list(providers.values()), clock)
        data1, data2 = payload(8 * KB), payload(8 * KB)

        w1 = OutageWindow(clock.now, clock.now + 100.0)
        providers["azure"].outages.add(w1)
        hyrd.put("/f", data1)
        assert len(hyrd.pending_log("azure")) > 0

        # It returns, but fails again before anything triggers healing.
        clock.advance_to(w1.end + 1.0)
        w2 = OutageWindow(clock.now + 5.0, clock.now + 200.0)
        providers["azure"].outages.add(w2)
        clock.advance_to(w2.start + 1.0)
        hyrd.put("/f", data2)  # second version also missed

        clock.advance_to(w2.end)
        hyrd.heal_returned()
        assert len(hyrd.pending_log("azure")) == 0
        # Azure holds exactly the latest version.
        assert providers["azure"].store.get(hyrd.container, "/f#v2").data == data2
        assert not providers["azure"].store.has(hyrd.container, "/f#v1")
