"""Shared fixtures: clocks, provider fleets, payload helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cloud.latency import ClientLink
from repro.cloud.provider import make_table2_cloud_of_clouds
from repro.sim.clock import SimClock


@pytest.fixture
def clock() -> SimClock:
    return SimClock()


@pytest.fixture
def providers(clock):
    """The four Table II providers on a shared clock."""
    return make_table2_cloud_of_clouds(clock)


@pytest.fixture
def link() -> ClientLink:
    return ClientLink()


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(0xC0FFEE)


@pytest.fixture
def payload(rng):
    """Deterministic random payload factory: payload(n) -> n bytes."""

    def make(n: int) -> bytes:
        return rng.integers(0, 256, size=n, dtype=np.uint8).tobytes()

    return make
