"""Unit tests for dedup chunkers."""

import numpy as np
import pytest

from repro.dedup.chunking import Chunk, ContentDefinedChunker, FixedSizeChunker

KB = 1024


class TestChunk:
    def test_fingerprint_is_sha256(self):
        import hashlib

        c = Chunk(offset=0, data=b"hello")
        assert c.fingerprint == hashlib.sha256(b"hello").hexdigest()
        assert c.length == 5


class TestFixedSizeChunker:
    def test_exact_sizes(self, payload):
        chunks = FixedSizeChunker(100).split(payload(350))
        assert [c.length for c in chunks] == [100, 100, 100, 50]
        assert [c.offset for c in chunks] == [0, 100, 200, 300]

    def test_reassembly(self, payload):
        data = payload(12345)
        chunks = FixedSizeChunker(1000).split(data)
        assert b"".join(c.data for c in chunks) == data

    def test_empty(self):
        chunks = FixedSizeChunker(100).split(b"")
        assert len(chunks) == 1
        assert chunks[0].data == b""

    def test_validation(self):
        with pytest.raises(ValueError):
            FixedSizeChunker(0)


class TestContentDefinedChunker:
    @pytest.fixture
    def chunker(self):
        return ContentDefinedChunker(avg_size=4 * KB)

    def test_reassembly(self, chunker, payload):
        data = payload(200 * KB)
        chunks = chunker.split(data)
        assert b"".join(c.data for c in chunks) == data
        offsets = [c.offset for c in chunks]
        assert offsets == sorted(offsets)

    def test_size_bounds_respected(self, chunker, payload):
        chunks = chunker.split(payload(300 * KB))
        for c in chunks[:-1]:  # the tail may be short
            assert chunker.min_size <= c.length <= chunker.max_size
        assert chunks[-1].length <= chunker.max_size

    def test_average_size_in_ballpark(self, chunker, payload):
        data = payload(2000 * KB)
        chunks = chunker.split(data)
        mean = np.mean([c.length for c in chunks])
        assert 0.5 * chunker.avg_size < mean < 3.0 * chunker.avg_size

    def test_deterministic(self, chunker, payload):
        data = payload(100 * KB)
        a = [c.fingerprint for c in chunker.split(data)]
        b = [c.fingerprint for c in chunker.split(data)]
        assert a == b

    def test_shift_resistance(self, chunker, payload):
        """The CDC property: an insertion early in the stream leaves most
        downstream chunk fingerprints intact (fixed chunking loses all)."""
        data = payload(400 * KB)
        shifted = b"INSERTED-BYTES!" + data
        fps = {c.fingerprint for c in chunker.split(data)}
        fps_shifted = {c.fingerprint for c in chunker.split(shifted)}
        survived = len(fps & fps_shifted) / len(fps)
        assert survived > 0.8

        fixed = FixedSizeChunker(4 * KB)
        ffps = {c.fingerprint for c in fixed.split(data)}
        ffps_shifted = {c.fingerprint for c in fixed.split(shifted)}
        assert len(ffps & ffps_shifted) / len(ffps) < 0.05

    def test_identical_regions_share_fingerprints(self, chunker, payload):
        shared = payload(100 * KB)
        a = payload(40 * KB) + shared
        b = payload(52 * KB) + shared
        fps_a = {c.fingerprint for c in chunker.split(a)}
        fps_b = {c.fingerprint for c in chunker.split(b)}
        assert len(fps_a & fps_b) >= 5  # the shared tail deduplicates

    def test_empty_input(self, chunker):
        chunks = chunker.split(b"")
        assert len(chunks) == 1 and chunks[0].data == b""

    def test_validation(self):
        with pytest.raises(ValueError):
            ContentDefinedChunker(avg_size=32)
        with pytest.raises(ValueError):
            ContentDefinedChunker(avg_size=4 * KB, min_size=8 * KB)
        with pytest.raises(ValueError):
            ContentDefinedChunker(avg_size=4 * KB, window=2)

    def test_max_size_enforced_on_pathological_input(self):
        # All-zero input never hits the signature pattern naturally.
        chunker = ContentDefinedChunker(avg_size=4 * KB)
        chunks = chunker.split(b"\x00" * (64 * KB))
        assert all(c.length <= chunker.max_size for c in chunks)
        assert len(chunks) >= (64 * KB) // chunker.max_size
