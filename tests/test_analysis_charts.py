"""Tests for ASCII chart rendering."""

import pytest

from repro.analysis.charts import bar_chart, grouped_bar_chart, line_chart


class TestBarChart:
    def test_basic(self):
        out = bar_chart({"a": 1.0, "bb": 2.0}, title="T", width=10)
        lines = out.splitlines()
        assert lines[0] == "T"
        assert len(lines) == 3
        assert "2.000" in lines[2]

    def test_longest_bar_fills_width(self):
        out = bar_chart({"a": 1.0, "b": 2.0}, width=10)
        bar_b = out.splitlines()[1]
        assert bar_b.count("█") == 10

    def test_proportionality(self):
        out = bar_chart({"a": 1.0, "b": 2.0}, width=10)
        a_line, b_line = out.splitlines()
        assert a_line.count("█") == 5

    def test_zero_values_ok(self):
        out = bar_chart({"a": 0.0, "b": 0.0})
        assert "0.000" in out

    def test_validation(self):
        with pytest.raises(ValueError):
            bar_chart({})
        with pytest.raises(ValueError):
            bar_chart({"a": -1.0})

    def test_sequence_input_preserves_order(self):
        out = bar_chart([("z", 1.0), ("a", 2.0)])
        lines = out.splitlines()
        assert lines[0].strip().startswith("z")


class TestGroupedBarChart:
    def test_groups_rendered(self):
        out = grouped_bar_chart(
            [("normal", {"hyrd": 1.0}), ("outage", {"hyrd": 2.0})], title="G"
        )
        assert "normal:" in out and "outage:" in out

    def test_shared_scale(self):
        out = grouped_bar_chart(
            [("g1", {"a": 1.0}), ("g2", {"a": 2.0})], width=10
        )
        lines = [l for l in out.splitlines() if "█" in l]
        assert lines[0].count("█") == 5
        assert lines[1].count("█") == 10

    def test_validation(self):
        with pytest.raises(ValueError):
            grouped_bar_chart([])


class TestLineChart:
    def test_renders_all_series(self):
        out = line_chart(
            ["a", "b", "c"],
            {"s1": [1.0, 2.0, 3.0], "s2": [3.0, 2.0, 1.0]},
            title="L",
        )
        assert "o" in out and "x" in out
        assert "legend: o=s1  x=s2" in out

    def test_extremes_on_grid_edges(self):
        out = line_chart(["a", "b"], {"s": [0.0, 10.0]}, height=5)
        lines = out.splitlines()
        assert "10.00" in lines[0]  # max label on top
        assert "0.00" in lines[-3]  # min label on bottom row

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            line_chart(["a"], {"s": [1.0, 2.0]})

    def test_validation(self):
        with pytest.raises(ValueError):
            line_chart(["a"], {})
        with pytest.raises(ValueError):
            line_chart(["a"], {"s": [1.0]}, height=1)

    def test_flat_series_no_crash(self):
        out = line_chart(["a", "b"], {"s": [5.0, 5.0]})
        assert "o" in out
