"""Unit tests for the typed metrics registry and its catalog."""

import pytest

from repro.metrics.catalog import METRIC_CATALOG, MetricSpec, catalog_markdown_table
from repro.metrics.registry import (
    DEFAULT_LATENCY_BUCKETS,
    Histogram,
    MetricsRegistry,
    UnknownMetricError,
)


class TestCounter:
    def test_inc_accumulates(self):
        r = MetricsRegistry()
        r.counter("retries").inc()
        r.counter("retries").inc(3)
        assert r.counter_value("retries") == 4

    def test_negative_inc_rejected(self):
        r = MetricsRegistry()
        with pytest.raises(ValueError):
            r.counter("retries").inc(-1)

    def test_get_or_create_is_idempotent(self):
        r = MetricsRegistry()
        a = r.counter("provider_requests_total", provider="azure", op="get")
        b = r.counter("provider_requests_total", op="get", provider="azure")
        assert a is b  # label order must not matter
        assert len(r) == 1

    def test_unread_counter_is_zero(self):
        assert MetricsRegistry().counter_value("retries") == 0


class TestGauge:
    def test_last_write_wins(self):
        r = MetricsRegistry()
        g = r.gauge("write_log_pending", provider="azure")
        g.set(3)
        g.set(1)
        assert g.value == 1.0


class TestHistogram:
    def test_empty(self):
        r = MetricsRegistry()
        h = r.histogram("op_latency_seconds", op="get")
        s = h.summary()
        assert s == {"count": 0.0, "mean": 0.0, "p50": 0.0, "p95": 0.0,
                     "p99": 0.0, "max": 0.0}

    def test_single_sample_is_exact(self):
        r = MetricsRegistry()
        h = r.histogram("op_latency_seconds", op="get")
        h.observe(0.173)
        s = h.summary()
        assert s["count"] == 1.0
        # Clamping to the observed range makes one sample exact at every q.
        assert s["p50"] == s["p95"] == s["p99"] == s["max"] == 0.173

    def test_ties_report_the_tied_value(self):
        r = MetricsRegistry()
        h = r.histogram("op_latency_seconds", op="get")
        for _ in range(10):
            h.observe(0.4)
        s = h.summary()
        assert s["p50"] == s["p95"] == s["p99"] == 0.4
        assert s["mean"] == pytest.approx(0.4)

    def test_percentiles_are_monotone(self):
        r = MetricsRegistry()
        h = r.histogram("op_latency_seconds", op="get")
        for v in (0.01, 0.02, 0.2, 0.4, 0.9, 3.0, 7.5):
            h.observe(v)
        assert h.percentile(50) <= h.percentile(95) <= h.percentile(99) <= h.max

    def test_overflow_bucket(self):
        r = MetricsRegistry()
        h = r.histogram("op_latency_seconds", op="get")
        h.observe(DEFAULT_LATENCY_BUCKETS[-1] * 10)
        assert h.counts[-1] == 1
        assert h.percentile(99) == h.max

    def test_negative_sample_rejected(self):
        r = MetricsRegistry()
        with pytest.raises(ValueError):
            r.histogram("op_latency_seconds", op="get").observe(-0.1)

    def test_bad_bounds_rejected(self):
        with pytest.raises(ValueError):
            Histogram("x", (), None, bounds=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("x", (), None, bounds=())

    def test_bad_percentile_rejected(self):
        r = MetricsRegistry()
        with pytest.raises(ValueError):
            r.histogram("op_latency_seconds", op="get").percentile(101)


class TestStrictCatalog:
    def test_unknown_name_raises(self):
        with pytest.raises(UnknownMetricError):
            MetricsRegistry().counter("not_a_real_metric")

    def test_wrong_type_raises(self):
        with pytest.raises(UnknownMetricError):
            MetricsRegistry().gauge("retries")  # declared as a counter

    def test_wrong_labels_raise(self):
        with pytest.raises(UnknownMetricError):
            MetricsRegistry().counter("retries", provider="azure")

    def test_non_strict_allows_anything(self):
        r = MetricsRegistry(strict=False)
        r.counter("ad_hoc", anything="goes").inc()
        assert r.counter_value("ad_hoc", anything="goes") == 1

    def test_every_spec_is_well_formed(self):
        for spec in METRIC_CATALOG.values():
            assert isinstance(spec, MetricSpec)
            assert spec.type in ("counter", "gauge", "histogram")
            assert spec.labels == tuple(sorted(spec.labels))
            assert spec.description

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            MetricSpec(name="x", type="timer", description="d")
        with pytest.raises(ValueError):
            MetricSpec(name="x", type="counter", description="d",
                       labels=("z", "a"))

    def test_markdown_table_covers_the_catalog(self):
        table = catalog_markdown_table()
        for name in METRIC_CATALOG:
            assert f"`{name}`" in table


class TestQueries:
    @pytest.fixture
    def registry(self):
        r = MetricsRegistry()
        r.counter("retries").inc(2)
        r.counter("hedged_reads").inc()
        for provider, op, n in (("azure", "get", 3), ("azure", "put", 2),
                                ("aliyun", "get", 5)):
            r.counter("provider_requests_total", provider=provider, op=op).inc(n)
        r.counter("ops_total", op="get", degraded="true").inc(1)
        r.counter("ops_total", op="get", degraded="false").inc(4)
        return r

    def test_unlabeled_counters(self, registry):
        assert registry.counters() == {"hedged_reads": 1, "retries": 2}

    def test_counters_by_name(self, registry):
        by_label = registry.counters("provider_requests_total")
        assert by_label[(("op", "get"), ("provider", "azure"))] == 3

    def test_sum_by_label(self, registry):
        assert registry.sum_by_label("provider_requests_total", "provider") == {
            "azure": 5, "aliyun": 5,
        }
        assert registry.sum_by_label("provider_requests_total", "op") == {
            "get": 8, "put": 2,
        }

    def test_breakdown(self, registry):
        split = registry.breakdown("ops_total", "op", "degraded")
        assert split[("get", "true")] == 1
        assert split[("get", "false")] == 4

    def test_emitted_names(self, registry):
        assert "retries" in registry.emitted_names()
        assert "provider_requests_total" in registry.emitted_names()

    def test_all_metrics_sorted(self, registry):
        names = [m.name for m in registry.all_metrics()]
        assert names == sorted(names)


class _SpyTracer:
    enabled = True

    def __init__(self):
        self.events = []

    def metric(self, kind, name, labels, value):
        self.events.append((kind, name, labels, value))


class TestMirrorAndReplay:
    def test_every_mutation_is_mirrored(self):
        spy = _SpyTracer()
        r = MetricsRegistry(tracer=spy)
        r.counter("retries").inc(2)
        r.gauge("write_log_pending", provider="azure").set(3)
        r.histogram("op_latency_seconds", op="get").observe(0.5)
        assert spy.events == [
            ("counter", "retries", (), 2),
            ("gauge", "write_log_pending", (("provider", "azure"),), 3.0),
            ("histogram", "op_latency_seconds", (("op", "get"),), 0.5),
        ]

    def test_disabled_tracer_is_not_called(self):
        spy = _SpyTracer()
        spy.enabled = False
        r = MetricsRegistry(tracer=spy)
        r.counter("retries").inc()
        assert spy.events == []

    def test_replay_reproduces_state(self):
        spy = _SpyTracer()
        live = MetricsRegistry(tracer=spy)
        live.counter("retries").inc(2)
        live.counter("provider_requests_total", provider="azure", op="get").inc(7)
        live.gauge("write_log_pending", provider="azure").set(1)
        h = live.histogram("op_latency_seconds", op="get")
        for v in (0.1, 0.3, 2.0):
            h.observe(v)

        replayed = MetricsRegistry()
        for kind, name, labels, value in spy.events:
            replayed.apply_event(kind, name, dict(labels), value)

        assert replayed.counters() == live.counters()
        assert replayed.counter_value(
            "provider_requests_total", provider="azure", op="get") == 7
        assert replayed.gauge("write_log_pending", provider="azure").value == 1.0
        assert (replayed.histogram("op_latency_seconds", op="get").summary()
                == h.summary())

    def test_unknown_event_kind_raises(self):
        with pytest.raises(ValueError):
            MetricsRegistry().apply_event("timer", "retries", {}, 1)
