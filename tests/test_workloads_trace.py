"""Unit tests for trace records and the replayer."""

import pytest

from repro.schemes import SingleCloudScheme
from repro.workloads.trace import TraceOp, TraceReplayer


@pytest.fixture
def scheme(providers, clock):
    return SingleCloudScheme(providers["aliyun"], clock)


class TestTraceOp:
    def test_validation(self):
        with pytest.raises(ValueError):
            TraceOp("frobnicate", "/a")
        with pytest.raises(ValueError):
            TraceOp("put", "/a", size=-1)


class TestReplayer:
    def test_full_lifecycle(self, scheme):
        ops = [
            TraceOp("put", "/d/a", size=1000),
            TraceOp("get", "/d/a"),
            TraceOp("stat", "/d/a"),
            TraceOp("list", "/d"),
            TraceOp("update", "/d/a", size=10, offset=5),
            TraceOp("get", "/d/a"),
            TraceOp("remove", "/d/a"),
        ]
        collector = TraceReplayer(seed=1).run(scheme, ops)
        assert len(collector) == 7
        assert [r.op for r in collector.reports] == [
            "put",
            "get",
            "stat",
            "list",
            "update",
            "get",
            "remove",
        ]

    def test_payloads_deterministic(self):
        r1, r2 = TraceReplayer(seed=9), TraceReplayer(seed=9)
        assert r1.payload("/a", 1, 64) == r2.payload("/a", 1, 64)
        assert r1.payload("/a", 1, 64) != r1.payload("/a", 2, 64)
        assert r1.payload("/a", 1, 64) != r1.payload("/b", 1, 64)

    def test_payloads_stable_across_block_cache_eviction(self):
        from repro.workloads import trace as trace_mod

        r = TraceReplayer(seed=9)
        before = r.payload("/a", 1, 64)
        for i in range(trace_mod._MAX_CACHED_BLOCKS + 8):
            r.payload(f"/filler/{i}", 1, 8)
        assert len(r._blocks) <= trace_mod._MAX_CACHED_BLOCKS
        assert r.payload("/a", 1, 64) == before

    def test_patch_stream_is_namespaced_from_put_stream(self):
        """Patch payloads can never collide with put payloads, no matter how
        many versions a path accumulates (the old derivation used
        ``put_version + 1000``, which collided once a path saw >999 puts)."""
        r = TraceReplayer(seed=9)
        patches = {r.patch_payload("/a", seq, 64) for seq in range(1, 8)}
        puts = {r.payload("/a", version, 64) for version in range(1, 2048)}
        assert not patches & puts
        # ...and the patch stream itself is deterministic and per-seq distinct.
        assert r.patch_payload("/a", 1, 64) == TraceReplayer(seed=9).patch_payload("/a", 1, 64)
        assert r.patch_payload("/a", 1, 64) != r.patch_payload("/a", 2, 64)

    def test_scheme_integrity_layer_catches_corruption(self, scheme, providers):
        """Provider-side corruption trips the scheme's digest verification
        (the HAIL-style layer) before the replayer even sees the data."""
        from repro.schemes.base import DataUnavailable

        replayer = TraceReplayer(seed=1)
        replayer.run(scheme, [TraceOp("put", "/d/a", size=100)])
        providers["aliyun"].store.put(scheme.container, "/d/a#v1", b"\x00" * 100, 0.0)
        with pytest.raises(DataUnavailable, match="no intact replica"):
            replayer.run(scheme, [TraceOp("get", "/d/a")])

    def test_replayer_verification_backstops_without_digests(
        self, scheme, providers
    ):
        """With digests stripped (pre-integrity metadata), the replayer's own
        content check is the last line of defence."""
        import dataclasses

        replayer = TraceReplayer(seed=1)
        replayer.run(scheme, [TraceOp("put", "/d/a", size=100)])
        entry = scheme.namespace.get("/d/a")
        scheme.namespace.upsert(dataclasses.replace(entry, digests=()))
        providers["aliyun"].store.put(scheme.container, "/d/a#v1", b"\x00" * 100, 0.0)
        with pytest.raises(AssertionError, match="content mismatch"):
            replayer.run(scheme, [TraceOp("get", "/d/a")])

    def test_verification_can_be_disabled(self, scheme, providers):
        import dataclasses

        replayer = TraceReplayer(seed=1, verify=False)
        replayer.run(scheme, [TraceOp("put", "/d/a", size=100)])
        entry = scheme.namespace.get("/d/a")
        scheme.namespace.upsert(dataclasses.replace(entry, digests=()))
        providers["aliyun"].store.put(scheme.container, "/d/a#v1", b"\x00" * 100, 0.0)
        replayer.run(scheme, [TraceOp("get", "/d/a")])  # no exception

    def test_update_tracking(self, scheme):
        replayer = TraceReplayer(seed=1)
        collector = replayer.run(
            scheme,
            [
                TraceOp("put", "/d/a", size=100),
                TraceOp("update", "/d/a", size=20, offset=90),
                TraceOp("get", "/d/a"),  # verifies the composed content
            ],
        )
        assert len(collector) == 3
        assert replayer.expected_size("/d/a") == 110
        # The regenerated expectation matches what the scheme actually serves.
        data, _report = scheme.get("/d/a")
        assert data == replayer.expected_content("/d/a")

    def test_versions_reset_after_remove(self, scheme):
        replayer = TraceReplayer(seed=1)
        replayer.run(
            scheme,
            [
                TraceOp("put", "/d/a", size=50),
                TraceOp("remove", "/d/a"),
                TraceOp("put", "/d/a", size=70),
                TraceOp("get", "/d/a"),
            ],
        )
        assert replayer.expected_size("/d/a") == 70
        assert replayer.expected_size("/gone") is None

    def test_heal_between(self, scheme, providers, clock):
        from repro.cloud.outage import OutageWindow

        window = OutageWindow(clock.now, clock.now + 10.0)
        providers["aliyun"].outages.add(window)
        replayer = TraceReplayer(seed=1)
        replayer.run(scheme, [TraceOp("put", "/d/a", size=10)])
        assert len(scheme.pending_log("aliyun")) > 0
        clock.advance_to(window.end)
        collector = replayer.run(
            scheme, [TraceOp("get", "/d/a")], heal_between=True
        )
        assert any(r.op == "heal" for r in collector.reports)
        assert len(scheme.pending_log("aliyun")) == 0
