"""Tests for the vendor lock-in switching-cost analysis."""

import pytest

from repro.analysis.lockin import (
    SwitchingCost,
    single_cloud_exit_cost,
    switching_cost_report,
)
from repro.cloud.pricing import GB


@pytest.fixture(scope="module")
def report():
    return {(sc.scheme, sc.departed): sc for sc in switching_cost_report()}


class TestSingleCloudLockIn:
    def test_amazon_exit_is_full_egress(self, report):
        sc = report[("single-amazon_s3", "amazon_s3")]
        assert sc.egress_cost == pytest.approx(0.201)
        assert sc.bytes_read == GB

    def test_free_egress_providers_exit_free(self, report):
        assert report[("single-azure", "azure")].egress_cost == 0.0
        assert report[("single-rackspace", "rackspace")].egress_cost == 0.0

    def test_helper_matches_report(self, report):
        assert single_cloud_exit_cost("aliyun") == pytest.approx(
            report[("single-aliyun", "aliyun")].egress_cost
        )


class TestCloudOfCloudsMobility:
    def test_duracloud_leaving_s3_is_free(self, report):
        """The surviving Azure replica re-seeds for free egress."""
        sc = report[("duracloud", "amazon_s3")]
        assert sc.egress_cost == 0.0
        assert sc.read_from == ("azure",)

    def test_racs_exit_cheaper_than_single_s3(self, report):
        """Striping spreads the re-seed read over three providers."""
        worst = max(
            report[("racs", d)].egress_cost
            for d in ("amazon_s3", "azure", "aliyun", "rackspace")
        )
        assert worst < single_cloud_exit_cost("amazon_s3")

    def test_racs_rebuild_reads_k_fragments(self, report):
        sc = report[("racs", "azure")]
        assert sc.bytes_read == pytest.approx(GB)
        assert len(sc.read_from) == 3

    def test_hyrd_worst_case_beats_s3_lock_in(self, report):
        worst = max(
            report[("hyrd", d)].egress_cost
            for d in ("amazon_s3", "azure", "aliyun", "rackspace")
        )
        assert worst < single_cloud_exit_cost("amazon_s3")

    def test_hyrd_leaving_azure_touches_only_small_class(self, report):
        sc = report[("hyrd", "azure")]
        # Azure holds only replicated small bytes (20% of the GB).
        assert sc.bytes_read == pytest.approx(0.2 * GB)
        assert sc.read_from == ("aliyun",)

    def test_hyrd_leaving_aliyun_touches_both_classes(self, report):
        sc = report[("hyrd", "aliyun")]
        assert sc.bytes_read == pytest.approx(GB)  # 0.2 small + 0.8 large
        assert set(sc.read_from) == {"azure", "amazon_s3", "rackspace"}

    def test_dataclass_sanity(self):
        sc = SwitchingCost("s", "p", 10.0, ("a",), 0.5)
        assert sc.cost_per_logical_gb == 0.5
