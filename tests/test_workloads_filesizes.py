"""Unit tests for file-size distributions (workload fidelity checks)."""

import numpy as np
import pytest

from repro.workloads.filesizes import (
    AgrawalFileSizes,
    LogUniformFileSizes,
    MediaLibraryFileSizes,
    PostmarkPoolFileSizes,
)

KB = 1024
MB = 1024 * 1024


class TestLogUniform:
    def test_bounds_respected(self, rng):
        sizes = LogUniformFileSizes(lo=1 * KB, hi=1 * MB).sample(rng, 5000)
        assert sizes.min() >= 1 * KB * 0.99
        assert sizes.max() <= 1 * MB

    def test_log_uniformity(self, rng):
        sizes = LogUniformFileSizes(lo=1 * KB, hi=1 * MB).sample(rng, 20_000)
        # Median in log space sits near the geometric mean of the bounds.
        geo = np.sqrt(1 * KB * 1 * MB)
        assert 0.8 * geo < np.median(sizes) < 1.25 * geo

    def test_validation(self):
        with pytest.raises(ValueError):
            LogUniformFileSizes(lo=0, hi=100).sample(np.random.default_rng(0), 1)

    def test_minimum_one_byte(self, rng):
        sizes = LogUniformFileSizes(lo=1, hi=2).sample(rng, 100)
        assert sizes.min() >= 1


class TestAgrawal:
    """The distribution must hit the statistics the paper cites (§II-B)."""

    def test_half_of_files_below_4k(self, rng):
        sizes = AgrawalFileSizes().sample(rng, 50_000)
        assert 0.50 <= (sizes < 4 * KB).mean() <= 0.60

    def test_large_files_hold_most_bytes(self, rng):
        sizes = AgrawalFileSizes().sample(rng, 50_000)
        large_share = sizes[sizes >= 3 * MB].sum() / sizes.sum()
        assert large_share >= 0.70

    def test_large_files_are_count_minority(self, rng):
        sizes = AgrawalFileSizes().sample(rng, 50_000)
        assert (sizes >= 3 * MB).mean() <= 0.10


class TestPostmarkPool:
    def test_bounds(self, rng):
        sizes = PostmarkPoolFileSizes().sample(rng, 20_000)
        assert sizes.min() >= 1 * KB * 0.99
        assert sizes.max() <= 100 * MB

    def test_small_majority_large_minority(self, rng):
        sizes = PostmarkPoolFileSizes().sample(rng, 20_000)
        assert (sizes < 4 * KB).mean() >= 0.45
        assert 0.05 <= (sizes >= 1 * MB).mean() <= 0.20

    def test_bytes_dominated_by_large(self, rng):
        sizes = PostmarkPoolFileSizes().sample(rng, 20_000)
        assert sizes[sizes >= 1 * MB].sum() / sizes.sum() >= 0.80

    def test_validation(self):
        with pytest.raises(ValueError):
            PostmarkPoolFileSizes(lo=100, hi=100)


class TestMediaLibrary:
    def test_scale_shrinks_everything(self, rng):
        full = MediaLibraryFileSizes().sample(rng, 20_000).mean()
        eighth = MediaLibraryFileSizes(scale=0.125).sample(rng, 20_000).mean()
        assert eighth == pytest.approx(full / 8, rel=0.15)

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            MediaLibraryFileSizes(scale=0)

    def test_mixture_weights_validated(self):
        from repro.workloads.filesizes import _Band, _BandMixture

        with pytest.raises(ValueError):
            _BandMixture([_Band(1, 2, 0.5)])

    def test_mean_size_helper(self, rng):
        d = MediaLibraryFileSizes()
        assert d.mean_size(rng, 2000) > 1 * MB
