"""Unit tests for the Workload Monitor."""

import pytest

from repro.core.config import MB, HyRDConfig
from repro.core.monitor import FileClass, WorkloadMonitor


@pytest.fixture
def monitor():
    return WorkloadMonitor(HyRDConfig())


class TestClassification:
    def test_threshold_boundary(self, monitor):
        assert monitor.classify(MB - 1) == FileClass.SMALL
        assert monitor.classify(MB) == FileClass.LARGE
        assert monitor.classify(0) == FileClass.SMALL

    def test_negative_rejected(self, monitor):
        with pytest.raises(ValueError):
            monitor.classify(-1)

    def test_custom_threshold(self):
        m = WorkloadMonitor(HyRDConfig(size_threshold=4096))
        assert m.classify(4095) == FileClass.SMALL
        assert m.classify(4096) == FileClass.LARGE


class TestStats:
    def test_observe_accumulates(self, monitor):
        monitor.observe(100)
        monitor.observe(2 * MB)
        monitor.observe_metadata(300)
        stats = monitor.stats
        assert stats.counts[FileClass.SMALL] == 1
        assert stats.counts[FileClass.LARGE] == 1
        assert stats.counts[FileClass.METADATA] == 1
        assert stats.bytes_by_class[FileClass.LARGE] == 2 * MB

    def test_fraction_small_bytes(self, monitor):
        monitor.observe(MB // 2)
        monitor.observe(MB // 2)
        monitor.observe(3 * MB)
        assert monitor.stats.fraction_small_bytes() == pytest.approx(0.25)

    def test_fraction_empty(self, monitor):
        assert monitor.stats.fraction_small_bytes() == 0.0

    def test_histogram_buckets(self, monitor):
        monitor.observe(1000)  # <4K
        monitor.observe(5000)  # 4K-64K
        monitor.observe(100_000)  # 64K-1M
        monitor.observe(2 * MB)  # 1M-16M
        monitor.observe(100 * MB)  # >=16M
        h = monitor.stats.histogram
        assert h["<4K"] == 1
        assert h["4K-64K"] == 1
        assert h["64K-1M"] == 1
        assert h["1M-16M"] == 1
        assert h[">=16M"] == 1
