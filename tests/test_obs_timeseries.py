"""Metric time series: snapshots, ring bounds, cadence, JSONL round trip."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.registry import MetricsRegistry
from repro.obs.timeseries import (
    HISTOGRAM_FIELDS,
    MetricTimeSeries,
    TimeSeriesSampler,
    series_id,
    split_series_id,
)


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now


def make_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("ops_total", op="get", degraded="false").inc(3)
    reg.gauge("provider_health_slowdown", provider="azure").set(1.25)
    reg.histogram("op_latency_seconds", op="get").observe(0.1)
    reg.histogram("op_latency_seconds", op="get").observe(0.4)
    return reg


class TestSeriesIds:
    def test_round_trip_plain(self):
        assert split_series_id("retries") == ("retries", (), None)

    def test_round_trip_labels_and_field(self):
        sid = series_id("op_latency_seconds", (("op", "get"),), "p95")
        assert sid == "op_latency_seconds{op=get}:p95"
        assert split_series_id(sid) == (
            "op_latency_seconds",
            (("op", "get"),),
            "p95",
        )

    def test_field_without_labels(self):
        assert split_series_id("x:count") == ("x", (), "count")


class TestMetricTimeSeries:
    def test_snapshot_captures_all_instrument_kinds(self):
        ts = MetricTimeSeries(cadence=10.0)
        ts.snapshot(make_registry(), 5.0)
        values = ts.samples[0][1]
        assert values["ops_total{degraded=false,op=get}"] == 3
        assert values["provider_health_slowdown{provider=azure}"] == 1.25
        for f in HISTOGRAM_FIELDS:
            assert f"op_latency_seconds{{op=get}}:{f}" in values
        assert values["op_latency_seconds{op=get}:count"] == 2

    def test_capacity_is_a_ring(self):
        ts = MetricTimeSeries(cadence=1.0, capacity=3)
        reg = MetricsRegistry()
        for t in range(5):
            ts.snapshot(reg, float(t))
        assert len(ts) == 3
        assert ts.span == (2.0, 4.0)

    def test_time_must_not_regress(self):
        ts = MetricTimeSeries()
        reg = MetricsRegistry()
        ts.snapshot(reg, 10.0)
        with pytest.raises(ValueError, match="precedes"):
            ts.snapshot(reg, 9.0)

    def test_series_latest_and_deltas(self):
        ts = MetricTimeSeries()
        reg = MetricsRegistry()
        counter = reg.counter("retries")
        for t in (1.0, 2.0, 3.0):
            counter.inc(2)
            ts.snapshot(reg, t)
        assert ts.series("retries") == [(1.0, 2), (2.0, 4), (3.0, 6)]
        assert ts.latest("retries") == 6
        assert ts.latest("absent", default=-1) == -1
        assert ts.deltas("retries") == [(2.0, 2), (3.0, 2)]

    def test_validation(self):
        with pytest.raises(ValueError):
            MetricTimeSeries(cadence=0.0)
        with pytest.raises(ValueError):
            MetricTimeSeries(capacity=0)


class TestJsonlRoundTrip:
    def test_export_import_export_byte_identical(self):
        ts = MetricTimeSeries(cadence=30.0, meta={"scheme": "hyrd", "seed": 0})
        reg = make_registry()
        ts.snapshot(reg, 12.5)
        reg.counter("ops_total", op="get", degraded="false").inc()
        ts.snapshot(reg, 42.5)
        text = ts.to_jsonl()
        again = MetricTimeSeries.parse_jsonl(text.splitlines())
        assert again.to_jsonl() == text
        assert again.meta == ts.meta
        assert list(again.samples) == list(ts.samples)

    def test_file_round_trip(self, tmp_path):
        ts = MetricTimeSeries(cadence=5.0)
        ts.snapshot(make_registry(), 1.0)
        path = tmp_path / "ts.jsonl"
        ts.write_jsonl(path)
        assert MetricTimeSeries.read_jsonl(path).to_jsonl() == ts.to_jsonl()

    def test_missing_meta_rejected(self):
        with pytest.raises(ValueError, match="no ts.meta"):
            MetricTimeSeries.parse_jsonl(
                ['{"t":"ts.sample","time":1.0,"values":{}}']
            )

    def test_duplicate_meta_rejected(self):
        line = json.dumps(
            {"t": "ts.meta", "cadence": 1.0, "capacity": 4, "attrs": {}}
        )
        with pytest.raises(ValueError, match="duplicate"):
            MetricTimeSeries.parse_jsonl([line, line])

    def test_out_of_order_stream_rejected(self):
        lines = [
            json.dumps({"t": "ts.meta", "cadence": 1.0, "capacity": 4, "attrs": {}}),
            json.dumps({"t": "ts.sample", "time": 5.0, "values": {}}),
            json.dumps({"t": "ts.sample", "time": 4.0, "values": {}}),
        ]
        with pytest.raises(ValueError, match="out of order"):
            MetricTimeSeries.parse_jsonl(lines)


# JSON-safe scalar values a registry snapshot can contain: counter ints and
# gauge/histogram floats (finite; NaN/inf are not JSON and never emitted).
_values = st.one_of(
    st.integers(min_value=0, max_value=2**53),
    st.floats(allow_nan=False, allow_infinity=False, width=64),
)
_names = st.text(
    alphabet=st.characters(whitelist_categories=("Ll",), whitelist_characters="_"),
    min_size=1,
    max_size=12,
)


@st.composite
def _time_series(draw):
    ts = MetricTimeSeries(
        cadence=draw(st.floats(min_value=0.1, max_value=1e6, allow_nan=False)),
        capacity=draw(st.integers(min_value=1, max_value=64)),
        meta={"seed": draw(st.integers(min_value=0, max_value=1000))},
    )
    ids = draw(st.lists(_names, min_size=1, max_size=6, unique=True))
    times = sorted(
        draw(
            st.lists(
                st.floats(min_value=0.0, max_value=1e9, allow_nan=False),
                min_size=0,
                max_size=10,
            )
        )
    )
    for t in times:
        values = {
            sid: draw(_values) for sid in ids if draw(st.booleans())
        }
        ts.samples.append((t, values))
    return ts


@given(_time_series())
@settings(max_examples=60, deadline=None)
def test_jsonl_round_trip_property(ts):
    """export -> import -> export is byte-identical for any sampled series."""
    text = ts.to_jsonl()
    assert MetricTimeSeries.parse_jsonl(text.splitlines()).to_jsonl() == text


class TestSampler:
    def test_unbound_poll_is_noop(self):
        sampler = TimeSeriesSampler(cadence=10.0)
        assert sampler.poll() is False
        assert not sampler.bound

    def test_samples_on_cadence_grid(self):
        clock = FakeClock()
        reg = MetricsRegistry()
        sampler = TimeSeriesSampler(cadence=10.0)
        sampler.bind(reg, clock, meta={"scheme": "t"})
        clock.now = 5.0
        assert sampler.poll() is False  # not due yet
        clock.now = 10.0
        assert sampler.poll() is True
        assert sampler.poll() is False  # once per due instant
        clock.now = 19.9
        assert sampler.poll() is False
        clock.now = 20.0
        assert sampler.poll() is True
        assert [t for t, _ in sampler.ts.samples] == [10.0, 20.0]

    def test_long_jump_yields_one_sample_and_realigns(self):
        clock = FakeClock()
        sampler = TimeSeriesSampler(cadence=10.0)
        sampler.bind(MetricsRegistry(), clock)
        clock.now = 57.0  # jumped over 5 due instants
        assert sampler.poll() is True  # exactly one sample, stamped at 57
        assert [t for t, _ in sampler.ts.samples] == [57.0]
        clock.now = 59.0
        assert sampler.poll() is False  # next due is 60, not a backfill
        clock.now = 60.0
        assert sampler.poll() is True

    def test_on_sample_callback_fires(self):
        clock = FakeClock()
        seen = []
        sampler = TimeSeriesSampler(cadence=1.0, on_sample=seen.append)
        sampler.bind(MetricsRegistry(), clock)
        clock.now = 1.0
        sampler.poll()
        assert seen == [sampler]

    def test_finish_takes_final_off_grid_snapshot(self):
        clock = FakeClock()
        sampler = TimeSeriesSampler(cadence=10.0)
        sampler.bind(MetricsRegistry(), clock)
        clock.now = 10.0
        sampler.poll()
        clock.now = 13.7
        sampler.finish()
        assert [t for t, _ in sampler.ts.samples] == [10.0, 13.7]
        sampler.finish()  # idempotent at the same instant
        assert len(sampler.ts) == 2

    def test_double_bind_rejected(self):
        sampler = TimeSeriesSampler()
        sampler.bind(MetricsRegistry(), FakeClock())
        with pytest.raises(RuntimeError, match="already bound"):
            sampler.bind(MetricsRegistry(), FakeClock())

    def test_slo_published_before_snapshot(self):
        class FakeSlo:
            def __init__(self):
                self.published = []

            def publish(self, now):
                self.published.append(now)

        clock = FakeClock()
        slo = FakeSlo()
        sampler = TimeSeriesSampler(cadence=10.0, slo=slo)
        sampler.bind(MetricsRegistry(), clock)
        clock.now = 10.0
        sampler.poll()
        assert slo.published == [10.0]


class TestZeroCost:
    def test_no_sampler_run_is_byte_identical(self):
        """The acceptance bar: a run without a sampler/SLO renders the exact
        same report as one with them attached — sampling is observation, not
        participation."""
        from repro.obs import SloTracker, run_fault_storm_report

        plain, _ = run_fault_storm_report(seed=1, trace=False)
        slo = SloTracker()
        sampler = TimeSeriesSampler(cadence=30.0, slo=slo)
        watched, _ = run_fault_storm_report(
            seed=1, trace=False, slo=slo, sampler=sampler
        )
        assert len(sampler.ts) > 0
        assert watched.render() == plain.render()
