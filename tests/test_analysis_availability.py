"""Tests for the availability analysis (analytic + Monte-Carlo)."""

import pytest

from repro.analysis.availability import (
    DAY,
    STANDARD_PLACEMENTS,
    SchemePlacement,
    analytic_report,
    availability_of_placement,
    hyrd_combined,
    monte_carlo_report,
    nines,
)


class TestPlacementMath:
    def test_single_provider(self):
        p = SchemePlacement("s", ("a",), 1)
        assert availability_of_placement(p, {"a": 0.99}) == pytest.approx(0.99)

    def test_replication_or(self):
        p = SchemePlacement("r", ("a", "b"), 1)
        got = availability_of_placement(p, {"a": 0.9, "b": 0.8})
        assert got == pytest.approx(1 - 0.1 * 0.2)

    def test_all_required_and(self):
        p = SchemePlacement("x", ("a", "b"), 2)
        got = availability_of_placement(p, {"a": 0.9, "b": 0.8})
        assert got == pytest.approx(0.72)

    def test_k_of_n_hand_computed(self):
        # 2-of-3 with a = 0.9 each: 3*0.9^2*0.1 + 0.9^3 = 0.972
        p = SchemePlacement("k", ("a", "b", "c"), 2)
        got = availability_of_placement(p, {"a": 0.9, "b": 0.9, "c": 0.9})
        assert got == pytest.approx(0.972)

    def test_validation(self):
        with pytest.raises(ValueError):
            SchemePlacement("bad", ("a",), 2)
        p = SchemePlacement("s", ("a",), 1)
        with pytest.raises(ValueError):
            availability_of_placement(p, {"a": 1.5})


class TestAnalyticReport:
    @pytest.fixture(scope="class")
    def report(self):
        return analytic_report()

    def test_every_coc_beats_every_single(self, report):
        singles = [v for k, v in report.items() if k.startswith("single-")]
        for name in ("duracloud", "racs", "depsky", "nccloud", "hyrd"):
            assert report[name] > max(singles)

    def test_depsky_most_available(self, report):
        """n-way replication with 1-of-4 reads beats everything."""
        assert report["depsky"] == max(report.values())

    def test_fault_tolerance_ordering(self, report):
        # 1-of-4 > 2-of-4 > 3-of-4 under equal provider availability.
        assert report["depsky"] > report["nccloud"] > report["racs"]

    def test_hyrd_between_its_classes(self, report):
        assert (
            report["hyrd-large"] <= report["hyrd"] <= report["hyrd-small"]
        )

    def test_hyrd_weighting(self):
        avail = {n: 0.99 for n in ("amazon_s3", "azure", "aliyun", "rackspace")}
        combined = hyrd_combined(avail, small_weight=1.0)
        small = availability_of_placement(STANDARD_PLACEMENTS["hyrd-small"], avail)
        assert combined == pytest.approx(small)

    def test_custom_provider_availability(self):
        avail = {
            "amazon_s3": 0.95,
            "azure": 0.99,
            "aliyun": 0.999,
            "rackspace": 0.9,
        }
        report = analytic_report(provider_availability=avail)
        assert report["single-aliyun"] == pytest.approx(0.999)
        assert report["racs"] < report["depsky"]


class TestNines:
    def test_values(self):
        assert nines(0.9) == pytest.approx(1.0)
        assert nines(0.999) == pytest.approx(3.0)
        assert nines(1.0) == float("inf")


class TestMonteCarlo:
    def test_converges_to_analytic(self):
        analytic = analytic_report(mtbf=30 * DAY, mttr=1 * DAY)
        mc = monte_carlo_report(
            seed=3, horizon=4000 * DAY, mtbf=30 * DAY, mttr=1 * DAY
        )
        for name in ("single-aliyun", "duracloud", "racs", "depsky"):
            assert mc[name] == pytest.approx(analytic[name], abs=0.01)

    def test_report_covers_all_schemes(self):
        mc = monte_carlo_report(seed=0, horizon=100 * DAY)
        assert set(STANDARD_PLACEMENTS) <= set(mc)
        assert "hyrd" in mc
        assert all(0.0 <= v <= 1.0 for v in mc.values())
