"""Unit tests for the maintenance plane: budget, scrubber, repair, migration.

The end-to-end acceptance story (100% detection, budget-bounded foreground
impact) lives in ``benchmarks/test_maintenance_plane.py``; these tests pin
the component contracts the story is built from.
"""

import pytest

from repro.cloud.provider import make_table2_cloud_of_clouds
from repro.faults.ledger import CorruptionLedger, inject_bit_rot, inject_loss
from repro.maintenance import (
    AntiEntropyScrubber,
    MaintenanceConfig,
    MaintenancePlane,
    TokenBucket,
)
from repro.schemes import DepSkyScheme, DuraCloudScheme, HyrdScheme
from repro.sim.clock import SimClock
from repro.sim.rng import make_rng

KB, MB = 1024, 1024 * 1024


def _fleet(clock=None):
    clock = clock if clock is not None else SimClock()
    return clock, make_table2_cloud_of_clouds(clock)


def _duracloud(n_files=4, size=16 * KB, seed=0):
    clock, providers = _fleet()
    scheme = DuraCloudScheme([providers["amazon_s3"], providers["azure"]], clock)
    rng = make_rng(seed, "plane-test")
    contents = {}
    for i in range(n_files):
        path = f"/p/f{i}"
        contents[path] = rng.integers(0, 256, size, dtype="uint8").tobytes()
        scheme.put(path, contents[path])
    return scheme, providers, contents


def _site(scheme, path, placement=0):
    entry = scheme.namespace.get(path)
    prov, idx = entry.placements[placement]
    key = scheme._placement_storage_key(entry, idx, entry.codec == "replication")
    return prov, key


class TestTokenBucket:
    def test_unlimited_always_admits(self):
        bucket = TokenBucket(None, 1.0, SimClock())
        assert bucket.unlimited
        assert bucket.try_take(10**12)
        assert bucket.available() == float("inf")
        assert bucket.time_until(10**12) == 0.0

    def test_take_and_refill_on_sim_clock(self):
        clock = SimClock()
        bucket = TokenBucket(100.0, 1000.0, clock)
        assert bucket.try_take(800)
        assert not bucket.try_take(800)  # only 200 left
        clock.advance(6.0)  # +600
        assert bucket.available() == 800.0
        assert bucket.try_take(800)

    def test_oversized_object_admitted_only_at_full_bucket(self):
        clock = SimClock()
        bucket = TokenBucket(100.0, 1000.0, clock)
        assert bucket.try_take(5000)  # full bucket: admit, go into debt
        assert bucket.available() == -4000.0
        assert not bucket.try_take(5000)  # in debt: blocked
        clock.advance(50.0)  # refill exactly back to capacity
        assert bucket.try_take(5000)

    def test_settle_returns_overestimate(self):
        clock = SimClock()
        bucket = TokenBucket(100.0, 1000.0, clock)
        bucket.try_take(900)
        bucket.settle(900, 100)  # only 100 actually moved
        assert bucket.available() == 900.0

    def test_settle_never_exceeds_capacity(self):
        bucket = TokenBucket(100.0, 1000.0, SimClock())
        bucket.settle(500, 0)
        assert bucket.available() == 1000.0

    def test_time_until(self):
        clock = SimClock()
        bucket = TokenBucket(100.0, 1000.0, clock)
        bucket.try_take(1000)
        assert bucket.time_until(500) == 5.0
        # An ask beyond capacity needs only a full bucket, not the impossible.
        assert bucket.time_until(10_000) == 10.0

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(0.0, 100.0, SimClock())
        with pytest.raises(ValueError):
            TokenBucket(10.0, 0.0, SimClock())


class TestScrubber:
    def test_cursor_walks_and_wraps(self):
        scheme, _providers, contents = _duracloud(n_files=5)
        scrubber = AntiEntropyScrubber(scheme, paths_per_cycle=2)
        seen = [a.path for a in scrubber.run_cycle()]
        seen += [a.path for a in scrubber.run_cycle()]
        seen += [a.path for a in scrubber.run_cycle()]
        # 3 cycles x 2 paths over a 5-path namespace: full coverage + wrap.
        assert len(seen) == 6
        assert set(seen) == set(contents)
        assert seen[-1] == sorted(contents)[0]  # wrapped around
        assert scrubber.cycles == 3

    def test_found_sites_accumulate_repairable_only(self):
        scheme, providers, contents = _duracloud()
        paths = sorted(contents)
        prov0, key0 = _site(scheme, paths[0])
        inject_bit_rot(providers[prov0], scheme.container, [key0])
        prov1, key1 = _site(scheme, paths[1])
        inject_loss(providers[prov1], scheme.container, [key1])
        scrubber = AntiEntropyScrubber(scheme)
        scrubber.full_pass()
        assert scrubber.found_sites == {
            (prov0, scheme.container, key0),
            (prov1, scheme.container, key1),
        }

    def test_concurrent_removal_is_skipped(self):
        scheme, _providers, contents = _duracloud(n_files=2)
        scrubber = AntiEntropyScrubber(scheme)
        missing = sorted(contents) + ["/p/never-existed"]
        audits = scrubber.audit_paths(missing)
        assert [a.path for a in audits] == sorted(contents)


class TestRepairScheduler:
    def test_priority_fewest_margin_first(self):
        scheme, _providers, _contents = _duracloud()
        plane = MaintenancePlane(scheme)
        plane.repair.enqueue("/p/f2", margin=2)
        plane.repair.enqueue("/p/f0", margin=0)
        plane.repair.enqueue("/p/f1", margin=1)
        results = plane.repair.run_cycle()
        assert [r.path for r in results] == ["/p/f0", "/p/f1", "/p/f2"]

    def test_dedupe_and_reprioritise(self):
        scheme, _providers, _contents = _duracloud()
        plane = MaintenancePlane(scheme)
        plane.repair.enqueue("/p/f1", margin=3)
        plane.repair.enqueue("/p/f1", margin=5)  # no-op: not riskier
        plane.repair.enqueue("/p/f2", margin=1)
        plane.repair.enqueue("/p/f1", margin=0)  # sharper: re-sorts ahead
        assert len(plane.repair) == 2
        assert scheme.registry.counter_value("repair_enqueued_total") == 2
        results = plane.repair.run_cycle()
        assert [r.path for r in results] == ["/p/f1", "/p/f2"]

    def test_budget_throttles_and_resumes(self):
        scheme, providers, contents = _duracloud(size=64 * KB)
        config = MaintenanceConfig(
            repair_rate_bytes_per_s=8 * KB, repair_burst_bytes=140 * KB
        )
        plane = MaintenancePlane(scheme, config)
        for path in sorted(contents)[:2]:
            prov, key = _site(scheme, path)
            inject_bit_rot(providers[prov], scheme.container, [key])
            plane.repair.enqueue_audit(scheme.verify_object(path))
        # Estimate is 2x64K per object; the 140K bucket covers exactly one.
        first = plane.repair.run_cycle()
        assert len(first) == 1
        assert scheme.registry.counter_value("repair_budget_throttled_total") == 1
        assert len(plane.repair) == 1
        scheme.clock.advance(3600.0)  # refill
        second = plane.repair.run_cycle()
        assert len(second) == 1
        assert len(plane.repair) == 0
        for path in contents:
            assert scheme.verify_object(path).ok

    def test_unrepairable_object_counts_failed_and_drops(self):
        scheme, providers, contents = _duracloud(n_files=1)
        path = next(iter(contents))
        # Both replicas corrupted: no intact source remains.
        for placement in (0, 1):
            prov, key = _site(scheme, path, placement)
            inject_bit_rot(providers[prov], scheme.container, [key])
        plane = MaintenancePlane(scheme)
        plane.repair.enqueue(path)
        results = plane.repair.run_cycle()
        assert results == []
        assert scheme.registry.counter_value("repair_failed_total") == 1
        assert len(plane.repair) == 0  # next scrub pass re-discovers it

    def test_pending_write_log_skips_repair(self):
        # Regression: a foreground write logged between scrub and repair must
        # keep ownership of the key — repairing it too would double-write.
        scheme, providers, contents = _duracloud()
        path = sorted(contents)[0]
        prov, key = _site(scheme, path)
        inject_bit_rot(providers[prov], scheme.container, [key])
        audit = scheme.verify_object(path)
        assert not audit.ok
        # The racing write lands in the provider's log after the scrub.
        scheme._write_logs[prov].log_put(
            scheme.container, key, contents[path], scheme.clock.now
        )
        result = scheme.repair_object(path, audit)
        assert result.repaired == ()
        assert [f.key for f in result.skipped_pending] == [key]
        assert not result.complete
        # The scheduler re-queues incomplete repairs rather than dropping.
        plane = MaintenancePlane(scheme)
        plane.repair.enqueue_audit(audit)
        plane.repair.run_cycle()
        assert plane.repair.pending_paths == [path]
        assert scheme.registry.counter_value("repair_skipped_pending_total") >= 1


class TestMigrationEngine:
    def _hyrd(self, n_files=6):
        clock, providers = _fleet()
        scheme = HyrdScheme(list(providers.values()), clock)
        rng = make_rng(0, "migration-test")
        for i in range(n_files):
            path = f"/m/f{i}"
            scheme.put(path, rng.integers(0, 256, 32 * KB, dtype="uint8").tobytes())
        return scheme, providers

    def test_plan_dedupes_and_counts(self):
        scheme, _providers = self._hyrd()
        plane = MaintenancePlane(scheme)
        assert plane.migration.plan(["/m/f0", "/m/f1", "/m/f0"]) == 2
        assert plane.migration.plan(["/m/f1"]) == 0
        assert scheme.registry.counter_value("migration_enqueued_total") == 2

    def test_decommission_drains_incrementally(self):
        scheme, _providers = self._hyrd()
        plane = scheme.attach_maintenance(
            MaintenanceConfig(migration_keys_per_cycle=2)
        )
        # Evacuate whichever provider actually holds the replicated files.
        victim = next(
            p for p in scheme.provider_names if scheme.placements_on(p)
        )
        assert scheme.decommission(victim) == []  # live path: queued
        queued = len(plane.migration)
        assert queued > 0
        plane.migration.run_cycle()
        assert len(plane.migration) == max(0, queued - 2)  # bounded slice
        plane.migration.drain()
        assert len(plane.migration) == 0
        assert scheme.placements_on(victim) == []
        assert (
            scheme.registry.counter_value("migration_completed_total") == queued
        )

    def test_interrupted_migration_is_resumable(self):
        scheme, _providers = self._hyrd()
        plane = MaintenancePlane(scheme, MaintenanceConfig(migration_keys_per_cycle=1))
        scheme.evaluator.exclude("azure")
        scheme.dispatcher.refresh()
        plane.migration.sync_policy()
        before = len(plane.migration)
        assert before > 1
        plane.migration.run_cycle()  # ... interruption here loses nothing:
        resumed = MaintenancePlane(scheme, MaintenanceConfig(migration_keys_per_cycle=8))
        resumed.migration.sync_policy()  # re-derived from namespace state
        assert len(resumed.migration) == before - 1
        resumed.migration.drain()
        assert scheme.misplaced_paths() == []


class TestMaintenancePlane:
    def test_attach_detach_lifecycle(self):
        scheme, _providers, _contents = _duracloud()
        plane = scheme.attach_maintenance()
        assert scheme.maintenance is plane
        assert plane.running
        with pytest.raises(RuntimeError):
            scheme.attach_maintenance()
        assert scheme.detach_maintenance() is plane
        assert scheme.maintenance is None
        assert not plane.running
        scheme.attach_maintenance()  # re-attachable after detach

    def test_detached_is_zero_cost_for_foreground(self):
        # Attached-but-never-pumped must also be invisible: identical op
        # streams, byte-identical reports.
        results = []
        for attach in (False, True):
            scheme, _providers, contents = _duracloud()
            if attach:
                scheme.attach_maintenance()
            for path, data in contents.items():
                got, _ = scheme.get(path)
                assert got == data
            results.append([r for r in scheme.collector.reports])
        baseline, attached = results
        assert baseline == attached

    def test_tick_scrubs_and_repairs(self):
        scheme, providers, contents = _duracloud()
        path = sorted(contents)[0]
        prov, key = _site(scheme, path)
        inject_bit_rot(providers[prov], scheme.container, [key])
        plane = scheme.attach_maintenance(MaintenanceConfig(scrub_interval=60.0))
        plane.run_idle(scheme.clock.now + 61.0)
        assert scheme.registry.counter_value("scrub_cycles_total") == 1
        assert scheme.registry.counter_value("repair_completed_total") == 1
        assert scheme.verify_object(path).ok

    def test_pause_and_resume(self):
        scheme, _providers, _contents = _duracloud()
        plane = scheme.attach_maintenance(MaintenanceConfig(scrub_interval=60.0))
        plane.pause()
        plane.run_idle(scheme.clock.now + 300.0)
        assert scheme.registry.counter_value("scrub_cycles_total") == 0
        plane.resume()
        plane.run_idle(scheme.clock.now + 61.0)
        assert scheme.registry.counter_value("scrub_cycles_total") == 1

    def test_pump_fires_overdue_ticks_without_advancing(self):
        scheme, _providers, _contents = _duracloud()
        plane = scheme.attach_maintenance(MaintenanceConfig(scrub_interval=60.0))
        scheme.clock.advance(200.0)  # foreground moved time past two ticks
        now = scheme.clock.now
        plane.pump()
        assert scheme.clock.now >= now  # clock only moves via op simulation
        assert scheme.registry.counter_value("scrub_cycles_total") >= 1

    def test_durability_risk_gauges(self):
        scheme, providers, contents = _duracloud()
        path = sorted(contents)[0]
        prov, key = _site(scheme, path)
        inject_bit_rot(providers[prov], scheme.container, [key])
        plane = MaintenancePlane(
            scheme, MaintenanceConfig(scrub_interval=60.0, auto_repair=False)
        )
        plane.run_cycle()
        assert scheme.registry.gauge("slo_stripes_at_risk").value == 1
        scheme.clock.advance(120.0)
        plane.run_cycle()
        assert scheme.registry.gauge("slo_durability_risk_seconds").value >= 120.0
        scheme.repair_object(path)
        plane.run_cycle()
        assert scheme.registry.gauge("slo_stripes_at_risk").value == 0
        assert scheme.registry.gauge("slo_durability_risk_seconds").value == 0

    def test_breaker_close_edge_triggers_targeted_audit(self):
        scheme, _providers, contents = _duracloud()
        plane = MaintenancePlane(
            scheme, MaintenanceConfig(scrub_paths_per_cycle=1)
        )
        plane.start()
        for breaker in scheme._breakers.values():
            assert breaker.listener is not None
        plane._on_breaker_transition("azure", "open", 0.0)
        plane._on_breaker_transition("azure", "closed", 1.0)
        audits = plane.run_cycle()
        # Every path placed on azure, audited ahead of the 1-path walk slice.
        assert len(audits) == len(contents) + 1
        plane.stop()
        for breaker in scheme._breakers.values():
            assert breaker.listener is None  # original (unset) slot restored

    def test_slo_listener_chain_preserved(self):
        from repro.obs import SloTracker

        scheme, _providers, _contents = _duracloud()
        slo = SloTracker()
        scheme.attach_slo(slo)
        plane = scheme.attach_maintenance()
        scheme._breakers["azure"].listener("azure", "open", 5.0)
        # Both the SLO tracker and the plane saw the transition.
        assert slo.provider("azure").observed.down_since == 5.0
        assert "azure" in plane._opened
        scheme.detach_maintenance()
        assert scheme._breakers["azure"].listener == slo.on_breaker_transition

    def test_detection_score_requires_ledger(self):
        scheme, _providers, _contents = _duracloud()
        plane = scheme.attach_maintenance()
        with pytest.raises(RuntimeError):
            plane.detection_score()

    def test_detection_score_with_ledger(self):
        scheme, providers, contents = _duracloud()
        ledger = CorruptionLedger()
        path = sorted(contents)[0]
        prov, key = _site(scheme, path)
        inject_bit_rot(providers[prov], scheme.container, [key], ledger=ledger)
        plane = scheme.attach_maintenance(ledger=ledger)
        plane.scrubber.full_pass()
        score = plane.detection_score()
        assert score == {"injected": 1, "detected": 1, "missed": [], "rate": 1.0}

    def test_loop_must_share_scheme_clock(self):
        from repro.sim.events import EventLoop

        scheme, _providers, _contents = _duracloud()
        with pytest.raises(ValueError):
            MaintenancePlane(scheme, loop=EventLoop(SimClock()))


class TestDepSkyMargins:
    def test_margin_orders_risk_correctly(self):
        clock, providers = _fleet()
        scheme = DepSkyScheme(list(providers.values()), clock)
        rng = make_rng(0, "margin-test")
        for path in ("/d/safe", "/d/critical"):
            scheme.put(path, rng.integers(0, 256, 8 * KB, dtype="uint8").tobytes())
        # 4 replicas, min_needed 1: losing one leaves margin 2, losing
        # three leaves margin 0 — the repair queue must drain that first.
        prov, key = _site(scheme, "/d/safe", 0)
        inject_loss(providers[prov], scheme.container, [key])
        for placement in range(3):
            prov, key = _site(scheme, "/d/critical", placement)
            inject_loss(providers[prov], scheme.container, [key])
        plane = MaintenancePlane(scheme)
        for path in ("/d/safe", "/d/critical"):
            plane.repair.enqueue_audit(scheme.verify_object(path))
        results = plane.repair.run_cycle()
        assert [r.path for r in results] == ["/d/critical", "/d/safe"]
        assert all(r.complete for r in results)


class TestOrphanSweeper:
    """Crash recovery routes orphan deletions through the plane's budgeted
    sweeper when one is attached, instead of deleting inline."""

    @staticmethod
    def _crash_orphans(attach_plane):
        """Overwrite-crash early enough to roll back, leaving the dead
        client's stray fragments as orphans; recover and report."""
        from repro.faults.crash import ClientCrash, CrashSchedule
        from repro.schemes import RacsScheme

        clock, providers = _fleet()
        fleet = [providers[p] for p in ("amazon_s3", "azure", "aliyun", "rackspace")]
        scheme = RacsScheme(fleet, clock)
        journal = scheme.attach_journal()
        rng = make_rng(0, "orphan-route")
        old = rng.bytes(64 * KB)
        scheme.put("/gc/f0", old)
        # Ordinal 2: one fragment of the overwrite lands (< k), then death.
        scheme.install_crash_schedule(CrashSchedule([2]))
        with pytest.raises(ClientCrash):
            scheme.put("/gc/f0", rng.bytes(64 * KB))
        dead = scheme
        scheme = RacsScheme(fleet, clock)
        scheme.adopt_write_logs(dead._write_logs)
        scheme.attach_journal(journal)
        plane = scheme.attach_maintenance() if attach_plane else None
        scheme.recover_namespace()
        summary = scheme.recover()
        assert summary["rolled_back"], "ordinal 2 must roll back"
        return scheme, plane, summary, old

    def test_without_plane_recovery_deletes_inline(self):
        scheme, _plane, summary, old = self._crash_orphans(attach_plane=False)
        assert sum(summary["orphans_removed"].values()) > 0
        data, _ = scheme.get("/gc/f0")
        assert data == old

    def test_with_plane_orphans_are_enqueued_not_deleted(self):
        scheme, plane, summary, _old = self._crash_orphans(attach_plane=True)
        assert summary["orphans_removed"] == {}  # deferred to the sweeper
        assert len(plane.orphans) > 0
        # the stray fragments are still on the providers, queue is truthful
        for provider, container, key in plane.orphans.pending():
            assert scheme.provider(provider).store.has(container, key)

    def test_sweeper_drains_under_per_cycle_key_budget(self):
        scheme, plane, _summary, old = self._crash_orphans(attach_plane=True)
        queued = plane.orphans.pending()
        cycles = 0
        while plane.orphans.run_cycle(max_keys=1):
            cycles += 1
            assert cycles <= len(queued) + 4
        # one key per cycle: draining took as many cycles as keys
        assert cycles == len(queued)
        assert len(plane.orphans) == 0
        for provider, container, key in queued:
            assert not scheme.provider(provider).store.has(container, key)
        # sweeping only removed garbage: the object still reads clean
        data, _ = scheme.get("/gc/f0")
        assert data == old
        audit = scheme.verify_object("/gc/f0", deep=True)
        assert audit.ok

    def test_enqueue_dedupes(self):
        scheme, plane, _summary, _old = self._crash_orphans(attach_plane=True)
        provider, container, key = plane.orphans.pending()[0]
        depth = len(plane.orphans)
        assert not plane.orphans.enqueue(provider, container, key)
        assert len(plane.orphans) == depth
