"""Unit tests for the single-cloud baseline."""

import pytest

from repro.cloud.outage import OutageWindow
from repro.schemes import SingleCloudScheme
from repro.schemes.base import DataUnavailable


class TestSingleCloud:
    def test_name_includes_provider(self, providers, clock):
        s = SingleCloudScheme(providers["azure"], clock)
        assert s.name == "single-azure"
        assert s.provider_names == ["azure"]

    def test_data_lands_only_on_primary(self, providers, clock, payload):
        s = SingleCloudScheme(providers["aliyun"], clock)
        s.put("/d/a", payload(100))
        assert providers["aliyun"].store.total_bytes() > 0
        assert providers["azure"].store.total_bytes() == 0

    def test_roundtrip(self, providers, clock, payload):
        s = SingleCloudScheme(providers["rackspace"], clock)
        data = payload(4321)
        s.put("/d/a", data)
        got, _ = s.get("/d/a")
        assert got == data

    def test_outage_means_unavailable(self, providers, clock, payload):
        s = SingleCloudScheme(providers["amazon_s3"], clock)
        s.put("/d/a", payload(10))
        providers["amazon_s3"].outages.add(OutageWindow(clock.now, clock.now + 60))
        with pytest.raises(DataUnavailable):
            s.get("/d/a")

    def test_write_during_outage_is_logged_and_healed(
        self, providers, clock, payload
    ):
        s = SingleCloudScheme(providers["amazon_s3"], clock)
        window = OutageWindow(clock.now, clock.now + 60)
        providers["amazon_s3"].outages.add(window)
        data = payload(10)
        s.put("/d/a", data)
        assert len(s.pending_log("amazon_s3")) > 0
        clock.advance_to(window.end)
        s.heal_returned()
        got, _ = s.get("/d/a")
        assert got == data

    def test_latency_reflects_provider_speed(self, providers, clock, payload):
        fast = SingleCloudScheme(providers["aliyun"], clock)
        slow = SingleCloudScheme(providers["rackspace"], clock)
        data = payload(1_000_000)
        fast_report = fast.put("/d/a", data)
        slow_report = slow.put("/d/a", data)
        assert fast_report.elapsed < slow_report.elapsed
