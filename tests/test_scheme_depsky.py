"""Unit tests for the DepSky-style quorum baseline."""

import pytest

from repro.cloud.outage import OutageWindow
from repro.schemes import DepSkyScheme
from repro.schemes.base import DataUnavailable


@pytest.fixture
def depsky(providers, clock):
    return DepSkyScheme(list(providers.values()), clock)


class TestQuorum:
    def test_needs_2f_plus_1(self, providers, clock):
        with pytest.raises(ValueError):
            DepSkyScheme([providers["aliyun"], providers["azure"]], clock, f=1)

    def test_write_quorum_size(self, depsky):
        assert depsky.write_quorum == 3

    def test_replicas_on_all_providers(self, depsky, providers, payload):
        data = payload(1000)
        depsky.put("/d/a", data)
        for name in providers:
            assert providers[name].store.get(depsky.container, "/d/a#v1").data == data

    def test_space_overhead_is_n(self, depsky, payload):
        depsky.put("/d/a", payload(40_000))
        assert depsky.space_overhead() == pytest.approx(4.0, abs=0.1)

    def test_write_acks_at_quorum_not_slowest(self, payload):
        """The write returns at the (n-f)-th upload: making the straggler
        pathologically slow must not change the write latency."""
        import dataclasses

        from repro.cloud.latency import ClientLink
        from repro.cloud.provider import make_table2_cloud_of_clouds
        from repro.sim.clock import SimClock

        def put_elapsed(strangle: bool) -> float:
            clock = SimClock()
            fleet = make_table2_cloud_of_clouds(clock)
            if strangle:
                fleet["rackspace"].latency = dataclasses.replace(
                    fleet["rackspace"].latency, upload_bw=0.05e6
                )
            scheme = DepSkyScheme(
                list(fleet.values()), clock, link=ClientLink(uplink=40e6)
            )
            return scheme.put("/d/a", payload(2_000_000)).elapsed

        fast, strangled = put_elapsed(False), put_elapsed(True)
        # 2 MB at 0.05 MB/s would be 40 s; the quorum write must not see it.
        assert strangled < fast * 1.5
        assert strangled < 10.0


class TestReads:
    def test_read_verifies_f_probes(self, depsky, payload):
        depsky.put("/d/a", payload(100))
        _, report = depsky.get("/d/a")
        assert len(report.providers) == 2  # 1 data fetch + f=1 head probe

    def test_read_survives_outage(self, depsky, providers, clock, payload):
        data = payload(100)
        depsky.put("/d/a", data)
        providers["aliyun"].outages.add(OutageWindow(clock.now, clock.now + 60))
        got, report = depsky.get("/d/a")
        assert got == data
        assert report.degraded

    def test_read_survives_f_plus_more_outages(self, depsky, providers, clock, payload):
        data = payload(100)
        depsky.put("/d/a", data)
        for name in ("aliyun", "azure", "amazon_s3"):
            providers[name].outages.add(OutageWindow(clock.now, clock.now + 60))
        got, _ = depsky.get("/d/a")
        assert got == data  # last replica still serves

    def test_total_outage_raises(self, depsky, providers, clock, payload):
        depsky.put("/d/a", payload(100))
        for name in providers:
            providers[name].outages.add(OutageWindow(clock.now, clock.now + 60))
        with pytest.raises(DataUnavailable):
            depsky.get("/d/a")


class TestDegradedWrites:
    def test_write_below_quorum_marks_degraded(self, depsky, providers, clock, payload):
        for name in ("aliyun", "azure"):
            providers[name].outages.add(OutageWindow(clock.now, clock.now + 3600))
        report = depsky.put("/d/a", payload(100))
        assert report.degraded  # only 2 < quorum 3 acks
        assert len(depsky.pending_log("aliyun")) > 0
