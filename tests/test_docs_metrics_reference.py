"""docs/metrics-reference.md must stay generated-identical to the catalog.

Two directions:

- the table between the BEGIN/END markers must equal
  :func:`repro.metrics.catalog.catalog_markdown_table` exactly (regenerate
  with ``PYTHONPATH=src python -m repro.metrics.catalog``);
- every metric name the runtime actually emits during a representative run
  must be declared in the catalog (and therefore appear in the doc).
"""

from pathlib import Path

import pytest

from repro.metrics.catalog import METRIC_CATALOG, catalog_markdown_table

DOC = Path(__file__).resolve().parent.parent / "docs" / "metrics-reference.md"
BEGIN = "<!-- BEGIN METRICS TABLE -->"
END = "<!-- END METRICS TABLE -->"


def _doc_table() -> str:
    text = DOC.read_text(encoding="utf-8")
    assert BEGIN in text and END in text, "metrics-reference.md lost its markers"
    return text.split(BEGIN, 1)[1].split(END, 1)[0].strip()


def test_doc_table_matches_catalog():
    assert _doc_table() == catalog_markdown_table().strip(), (
        "docs/metrics-reference.md is stale; regenerate the table with "
        "`PYTHONPATH=src python -m repro.metrics.catalog` and paste it "
        "between the markers"
    )


def test_every_catalog_name_documented_once():
    table = _doc_table()
    for name in METRIC_CATALOG:
        assert table.count(f"| `{name}` |") == 1


@pytest.fixture(scope="module")
def emitted_names():
    """Metric names from runs that exercise every subsystem: the traced
    fault-storm run behind ``repro report`` (with the SLO tracker and the
    time-series sampler attached, so the ``slo_*`` gauges fire), plus a
    fresh-brownout read burst with hedging on (the storm's seed happens not
    to hedge)."""
    from repro.cloud.provider import make_table2_cloud_of_clouds
    from repro.core.config import HyRDConfig
    from repro.core.resilience import ResilienceConfig
    from repro.faults import FaultProfile, LatencyBrownout
    from repro.obs import SloTracker, TimeSeriesSampler, run_fault_storm_report
    from repro.schemes import HyrdScheme
    from repro.sim.clock import SimClock

    slo = SloTracker()
    sampler = TimeSeriesSampler(cadence=30.0, slo=slo)
    report, _ = run_fault_storm_report(seed=0, slo=slo, sampler=sampler)
    # MTBF needs a second failure; the storm run is too short to see the
    # flapper go down twice, so script two more observed intervals and
    # publish once more — same code path a longer run would take.
    ledger = slo.provider("rackspace").observed
    t = 1e6
    ledger.mark_down(t), ledger.mark_up(t + 40.0)
    ledger.mark_down(t + 120.0), ledger.mark_up(t + 160.0)
    slo.publish(t + 200.0)
    names = set(report.registry.emitted_names())

    clock = SimClock()
    fleet = make_table2_cloud_of_clouds(clock)
    cfg = HyRDConfig(resilience=ResilienceConfig(hedge_reads=True))
    scheme = HyrdScheme(list(fleet.values()), clock, config=cfg)
    # The load observatory rides along: its gauges (provider_load_*), the
    # exemplar counter, and the hedge-waste histogram all fire on this
    # hedged burst.
    from repro.obs import ProviderLoadObservatory

    scheme.attach_observatory(ProviderLoadObservatory())
    for i in range(8):
        scheme.put(f"/h/f{i}", bytes(64 * 1024))
    fleet["aliyun"].faults = FaultProfile(
        [LatencyBrownout(clock.now, clock.now + 1e6, rtt_factor=10.0, bw_factor=0.05)]
    ).bind("aliyun")
    for i in range(8):
        scheme.get(f"/h/f{i}")
    names |= scheme.registry.emitted_names()

    # The load-aware read scheduler lights the sched_* family: a striped
    # read burst against a browned-out systematic provider forces parity
    # picks; deliberately loose knobs (wide rotation pool, hair-trigger
    # hedge) guarantee a rotation and a winning capacity-aware hedge once
    # the observatory's queue estimates warm up.
    from repro.core.scheduling import FragmentScheduler, SchedulerConfig

    clock = SimClock()
    fleet = make_table2_cloud_of_clouds(clock)
    scheme = HyrdScheme(
        list(fleet.values()), clock, config=HyRDConfig(hot_file_threshold=0)
    )
    scheme.attach_observatory(ProviderLoadObservatory())
    scheme.attach_scheduler(
        FragmentScheduler(
            SchedulerConfig(
                rotation_margin=1e9, hedge_margin=1e-6, hedge_winnable=1e9
            )
        )
    )
    for i in range(4):
        scheme.put(f"/s/f{i}", bytes(2 * 1024 * 1024))
    fleet["rackspace"].faults = FaultProfile(
        [LatencyBrownout(clock.now, clock.now + 1e6, rtt_factor=10.0, bw_factor=0.05)]
    ).bind("rackspace")
    for _ in range(6):
        for i in range(4):
            scheme.get(f"/s/f{i}")
    names |= scheme.registry.emitted_names()

    # The maintenance drill lights up the scrub/repair/migration metrics;
    # a deliberately tight budget exercises the throttle counter too.
    from repro.maintenance.drill import run_maintenance_drill

    drill = run_maintenance_drill(
        seed=0,
        files=9,
        read_rounds=1,
        repair_rate_bytes_per_s=256 * 1024,
        repair_burst_bytes=512 * 1024,
    )
    names |= drill["scheme"].registry.emitted_names()

    # One chaos episode lights the campaign-level metrics (crash, partition
    # and invariant counters are published unconditionally at settlement);
    # the deterministic crash drill guarantees both journal recovery
    # outcomes, an orphan sweep and a write-log spill regardless of what
    # the episode's seed happens to draw.
    from repro.chaos import run_crash_drill, run_episode

    episode = run_episode("racs", seed=2026)
    names |= episode.scheme.registry.emitted_names()
    crash_drill = run_crash_drill(seed=0)
    for registry in crash_drill["registries"]:
        names |= registry.emitted_names()

    # The multi-tenant service plane: an overloaded open-loop drill with
    # bounded queues (queue_full sheds), a tight ops/s quota (dispatch
    # deferrals), and multiple backlogged tenants (DRR rounds) lights the
    # whole tenant_* / admission_* family, including the per-tenant SLO
    # gauges published at settlement.
    from repro.service import run_service_drill

    service_parts: dict = {}
    run_service_drill(
        seed=0,
        tenants=3,
        mode="open",
        offered_load=3.0,
        queue_limit=2,
        ops_quota_factor=0.5,
        horizon=4.0,
        parts=service_parts,
    )
    names |= service_parts["registry"].emitted_names()
    return names


def test_runtime_emits_only_documented_names(emitted_names):
    undocumented = emitted_names - set(METRIC_CATALOG)
    assert not undocumented, (
        f"runtime emitted metrics missing from the catalog/doc: {undocumented}"
    )


def test_catalog_is_exercised(emitted_names):
    """The canonical storm run lights up (nearly) the whole catalog — a
    spec that nothing can emit is dead weight.  Metrics tied to paths the
    storm does not take are explicitly allowed here."""
    allowed_unexercised = {
        # only fires when a probe round fails outright; both runs start
        # against healthy fleets, and mid-run re-probes are not scheduled
        # (unit-covered in tests/test_resilience.py territory)
        "evaluator_probe_failures_total",
        # the storm heals between ops and a heal replay closes a tripped
        # breaker directly, so the half-open probe path stays cold here
        "breaker_half_open",
        # maintenance failure paths: the drill fleet stays healthy, so no
        # repair/migration attempt ever raises and no scrubbed key overlaps
        # a pending write-log entry (unit-covered in
        # tests/test_maintenance_plane.py)
        "repair_failed_total",
        "repair_skipped_pending_total",
        "migration_failed_total",
    }
    unexercised = set(METRIC_CATALOG) - emitted_names - allowed_unexercised
    assert not unexercised, f"catalog entries never emitted: {unexercised}"
