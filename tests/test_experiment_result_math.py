"""Unit tests for the experiment result containers' arithmetic.

The figure runners are exercised end to end elsewhere; these pin down the
pure math (normalisation, improvements, savings, knee ratios) that the
benches' assertions and the paper-comparison tables rely on.
"""

import pytest

from repro.analysis.experiments import (
    DURACLOUD_PAIR,
    SINGLE_PROVIDERS,
    Fig4Results,
    Fig5Results,
    Fig6Results,
    coc_factories,
    single_factory,
)
from repro.cost.accounting import BillLine
from repro.cost.simulator import CostRunResult

KB, MB = 1024, 1024 * 1024


def _run(name, monthly_totals):
    return CostRunResult(
        scheme_name=name,
        monthly=[BillLine(t, 0, 0, 0) for t in monthly_totals],
        per_provider={},
        scale_factor=1.0,
    )


class TestFig4Math:
    def test_cumulative_and_grand_total(self):
        r = _run("x", [1.0, 2.0, 3.0])
        assert r.monthly_totals == [1.0, 2.0, 3.0]
        assert r.cumulative_totals == [1.0, 3.0, 6.0]
        assert r.grand_total == 6.0

    def test_scale_factor(self):
        r = CostRunResult(
            scheme_name="x",
            monthly=[BillLine(1.0, 0, 0, 0)],
            per_provider={},
            scale_factor=1000.0,
        )
        assert r.monthly_totals == [1000.0]

    def test_savings_vs(self):
        fig4 = Fig4Results(results={"a": _run("a", [8.0]), "b": _run("b", [10.0])})
        assert fig4.savings_vs("a", "b") == pytest.approx(0.2)
        assert fig4.savings_vs("b", "a") == pytest.approx(-0.25)

    def test_savings_vs_zero_baseline(self):
        fig4 = Fig4Results(results={"a": _run("a", [1.0]), "z": _run("z", [0.0])})
        assert fig4.savings_vs("a", "z") == 0.0

    def test_empty_run_grand_total(self):
        assert _run("e", []).grand_total == 0.0


class TestFig5Math:
    def test_knee_ratio(self):
        res = Fig5Results(
            sizes=[1 * MB, 4 * MB],
            read={"p": [0.5, 1.5]},
            write={"p": [0.6, 1.8]},
        )
        assert res.knee_ratio("p") == pytest.approx(3.0)


class TestFig6Math:
    @pytest.fixture
    def fig6(self):
        f = Fig6Results(baseline="amazon_s3")
        f.normal = {"amazon_s3": 2.0, "hyrd": 1.0, "racs": 1.5}
        f.outage = {"hyrd": 1.2, "racs": 1.8}
        return f

    def test_normalized_normal(self, fig6):
        norm = fig6.normalized("normal")
        assert norm["amazon_s3"] == pytest.approx(1.0)
        assert norm["hyrd"] == pytest.approx(0.5)

    def test_normalized_outage_uses_normal_baseline(self, fig6):
        norm = fig6.normalized("outage")
        assert norm["hyrd"] == pytest.approx(0.6)

    def test_improvement(self, fig6):
        assert fig6.improvement("hyrd", "racs") == pytest.approx(1 - 1.0 / 1.5)
        assert fig6.improvement("hyrd", "racs", "outage") == pytest.approx(
            1 - 1.2 / 1.8
        )


class TestFactories:
    def test_single_factory_builds_named_scheme(self, providers, clock):
        scheme = single_factory("aliyun")(providers, clock)
        assert scheme.name == "single-aliyun"

    def test_coc_factories_default_set(self):
        assert set(coc_factories()) == {"duracloud", "racs", "hyrd"}

    def test_coc_factories_extended_set(self):
        assert set(coc_factories(extended=True)) == {
            "duracloud",
            "depsky",
            "depsky-ca",
            "nccloud",
            "racs",
            "hyrd",
        }

    def test_duracloud_pair_and_singles_are_table2(self):
        assert set(DURACLOUD_PAIR) <= set(SINGLE_PROVIDERS)
        assert "azure" in DURACLOUD_PAIR  # the paper takes Azure offline

    def test_factories_build_on_fresh_fleet(self, providers, clock):
        for name, factory in coc_factories(extended=True).items():
            scheme = factory(providers, clock)
            assert scheme.provider_names  # constructed and registered
            break  # one is enough against a shared fixture fleet
