"""Unit tests for the codec registry."""

import pytest

from repro.erasure import (
    FMSRCode,
    Raid5Code,
    ReedSolomonCode,
    ReplicationCode,
    available_codecs,
    get_codec,
)
from repro.erasure.codec import register_codec


class TestRegistry:
    def test_builtins_present(self):
        names = available_codecs()
        assert {"fmsr", "raid5", "replication", "rs"} <= set(names)

    def test_get_each_builtin(self):
        assert isinstance(get_codec("raid5", k=3), Raid5Code)
        assert isinstance(get_codec("rs", k=3, m=2), ReedSolomonCode)
        assert isinstance(get_codec("fmsr", n=4), FMSRCode)
        assert isinstance(get_codec("replication", n=2), ReplicationCode)

    def test_case_insensitive(self):
        assert isinstance(get_codec("RAID5", k=2), Raid5Code)

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown codec"):
            get_codec("nope")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register_codec("raid5", Raid5Code)
