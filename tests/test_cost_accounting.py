"""Unit tests for billing math."""

import pytest

from repro.cloud.pricing import GB
from repro.cost.accounting import BillLine, bill_for_month, monthly_bills, scheme_bills
from repro.sim.clock import SECONDS_PER_MONTH


class TestBillLine:
    def test_total(self):
        line = BillLine(storage=1.0, data_in=0.5, data_out=2.0, transactions=0.25)
        assert line.total == pytest.approx(3.75)

    def test_addition(self):
        a = BillLine(1, 2, 3, 4)
        b = BillLine(10, 20, 30, 40)
        c = a + b
        assert (c.storage, c.data_in, c.data_out, c.transactions) == (11, 22, 33, 44)

    def test_zero(self):
        assert BillLine.zero().total == 0.0


class TestBillForMonth:
    def test_hand_computed_amazon_bill(self, providers, clock):
        """1 GB stored for one month + 2 GB out + 10K puts on Amazon S3."""
        p = providers["amazon_s3"]
        p.create("c")
        p.meter.set_stored_bytes(1 * GB, 0.0)
        p.meter.record_get(2 * GB, 10.0)
        for _ in range(9_999):  # record_get above already added one tier-2 op
            p.meter.record_put(0, 10.0)
        p.meter.record_put(0, 10.0)
        p.meter.accrue(SECONDS_PER_MONTH)
        line = bill_for_month(p.meter, p.pricing, 0)
        assert line.storage == pytest.approx(0.033, rel=0.01)
        assert line.data_out == pytest.approx(0.402, rel=0.01)
        # 10K tier-1 puts at $0.047/10K + 1 tier-2 get at $0.0037/10K.
        assert line.transactions == pytest.approx(0.047 + 0.0037 / 10_000, rel=0.01)

    def test_free_providers_bill_storage_only(self, providers):
        p = providers["azure"]
        p.meter.set_stored_bytes(10 * GB, 0.0)
        p.meter.record_get(100 * GB, 10.0)
        p.meter.accrue(SECONDS_PER_MONTH)
        line = bill_for_month(p.meter, p.pricing, 0)
        assert line.data_out == 0.0
        assert line.transactions == 0.0
        assert line.storage == pytest.approx(10 * 0.157, rel=0.01)

    def test_empty_month_is_free(self, providers):
        line = bill_for_month(
            providers["aliyun"].meter, providers["aliyun"].pricing, 5
        )
        assert line.total == 0.0


class TestAggregation:
    def test_monthly_bills_length(self, providers):
        p = providers["aliyun"]
        p.meter.record_put(100, 0.0)
        bills = monthly_bills(p, 3)
        assert len(bills) == 3

    def test_scheme_bills_sum_providers(self, providers):
        a, b = providers["aliyun"], providers["azure"]
        a.meter.set_stored_bytes(GB, 0.0)
        b.meter.set_stored_bytes(GB, 0.0)
        for meter in (a.meter, b.meter):
            meter.accrue(SECONDS_PER_MONTH)
        totals, per_provider = scheme_bills([a, b], 1)
        assert set(per_provider) == {"aliyun", "azure"}
        assert totals[0].storage == pytest.approx(0.029 + 0.157, rel=0.01)
