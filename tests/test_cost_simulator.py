"""Unit + integration tests for the trace-driven cost simulator."""

import numpy as np
import pytest

from repro.cost.simulator import CostSimulator
from repro.schemes import DuraCloudScheme, RacsScheme, SingleCloudScheme
from repro.workloads.filesizes import MediaLibraryFileSizes
from repro.workloads.ia_trace import IATraceConfig, synthesize_ia_trace


@pytest.fixture(scope="module")
def small_trace():
    cfg = IATraceConfig(
        months=3, writes_per_month=5, sizes=MediaLibraryFileSizes(scale=0.02)
    )
    return synthesize_ia_trace(cfg, np.random.default_rng(11))


class TestCostSimulator:
    def test_monthly_series_length(self, small_trace):
        sim = CostSimulator(small_trace)
        result = sim.run(
            "aliyun", lambda p, c: SingleCloudScheme(p["aliyun"], c)
        )
        assert len(result.monthly) == 3
        assert len(result.monthly_totals) == 3

    def test_cumulative_monotone_nondecreasing(self, small_trace):
        sim = CostSimulator(small_trace)
        result = sim.run("racs", lambda p, c: RacsScheme(list(p.values()), c))
        cum = result.cumulative_totals
        assert all(b >= a for a, b in zip(cum, cum[1:]))
        assert result.grand_total == pytest.approx(cum[-1])

    def test_storage_cost_accumulates_month_over_month(self, small_trace):
        """The paper's observation: each month's bill carries all prior data."""
        sim = CostSimulator(small_trace)
        result = sim.run("azure", lambda p, c: SingleCloudScheme(p["azure"], c))
        # Azure bills only storage, so the monthly total must grow.
        months = result.monthly_totals
        assert months[2] > months[0]

    def test_replication_doubles_storage_cost(self, small_trace):
        sim = CostSimulator(small_trace)
        single = sim.run("amazon_s3", lambda p, c: SingleCloudScheme(p["amazon_s3"], c))
        dura = sim.run(
            "duracloud",
            lambda p, c: DuraCloudScheme([p["amazon_s3"], p["azure"]], c),
        )
        single_storage = sum(line.storage for line in single.monthly)
        dura_storage = sum(line.storage for line in dura.monthly)
        # Two replicas, one on pricier Azure: storage cost well above 2x S3.
        assert dura_storage > 2 * single_storage

    def test_scale_factor_multiplies_totals(self, small_trace):
        import dataclasses

        scaled_trace = dataclasses.replace(
            small_trace,
            config=dataclasses.replace(small_trace.config, scale_factor=100.0),
        )
        base = CostSimulator(small_trace).run(
            "aliyun", lambda p, c: SingleCloudScheme(p["aliyun"], c)
        )
        scaled = CostSimulator(scaled_trace).run(
            "aliyun", lambda p, c: SingleCloudScheme(p["aliyun"], c)
        )
        assert scaled.grand_total == pytest.approx(100 * base.grand_total, rel=1e-6)

    def test_runs_are_isolated(self, small_trace):
        sim = CostSimulator(small_trace)
        a = sim.run("aliyun", lambda p, c: SingleCloudScheme(p["aliyun"], c))
        b = sim.run("aliyun", lambda p, c: SingleCloudScheme(p["aliyun"], c))
        assert a.grand_total == pytest.approx(b.grand_total)

    def test_verification_mode(self, small_trace):
        sim = CostSimulator(small_trace, verify=True)
        sim.run("racs", lambda p, c: RacsScheme(list(p.values()), c))
