"""Tests for the design-choice ablations."""

import pytest

from repro.analysis.ablations import (
    run_codec_ablation,
    run_degraded_read_comparison,
    run_read_policy_ablation,
    run_repair_comparison,
    run_replication_sweep,
    run_threshold_sweep,
)
from repro.workloads.postmark import PostMarkConfig

KB, MB = 1024, 1024 * 1024


@pytest.fixture(scope="module")
def pm():
    return PostMarkConfig(file_pool=15, transactions=50, size_hi=16 * MB)


class TestThresholdSweep:
    @pytest.fixture(scope="class")
    def sweep(self, pm):
        return run_threshold_sweep(
            thresholds=[64 * KB, 1 * MB, 16 * MB], seed=2, pm=pm
        )

    def test_points_cover_thresholds(self, sweep):
        assert [p.threshold for p in sweep] == [64 * KB, 1 * MB, 16 * MB]

    def test_small_fraction_monotone_in_threshold(self, sweep):
        fracs = [p.small_fraction_bytes for p in sweep]
        assert fracs == sorted(fracs)

    def test_space_overhead_rises_with_threshold(self, sweep):
        """Bigger threshold -> more bytes replicated 2x instead of 1.5x."""
        overheads = [p.space_overhead for p in sweep]
        assert overheads[-1] > overheads[0]

    def test_all_points_positive(self, sweep):
        for p in sweep:
            assert p.mean_latency > 0
            assert 1.0 <= p.space_overhead <= 2.5


class TestReplicationSweep:
    @pytest.fixture(scope="class")
    def sweep(self, pm):
        return run_replication_sweep(levels=[1, 2, 3], seed=2, pm=pm)

    def test_resiliency_column(self, sweep):
        assert [p.survives_outages for p in sweep] == [0, 1, 2]

    def test_space_overhead_grows_with_level(self, sweep):
        overheads = [p.space_overhead for p in sweep]
        assert overheads[0] < overheads[1] < overheads[2]

    def test_more_replicas_cost_write_latency(self, sweep):
        """r=3 writes more small-file bytes than r=1: latency must not drop."""
        assert sweep[2].mean_latency >= sweep[0].mean_latency * 0.95


class TestRepairComparison:
    def test_fmsr_beats_decode_repair(self):
        result = run_repair_comparison(seed=0, objects=4, size=1 * MB)
        assert result["fmsr_ratio"] == pytest.approx(0.75, abs=0.02)
        assert result["fmsr_repair_bytes"] < result["fmsr_conventional_bytes"]
        assert result["objects"] == 4.0

    def test_racs_repair_reads_k_fragments(self):
        result = run_repair_comparison(seed=0, objects=2, size=1 * MB)
        # RACS decode-based repair downloads ~k/n of stored bytes per object:
        # k fragments of size/k each = the full object size.
        assert result["racs_repair_bytes"] == pytest.approx(2 * 1 * MB, rel=0.01)


class TestCodecAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return run_codec_ablation(seed=1)

    def test_configurations_present(self, result):
        assert set(result) == {"raid5(2+1)", "rs(1+2)", "fmsr(3,1)"}

    def test_raid5_is_leanest(self, result):
        raid5 = result["raid5(2+1)"]
        assert raid5["space_overhead"] == min(
            m["space_overhead"] for m in result.values()
        )
        assert raid5["fault_tolerance"] == 1.0

    def test_double_fault_codecs_cost_more(self, result):
        for name in ("rs(1+2)", "fmsr(3,1)"):
            assert result[name]["fault_tolerance"] == 2.0
            assert result[name]["space_overhead"] > result["raid5(2+1)"]["space_overhead"]


class TestDegradedReadComparison:
    @pytest.fixture(scope="class")
    def result(self):
        return run_degraded_read_comparison(seed=1)

    def test_replication_fanout_is_one(self, result):
        assert result["duracloud"]["degraded_fanout"] == 1.0

    def test_racs_fans_out_to_k(self, result):
        assert result["racs"]["degraded_fanout"] >= 3.0

    def test_baselines_inflate_hyrd_does_not(self, result):
        assert result["hyrd"]["inflation"] <= min(
            result["racs"]["inflation"], result["duracloud"]["inflation"]
        )

    def test_every_baseline_read_degraded(self, result):
        assert result["racs"]["degraded_fraction"] == 1.0
        assert result["duracloud"]["degraded_fraction"] == 1.0


class TestReadPolicyAblation:
    def test_promotion_creates_hot_copies_and_helps_reads(self):
        result = run_read_policy_ablation(seed=4)
        on, off = result["promotion_on"], result["promotion_off"]
        assert on["hot_copies"] > 0
        assert off["hot_copies"] == 0
        assert on["mean_get_latency"] <= off["mean_get_latency"] * 1.05
        assert on["space_overhead"] > off["space_overhead"]  # the copies cost space
