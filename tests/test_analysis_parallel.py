"""The parallel experiment runner must reproduce the serial runner exactly.

Sweep cells (one scheme/state/rep for Fig. 6, one provider for Fig. 5, one
threshold for the ablation) are independent seeded runs, so fanning them out
to worker processes and merging in input order has to be *byte-identical* to
the serial loop — these tests enforce that invariant with float equality,
not approx.
"""

from repro.analysis.ablations import run_threshold_sweep
from repro.analysis.experiments import map_cells, run_fig5, run_fig6
from repro.workloads.postmark import PostMarkConfig

KB, MB = 1024, 1024 * 1024

SMALL_PM = PostMarkConfig(file_pool=6, transactions=20, size_lo=1 * KB, size_hi=2 * MB)


def _square(x: int) -> int:
    return x * x


class TestMapCells:
    def test_serial_and_parallel_preserve_order(self):
        tasks = list(range(8))
        assert map_cells(_square, tasks) == [x * x for x in tasks]
        assert map_cells(_square, tasks, parallel=True, max_workers=3) == [
            x * x for x in tasks
        ]

    def test_single_task_short_circuits(self):
        assert map_cells(_square, [5], parallel=True) == [25]

    def test_empty_tasks(self):
        assert map_cells(_square, [], parallel=True) == []


class TestFig5Parallel:
    def test_identical_to_serial(self):
        serial = run_fig5(seed=3, repeats=2)
        par = run_fig5(seed=3, repeats=2, parallel=True, max_workers=2)
        assert par.sizes == serial.sizes
        assert par.read == serial.read
        assert par.write == serial.write


class TestFig6Parallel:
    def test_identical_to_serial(self):
        serial = run_fig6(seed=2, config=SMALL_PM)
        par = run_fig6(seed=2, config=SMALL_PM, parallel=True, max_workers=2)
        assert par.normal == serial.normal
        assert par.outage == serial.outage
        assert par.degraded_fraction == serial.degraded_fraction

    def test_identical_with_repeats(self):
        serial = run_fig6(seed=5, config=SMALL_PM, repeats=2)
        par = run_fig6(seed=5, config=SMALL_PM, repeats=2, parallel=True)
        assert par.normal == serial.normal
        assert par.outage == serial.outage
        assert par.degraded_fraction == serial.degraded_fraction


class TestThresholdSweepParallel:
    def test_identical_to_serial(self):
        pm = PostMarkConfig(
            file_pool=8, transactions=24, size_lo=1 * KB, size_hi=4 * MB
        )
        thresholds = [256 * KB, 1 * MB]
        serial = run_threshold_sweep(thresholds, seed=1, pm=pm)
        par = run_threshold_sweep(
            thresholds, seed=1, pm=pm, parallel=True, max_workers=2
        )
        assert par == serial
