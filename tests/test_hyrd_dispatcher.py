"""Unit tests for the Request Dispatcher."""

import pytest

from repro.core.config import HyRDConfig
from repro.core.dispatcher import RequestDispatcher
from repro.core.evaluator import CostPerformanceEvaluator
from repro.core.monitor import FileClass
from repro.erasure.raid5 import Raid5Code
from repro.erasure.reed_solomon import ReedSolomonCode
from repro.fs.namespace import FileEntry


def _dispatcher(providers, **config_kw):
    config = HyRDConfig(**config_kw)
    evaluator = CostPerformanceEvaluator(list(providers.values()), config)
    evaluator.evaluate()
    return RequestDispatcher(config, evaluator)


class TestTargets:
    def test_replica_targets_are_fastest_perf(self, providers):
        d = _dispatcher(providers)
        assert d.replica_targets() == ["aliyun", "azure"]

    def test_replica_targets_extend_when_needed(self, providers):
        d = _dispatcher(providers, replication_level=3)
        targets = d.replica_targets()
        assert len(targets) == 3
        assert targets[:2] == ["aliyun", "azure"]

    def test_erasure_targets_are_cost_oriented_egress_ordered(self, providers):
        d = _dispatcher(providers)
        # Data fragments land on the cheapest-egress providers: rackspace
        # (free out) first, aliyun next; amazon ($0.201/GB out) gets parity.
        assert d.erasure_targets() == ["rackspace", "aliyun", "amazon_s3"]

    def test_erasure_codec_default_raid5(self, providers):
        d = _dispatcher(providers)
        codec = d.erasure_codec()
        assert isinstance(codec, Raid5Code)
        assert codec.n == 3
        assert codec.k == 2

    def test_rs_codec_with_explicit_k(self, providers):
        d = _dispatcher(providers, erasure_codec="rs", erasure_k=1)
        codec = d.erasure_codec()
        assert isinstance(codec, ReedSolomonCode)
        assert (codec.k, codec.n) == (1, 3)

    def test_bad_raid5_k_rejected(self, providers):
        d = _dispatcher(providers, erasure_codec="raid5", erasure_k=1)
        with pytest.raises(ValueError):
            d.erasure_codec()


class TestDecisions:
    def test_small_and_metadata_replicated(self, providers):
        d = _dispatcher(providers)
        for klass in (FileClass.SMALL, FileClass.METADATA):
            decision = d.decide(klass)
            assert decision.codec is None
            assert decision.redundancy == "replication"
            assert decision.providers == ("aliyun", "azure")

    def test_large_erasure_coded(self, providers):
        d = _dispatcher(providers)
        decision = d.decide(FileClass.LARGE)
        assert decision.redundancy == "erasure"
        assert decision.providers == ("rackspace", "aliyun", "amazon_s3")


class TestPromotion:
    def _entry(self, klass, count):
        return FileEntry(path="/a", size=5_000_000, klass=klass, access_count=count)

    def test_promotes_hot_large_files(self, providers):
        d = _dispatcher(providers, hot_file_threshold=4)
        assert d.should_promote(self._entry("large", 4))
        assert not d.should_promote(self._entry("large", 3))

    def test_never_promotes_small(self, providers):
        d = _dispatcher(providers, hot_file_threshold=4)
        assert not d.should_promote(self._entry("small", 100))

    def test_disabled_promotion(self, providers):
        d = _dispatcher(providers, hot_file_threshold=0)
        assert not d.should_promote(self._entry("large", 100))

    def test_promotion_target_is_fastest_perf(self, providers):
        d = _dispatcher(providers)
        assert d.promotion_target() == "aliyun"
