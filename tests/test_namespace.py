"""Unit tests for paths, file entries and the namespace index."""

import pytest

from repro.fs.namespace import FileEntry, Namespace, basename, dirname, normalize_path


class TestPaths:
    @pytest.mark.parametrize(
        "raw,expected",
        [
            ("/a/b", "/a/b"),
            ("a/b", "/a/b"),
            ("/a//b/", "/a/b"),
            ("/top.txt", "/top.txt"),
        ],
    )
    def test_normalize(self, raw, expected):
        assert normalize_path(raw) == expected

    @pytest.mark.parametrize("bad", ["", "/", "//", "/a/../b", "/./a"])
    def test_invalid_paths(self, bad):
        with pytest.raises(ValueError):
            normalize_path(bad)

    def test_dirname(self):
        assert dirname("/a/b/c.txt") == "/a/b"
        assert dirname("/c.txt") == "/"

    def test_basename(self):
        assert basename("/a/b/c.txt") == "c.txt"


class TestFileEntry:
    def test_validation(self):
        with pytest.raises(ValueError):
            FileEntry(path="/a", size=-1)
        with pytest.raises(ValueError):
            FileEntry(path="/a", size=0, version=0)

    def test_providers_and_fragment_index(self):
        e = FileEntry(path="/a", size=10, placements=(("p1", 0), ("p2", 1)))
        assert e.providers == ("p1", "p2")
        assert e.fragment_index("p2") == 1
        with pytest.raises(KeyError):
            e.fragment_index("p3")

    def test_bumped(self):
        e = FileEntry(path="/a", size=10, created=1.0, modified=1.0)
        e2 = e.bumped(20, 5.0, klass="large")
        assert e2.version == 2
        assert e2.size == 20
        assert e2.modified == 5.0
        assert e2.created == 1.0
        assert e2.klass == "large"

    def test_touched(self):
        e = FileEntry(path="/a", size=1)
        assert e.touched().access_count == 1
        assert e.access_count == 0  # immutable


class TestNamespace:
    def test_upsert_get_remove(self):
        ns = Namespace()
        ns.upsert(FileEntry(path="/d/f", size=5))
        assert "/d/f" in ns
        assert ns.get("/d/f").size == 5
        removed = ns.remove("/d/f")
        assert removed.size == 5
        assert "/d/f" not in ns

    def test_get_missing(self):
        with pytest.raises(FileNotFoundError):
            Namespace().get("/nope")
        with pytest.raises(FileNotFoundError):
            Namespace().remove("/nope")

    def test_lookup_returns_none(self):
        assert Namespace().lookup("/nope") is None

    def test_list_dir(self):
        ns = Namespace()
        ns.upsert(FileEntry(path="/d/b", size=1))
        ns.upsert(FileEntry(path="/d/a", size=1))
        ns.upsert(FileEntry(path="/other/c", size=1))
        assert ns.list_dir("/d") == ["/d/a", "/d/b"]
        assert ns.list_dir("/empty") == []

    def test_root_directory_files(self):
        ns = Namespace()
        ns.upsert(FileEntry(path="/top.txt", size=1))
        assert ns.list_dir("/") == ["/top.txt"]

    def test_directories_cleaned_up(self):
        ns = Namespace()
        ns.upsert(FileEntry(path="/d/a", size=1))
        assert ns.directories() == ["/d"]
        ns.remove("/d/a")
        assert ns.directories() == []

    def test_total_bytes_and_len(self):
        ns = Namespace()
        ns.upsert(FileEntry(path="/a", size=10))
        ns.upsert(FileEntry(path="/b", size=5))
        assert ns.total_bytes() == 15
        assert len(ns) == 2

    def test_upsert_overwrites(self):
        ns = Namespace()
        ns.upsert(FileEntry(path="/a", size=10))
        ns.upsert(FileEntry(path="/a", size=20, version=2))
        assert ns.get("/a").size == 20
        assert len(ns) == 1
