"""Property-based tests: metering and billing invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cloud.metering import UsageMeter
from repro.cloud.pricing import PRICE_PLANS
from repro.cost.accounting import bill_for_month
from repro.sim.clock import SECONDS_PER_MONTH


@st.composite
def meter_history(draw):
    """A time-ordered mix of op records and storage-level changes."""
    n = draw(st.integers(1, 30))
    raw = [
        (
            draw(st.floats(0, 5 * SECONDS_PER_MONTH, allow_nan=False)),
            draw(st.sampled_from(["put", "get", "list", "remove", "level"])),
            draw(st.integers(0, 10**9)),
        )
        for _ in range(n)
    ]
    return sorted(raw, key=lambda r: r[0])


def _apply(meter: UsageMeter, history) -> None:
    for t, kind, value in history:
        if kind == "put":
            meter.record_put(value, t)
        elif kind == "get":
            meter.record_get(value, t)
        elif kind == "list":
            meter.record_list(t)
        elif kind == "remove":
            meter.record_remove(t)
        elif kind == "level":
            meter.set_stored_bytes(value, t)


class TestMeterProperties:
    @given(history=meter_history())
    def test_usage_nonnegative(self, history):
        meter = UsageMeter()
        _apply(meter, history)
        meter.accrue(6 * SECONDS_PER_MONTH)
        for m in meter.months():
            u = meter.month_usage(m)
            assert u.bytes_in >= 0
            assert u.bytes_out >= 0
            assert u.tier1_ops >= 0
            assert u.tier2_ops >= 0
            assert u.byte_seconds >= 0

    @given(history=meter_history())
    def test_total_equals_sum_of_months(self, history):
        meter = UsageMeter()
        _apply(meter, history)
        meter.accrue(6 * SECONDS_PER_MONTH)
        total = meter.total_usage()
        assert total.bytes_in == sum(
            meter.month_usage(m).bytes_in for m in meter.months()
        )
        assert total.tier1_ops == sum(
            meter.month_usage(m).tier1_ops for m in meter.months()
        )

    @given(history=meter_history())
    def test_byte_time_integral_conserved(self, history):
        """Sum of per-month byte-seconds equals the piecewise integral."""
        meter = UsageMeter()
        end = 6 * SECONDS_PER_MONTH
        _apply(meter, history)
        meter.accrue(end)
        from_months = sum(meter.month_usage(m).byte_seconds for m in meter.months())

        level, last, integral = 0.0, 0.0, 0.0
        for t, kind, value in history:
            if kind == "level":
                integral += level * (t - last)
                level, last = float(value), t
        integral += level * (end - last)
        assert from_months == __import__("pytest").approx(integral, rel=1e-9, abs=1e-3)

    @given(history=meter_history())
    @settings(max_examples=40)
    def test_bills_nonnegative_and_monotone_in_usage(self, history):
        meter = UsageMeter()
        _apply(meter, history)
        meter.accrue(6 * SECONDS_PER_MONTH)
        for plan in PRICE_PLANS.values():
            for m in meter.months():
                line = bill_for_month(meter, plan, m)
                assert line.total >= 0
