"""Tests for feature/region-aware placement (§VI's service-diversity item)."""

import pytest

from repro.cloud.features import TABLE2_FEATURES, ProviderFeatures
from repro.core.config import MB, HyRDConfig
from repro.core.dispatcher import PlacementPolicyError
from repro.core.hyrd import HyRDClient


def _hyrd(providers, clock, **config_kw):
    return HyRDClient(
        list(providers.values()), clock, config=HyRDConfig(**config_kw)
    )


class TestProviderFeatures:
    def test_table2_presets_attached(self, providers):
        for name, p in providers.items():
            assert p.features == TABLE2_FEATURES[name]

    def test_regions_are_distinct_in_table2(self):
        regions = {f.region for f in TABLE2_FEATURES.values()}
        assert len(regions) == 4

    def test_feature_query(self):
        f = ProviderFeatures(region="r", geo_redundant=True)
        assert f.has("geo_redundant")
        assert not f.has("mountable_fs")
        with pytest.raises(KeyError):
            f.has("nonexistent")
        with pytest.raises(KeyError):
            f.has("region")  # not boolean

    def test_validation(self):
        with pytest.raises(ValueError):
            ProviderFeatures(region="")
        with pytest.raises(ValueError):
            ProviderFeatures(region="r", sla_nines=-1)


class TestRegionPolicy:
    def test_default_policy_unchanged(self, providers, clock):
        hyrd = _hyrd(providers, clock)
        assert hyrd.dispatcher.replica_targets() == ["aliyun", "azure"]

    def test_table2_regions_already_satisfy_two(self, providers, clock):
        # aliyun (cn-hangzhou) + azure (asia-east): two regions already.
        hyrd = _hyrd(providers, clock, min_distinct_regions=2)
        targets = hyrd.dispatcher.replica_targets()
        regions = {providers[n].features.region for n in targets}
        assert len(regions) >= 2

    def test_region_constraint_forces_swap(self, providers, clock):
        """Collapse aliyun and azure into one region: the dispatcher must
        swap one replica out to another region."""
        import dataclasses

        providers["azure"].features = dataclasses.replace(
            providers["azure"].features, region="cn-hangzhou"
        )
        providers["aliyun"].features = dataclasses.replace(
            providers["aliyun"].features, region="cn-hangzhou"
        )
        hyrd = _hyrd(providers, clock, min_distinct_regions=2)
        targets = hyrd.dispatcher.replica_targets()
        regions = {providers[n].features.region for n in targets}
        assert len(regions) == 2
        assert "aliyun" in targets  # the fastest stays

    def test_impossible_region_policy_raises(self, providers, clock):
        import dataclasses

        for p in providers.values():
            p.features = dataclasses.replace(p.features, region="one-region")
        hyrd = _hyrd(providers, clock)
        hyrd.config = HyRDConfig(min_distinct_regions=2)
        hyrd.dispatcher.config = hyrd.config
        with pytest.raises(PlacementPolicyError):
            hyrd.dispatcher.replica_targets()

    def test_validation(self):
        with pytest.raises(ValueError):
            HyRDConfig(min_distinct_regions=0)


class TestFeaturePolicy:
    def test_required_feature_filters_targets(self, providers, clock, payload):
        hyrd = _hyrd(providers, clock, required_features=("geo_redundant",))
        targets = hyrd.dispatcher.replica_targets()
        # Only amazon_s3 and azure are geo-redundant in the Table II fleet.
        assert set(targets) <= {"amazon_s3", "azure"}
        hyrd.put("/d/s", payload(4096))
        entry = hyrd.namespace.get("/d/s")
        assert set(entry.providers) <= {"amazon_s3", "azure"}

    def test_unsatisfiable_feature_policy_raises(self, providers, clock):
        hyrd = _hyrd(providers, clock)
        hyrd.config = HyRDConfig(required_features=("geo_redundant",), replication_level=3)
        hyrd.dispatcher.config = hyrd.config
        with pytest.raises(PlacementPolicyError):
            hyrd.dispatcher.replica_targets()

    def test_erasure_stripe_feature_policy_raises_when_thin(self, providers, clock):
        hyrd = _hyrd(providers, clock)
        hyrd.config = HyRDConfig(required_features=("mountable_fs",))
        hyrd.dispatcher.config = hyrd.config
        # Only azure + rackspace offer a mountable fs: stripe impossible.
        with pytest.raises(PlacementPolicyError):
            hyrd.dispatcher.erasure_targets()

    def test_end_to_end_with_policy(self, providers, clock, payload):
        hyrd = _hyrd(
            providers, clock, min_distinct_regions=2, hot_file_threshold=0
        )
        small, large = payload(4096), payload(2 * MB)
        hyrd.put("/d/s", small)
        hyrd.put("/d/l", large)
        assert hyrd.get("/d/s")[0] == small
        assert hyrd.get("/d/l")[0] == large
        for path in ("/d/s", "/d/l"):
            entry = hyrd.namespace.get(path)
            regions = {providers[n].features.region for n in entry.providers}
            assert len(regions) >= 2
