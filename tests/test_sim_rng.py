"""Unit tests for deterministic RNG streams."""

import numpy as np
import pytest

from repro.sim.rng import make_rng, spawn_rngs, stable_u64


class TestStableU64:
    def test_deterministic(self):
        assert stable_u64("a", 1) == stable_u64("a", 1)

    def test_distinct_labels(self):
        assert stable_u64("a") != stable_u64("b")

    def test_separator_prevents_concatenation_collisions(self):
        assert stable_u64("ab", "c") != stable_u64("a", "bc")

    def test_fits_in_64_bits(self):
        assert 0 <= stable_u64("anything", 42, None) < 2**64


class TestMakeRng:
    def test_reproducible(self):
        a = make_rng(7, "latency", "aliyun").random(8)
        b = make_rng(7, "latency", "aliyun").random(8)
        assert np.array_equal(a, b)

    def test_label_independence(self):
        a = make_rng(7, "latency", "aliyun").random(8)
        b = make_rng(7, "latency", "azure").random(8)
        assert not np.array_equal(a, b)

    def test_seed_independence(self):
        a = make_rng(7, "x").random(8)
        b = make_rng(8, "x").random(8)
        assert not np.array_equal(a, b)


class TestSpawnRngs:
    def test_count_and_independence(self):
        rngs = spawn_rngs(3, 4, "workers")
        assert len(rngs) == 4
        draws = [tuple(r.random(4)) for r in rngs]
        assert len(set(draws)) == 4

    def test_zero_count(self):
        assert spawn_rngs(3, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(3, -1)
