"""Unit tests for the load-aware read scheduler (repro.core.scheduling).

The scheduler is pure decision-making over the scheme's latency model,
health trackers, breakers, and (optionally) the load observatory — these
tests pin the scoring formula, the deterministic rotation policy, the
capacity-aware hedge condition, and the ProviderHealth capacity helpers
it consumes.
"""

import math

import pytest

from repro.core.resilience import ProviderHealth
from repro.core.scheduling import FragmentScheduler, SchedulerConfig
from repro.schemes import RacsScheme

MB = 1024 * 1024


@pytest.fixture
def racs(providers, clock):
    scheme = RacsScheme(list(providers.values()), clock)
    scheme.attach_scheduler(FragmentScheduler())
    return scheme


def _by_index(scheme):
    return dict(enumerate(scheme.provider_names))


class TestProviderHealthCapacity:
    def test_slope_needs_two_levels(self):
        h = ProviderHealth("p")
        assert h.capacity_slope() == 0.0
        h.note_load_curve(((2, 0.5, 3),))
        assert h.capacity_slope() == 0.0

    def test_slope_is_secant_over_observed_span(self):
        h = ProviderHealth("p")
        h.note_load_curve(((1, 0.2, 5), (3, 0.4, 5), (5, 1.0, 5)))
        assert h.capacity_slope() == pytest.approx((1.0 - 0.2) / (5 - 1))

    def test_improving_curve_reads_as_headroom(self):
        h = ProviderHealth("p")
        h.note_load_curve(((1, 1.0, 5), (4, 0.5, 5)))
        assert h.capacity_slope() == 0.0
        assert h.queue_wait(10.0) == 0.0

    def test_queue_wait_prices_depth_by_slope(self):
        h = ProviderHealth("p")
        h.note_load_curve(((1, 0.2, 5), (5, 1.0, 5)))
        assert h.queue_wait(2.0) == pytest.approx(2.0 * 0.2)
        assert h.queue_wait(0.0) == 0.0


class TestScoring:
    def test_healthy_score_is_static_estimate(self, racs):
        sched = racs.scheduler
        for name in racs.provider_names:
            assert sched.score_provider(name, MB) == pytest.approx(
                racs._estimate_latency(name, MB, "down")
            )

    def test_degraded_health_inflates_score(self, racs):
        sched = racs.scheduler
        name = racs.provider_names[0]
        base = sched.score_provider(name, MB)
        for _ in range(20):
            racs.health[name].record_latency(observed=50.0, expected=1.0)
        assert sched.score_provider(name, MB) > 10 * base

    def test_open_breaker_scores_infinite(self, racs, clock):
        sched = racs.scheduler
        name = racs.provider_names[0]
        breaker = racs._breakers[name]
        for _ in range(breaker.failure_threshold):
            breaker.record_failure(clock.now)
        assert sched.score_provider(name, MB) == math.inf

    def test_half_open_breaker_is_handicapped(self, racs, clock):
        sched = racs.scheduler
        name = racs.provider_names[0]
        base = sched.score_provider(name, MB)
        breaker = racs._breakers[name]
        for _ in range(breaker.failure_threshold):
            breaker.record_failure(clock.now)
        clock.advance(breaker.reset_timeout + 1.0)
        assert breaker.allow(clock.now)  # open -> half_open probe admitted
        assert sched.score_provider(name, MB) == pytest.approx(
            base * sched.config.half_open_penalty
        )

    def test_queue_wait_zero_without_observatory(self, racs):
        assert racs.scheduler.queue_wait(racs.provider_names[0]) == 0.0

    def test_estimate_stripe_is_gating_score_of_best_subset(self, racs):
        sched = racs.scheduler
        by_index = _by_index(racs)
        scores = sorted(
            sched.score_provider(p, racs.codec.fragment_size(9000))
            for p in by_index.values()
        )
        assert sched.estimate_stripe(by_index, 9000, racs.codec) == pytest.approx(
            scores[racs.codec.k - 1]
        )


class _StubObservatory:
    """Minimal observatory double: fixed queue depth / service rate."""

    def __init__(self, depth, rate):
        self._depth, self._rate = depth, rate

    def bind(self, registry, clock, health=None):
        pass

    def on_phase(self, now, outcomes):
        pass

    def on_op(self, report, trace_id):
        pass

    def queue_depth(self, name):
        return self._depth.get(name, 0.0)

    def service_rate(self, name):
        return self._rate.get(name, 0.0)


class TestDecide:
    def test_parity_fragments_carry_decode_penalty(self, providers, clock):
        scheme = RacsScheme(list(providers.values()), clock)
        sched = FragmentScheduler(SchedulerConfig(rotation_margin=0.0))
        scheme.attach_scheduler(sched)
        by_index = _by_index(scheme)
        decision = sched.decide(
            "/tie", by_index, 9000, scheme.codec, lambda i: True
        )
        # Recorded candidate scores: parity indices (>= k) carry exactly the
        # multiplicative decode handicap on top of the provider score.
        frag = scheme.codec.fragment_size(9000)
        k = scheme.codec.k
        smap = dict(decision.scores)
        for idx, name in by_index.items():
            raw = sched.score_provider(name, frag)
            expected = raw * sched.config.parity_penalty if idx >= k else raw
            assert smap[idx] == pytest.approx(expected)

    def test_saturated_provider_priced_out(self, racs):
        sched = racs.scheduler
        by_index = _by_index(racs)
        slow = by_index[0]
        for _ in range(20):
            racs.health[slow].record_latency(observed=100.0, expected=1.0)
        decision = sched.decide(
            "/hot", by_index, 9000, racs.codec, lambda i: True
        )
        assert 0 not in decision.chosen
        assert decision.parity_picks >= 1  # parity replaced the slow holder

    def test_unusable_placements_are_skipped(self, racs):
        sched = racs.scheduler
        by_index = _by_index(racs)
        decision = sched.decide(
            "/part", by_index, 9000, racs.codec, lambda i: i != 1
        )
        assert 1 not in decision.order
        assert len(decision.chosen) == racs.codec.k

    def test_short_placements_return_all_usable(self, racs):
        sched = racs.scheduler
        by_index = _by_index(racs)
        usable = {0}
        decision = sched.decide(
            "/gone", by_index, 9000, racs.codec, lambda i: i in usable
        )
        assert decision.chosen == (0,)
        assert decision.hedge is None

    def test_rotation_is_deterministic_and_cycles(self, providers, clock):
        scheme = RacsScheme(list(providers.values()), clock)
        sched = FragmentScheduler(SchedulerConfig(rotation_margin=1e9))
        scheme.attach_scheduler(sched)
        by_index = _by_index(scheme)

        def sequence(n):
            return [
                sched.decide("/hot", by_index, 9000, scheme.codec, lambda i: True).chosen
                for _ in range(n)
            ]

        first = sequence(8)
        assert len({c for c in first}) > 1, "rotation never moved the subset"
        # Same inputs, fresh scheduler: byte-identical subset sequence.
        scheme2 = RacsScheme(list(providers.values()), clock)
        sched2 = FragmentScheduler(SchedulerConfig(rotation_margin=1e9))
        scheme2.attach_scheduler(sched2)
        second = [
            sched2.decide("/hot", by_index, 9000, scheme2.codec, lambda i: True).chosen
            for _ in range(8)
        ]
        assert first == second

    def test_rotation_counter_is_per_key(self, racs):
        sched = racs.scheduler
        by_index = _by_index(racs)
        sched.decide("/a", by_index, 9000, racs.codec, lambda i: True)
        sched.decide("/a", by_index, 9000, racs.codec, lambda i: True)
        sched.decide("/b", by_index, 9000, racs.codec, lambda i: True)
        assert sched.reads_of("/a") == 2
        assert sched.reads_of("/b") == 1

    def test_idle_fleet_never_hedges(self, racs):
        decision = racs.scheduler.decide(
            "/idle", _by_index(racs), 9000, racs.codec, lambda i: True
        )
        assert decision.hedge is None

    def test_hedge_fires_when_waiting_beats_wire_cost(self, providers, clock):
        scheme = RacsScheme(list(providers.values()), clock)
        sched = FragmentScheduler(SchedulerConfig(rotation_margin=0.0))
        scheme.attach_scheduler(sched)
        by_index = _by_index(scheme)
        # Every chosen provider drowning in queue: the gating provider's
        # estimated wait dwarfs the spare fragment's wire cost, and the
        # backup's own score stays within the winnable band.
        depth = {name: 50.0 for name in scheme.provider_names}
        rate = {name: 10.0 for name in scheme.provider_names}
        scheme.attach_observatory(_StubObservatory(depth, rate))
        decision = sched.decide(
            "/queued", by_index, 9000, scheme.codec, lambda i: True
        )
        assert decision.hedge is not None
        assert decision.hedge.backup not in decision.chosen
        assert decision.hedge.gating in decision.chosen
        assert decision.hedge.wait > decision.hedge.cost

    def test_hedge_skips_unwinnable_backup(self, providers, clock):
        scheme = RacsScheme(list(providers.values()), clock)
        sched = FragmentScheduler(SchedulerConfig(rotation_margin=0.0))
        scheme.attach_scheduler(sched)
        by_index = _by_index(scheme)
        depth = {name: 50.0 for name in scheme.provider_names}
        rate = {name: 10.0 for name in scheme.provider_names}
        scheme.attach_observatory(_StubObservatory(depth, rate))
        baseline = sched.decide(
            "/queued", by_index, 9000, scheme.codec, lambda i: True
        )
        assert baseline.hedge is not None
        # Ruin the backup candidate's health: its full score leaves the
        # winnable band and the hedge must not fire.
        backup_name = by_index[baseline.hedge.backup]
        for _ in range(30):
            scheme.health[backup_name].record_latency(observed=500.0, expected=1.0)
        decision = sched.decide(
            "/queued", by_index, 9000, scheme.codec, lambda i: True
        )
        assert decision.hedge is None or decision.hedge.backup != baseline.hedge.backup


class TestAttachDetach:
    def test_attach_binds_and_detach_returns(self, providers, clock):
        scheme = RacsScheme(list(providers.values()), clock)
        sched = FragmentScheduler()
        assert not sched.bound
        scheme.attach_scheduler(sched)
        assert sched.bound and scheme.scheduler is sched
        returned = scheme.detach_scheduler()
        assert returned is sched
        assert not sched.bound and scheme.scheduler is None
        assert scheme.detach_scheduler() is None  # idempotent

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SchedulerConfig(parity_penalty=0.5)
        with pytest.raises(ValueError):
            SchedulerConfig(rotation_margin=-0.1)
        with pytest.raises(ValueError):
            SchedulerConfig(half_open_penalty=0.9)
        with pytest.raises(ValueError):
            SchedulerConfig(hedge_margin=0.0)
        with pytest.raises(ValueError):
            SchedulerConfig(hedge_winnable=0.5)
        with pytest.raises(ValueError):
            SchedulerConfig(queue_weight=-1.0)
        with pytest.raises(ValueError):
            SchedulerConfig(error_weight=-1.0)
