"""Unit tests for GF(2^8) arithmetic and linear algebra."""

import numpy as np
import pytest

from repro.erasure.galois import (
    EXP,
    LOG,
    MUL_TABLE,
    gf_add,
    gf_div,
    gf_inv,
    gf_inverse_matrix,
    gf_matmul,
    gf_matvec_bytes,
    gf_mul,
    gf_pow,
    systematic_vandermonde,
    vandermonde,
)


class TestFieldOps:
    def test_add_is_xor(self):
        assert gf_add(0b1010, 0b0110) == 0b1100

    def test_mul_identity(self):
        a = np.arange(256, dtype=np.uint8)
        assert np.array_equal(gf_mul(a, 1), a)

    def test_mul_zero(self):
        a = np.arange(256, dtype=np.uint8)
        assert np.all(gf_mul(a, 0) == 0)

    def test_mul_commutative(self):
        assert np.array_equal(MUL_TABLE, MUL_TABLE.T)

    def test_mul_known_value(self):
        # 2 * 128 = 0x11d reduced: 0x1d = 29 under the 0x11d polynomial.
        assert gf_mul(2, 128) == 29

    def test_inverse(self):
        a = np.arange(1, 256, dtype=np.uint8)
        inv = gf_inv(a)
        assert np.all(gf_mul(a, inv) == 1)

    def test_inv_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            gf_inv(0)

    def test_div(self):
        for a in (1, 7, 200, 255):
            for b in (1, 3, 99):
                assert gf_mul(gf_div(a, b), b) == a

    def test_pow(self):
        assert gf_pow(2, 0) == 1
        assert gf_pow(2, 1) == 2
        assert gf_pow(0, 5) == 0
        assert gf_pow(0, 0) == 1
        # a^255 = 1 for all non-zero a.
        for a in (2, 3, 29, 255):
            assert gf_pow(a, 255) == 1

    def test_pow_negative(self):
        assert gf_mul(gf_pow(7, -1), 7) == 1
        with pytest.raises(ZeroDivisionError):
            gf_pow(0, -1)

    def test_exp_log_roundtrip(self):
        a = np.arange(1, 256)
        assert np.all(EXP[LOG[a]] == a)


class TestMatrixOps:
    def test_matmul_identity(self):
        rng = np.random.default_rng(0)
        m = rng.integers(0, 256, (5, 5), dtype=np.uint8)
        eye = np.eye(5, dtype=np.uint8)
        assert np.array_equal(gf_matmul(eye, m), m)
        assert np.array_equal(gf_matmul(m, eye), m)

    def test_matmul_shape_mismatch(self):
        with pytest.raises(ValueError):
            gf_matmul(np.zeros((2, 3), np.uint8), np.zeros((2, 3), np.uint8))

    def test_inverse_matrix(self):
        rng = np.random.default_rng(1)
        for _ in range(5):
            m = rng.integers(0, 256, (4, 4), dtype=np.uint8)
            try:
                inv = gf_inverse_matrix(m)
            except np.linalg.LinAlgError:
                continue
            assert np.array_equal(gf_matmul(m, inv), np.eye(4, dtype=np.uint8))
            assert np.array_equal(gf_matmul(inv, m), np.eye(4, dtype=np.uint8))

    def test_singular_matrix_raises(self):
        m = np.array([[1, 2], [1, 2]], dtype=np.uint8)
        with pytest.raises(np.linalg.LinAlgError):
            gf_inverse_matrix(m)

    def test_inverse_requires_square(self):
        with pytest.raises(ValueError):
            gf_inverse_matrix(np.zeros((2, 3), np.uint8))

    def test_matvec_bytes_matches_matmul(self):
        rng = np.random.default_rng(2)
        coeffs = rng.integers(0, 256, 4, dtype=np.uint8)
        shards = rng.integers(0, 256, (4, 100), dtype=np.uint8)
        via_matmul = gf_matmul(coeffs[None, :], shards)[0]
        assert np.array_equal(gf_matvec_bytes(coeffs, shards), via_matmul)


class TestVandermonde:
    def test_any_k_rows_invertible(self):
        v = vandermonde(8, 4)
        from itertools import combinations

        for rows in combinations(range(8), 4):
            gf_inverse_matrix(v[list(rows), :])  # must not raise

    def test_row_limit(self):
        with pytest.raises(ValueError):
            vandermonde(256, 3)

    def test_systematic_top_is_identity(self):
        g = systematic_vandermonde(6, 4)
        assert np.array_equal(g[:4], np.eye(4, dtype=np.uint8))

    def test_systematic_preserves_mds(self):
        g = systematic_vandermonde(7, 3)
        from itertools import combinations

        for rows in combinations(range(7), 3):
            gf_inverse_matrix(g[list(rows), :])  # must not raise

    def test_systematic_param_validation(self):
        with pytest.raises(ValueError):
            systematic_vandermonde(3, 5)
